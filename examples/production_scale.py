#!/usr/bin/env python3
"""Production-scale graphs: generate a random layered microservice
application (the shape of the paper's Fig 1 production graphs), measure
it with converged replications, and find its bottleneck.

Run:  python examples/production_scale.py
"""

from repro.apps import GraphShape, synthetic_graph
from repro.experiments import replicate_at_load
from repro.telemetry import ServiceMonitor, format_table, ms
from repro.workload import OpenLoopClient


def main() -> None:
    shape = GraphShape(layers=4, width=5, fanout=2, machines=4)
    print(f"Generating a {shape.total_services}-service application "
          f"({shape.layers} layers x {shape.width} wide, fanout "
          f"{shape.fanout})...")

    # Converged tail-latency estimate at moderate load.
    result = replicate_at_load(
        synthetic_graph, qps=800, duration=0.5, warmup=0.12,
        min_replications=3, max_replications=8, tolerance=0.1,
        shape=shape, graph_seed=12,  # ONE graph, independent runs
    )
    print(format_table(
        ["metric", "value"],
        [
            ["offered load (QPS)", result.offered_qps],
            ["replications", result.replications],
            ["converged", str(result.converged)],
            ["p99 (ms)", ms(result.p99_mean)],
            ["p99 95% CI (+/- ms)", ms(result.p99_ci95)],
            ["mean (ms)", ms(result.mean_mean)],
        ],
        title="Converged measurement",
    ))

    # One instrumented run to locate the bottleneck tier.
    world = synthetic_graph(shape, seed=12)
    monitor = ServiceMonitor(
        world.sim, world.deployment.all_instances, interval=0.05, stop_at=0.5
    )
    client = OpenLoopClient(world.sim, world.dispatcher, arrivals=800,
                            stop_at=0.5)
    monitor.start()
    client.start()
    world.sim.run(until=0.5)
    hot = monitor.bottleneck()
    print(f"\nhighest-utilisation service: {hot} "
          f"(peak queue depth {monitor.peak_depth(hot):.0f})")


if __name__ == "__main__":
    main()
