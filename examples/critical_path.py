#!/usr/bin/env python3
"""Critical-path analysis of the Social Network: enable request
tracing, drive the application, and attribute end-to-end latency to the
nodes that actually define it.

Run:  python examples/critical_path.py
"""

from repro.analysis import analyze, slowest_nodes
from repro.apps import social_network
from repro.telemetry import format_table, ms
from repro.workload import OpenLoopClient


def main() -> None:
    world = social_network(seed=11)
    world.dispatcher.trace = True  # record per-node (enter, leave) spans
    client = OpenLoopClient(
        world.sim, world.dispatcher, arrivals=2_000, max_requests=400
    )
    client.start()
    world.sim.run()

    requests = client.completed_requests
    contributions = analyze(requests)
    rows = [
        [c.node, ms(c.mean_span), ms(c.p99_span),
         f"{c.critical_fraction:.0%}"]
        for c in sorted(
            contributions.values(),
            key=lambda c: c.critical_fraction * c.mean_span,
            reverse=True,
        )
    ]
    print(format_table(
        ["path node", "mean span ms", "p99 span ms", "on critical path"],
        rows,
        title=f"Latency attribution over {len(requests)} traced requests "
              f"(e2e p99 = {ms(client.latencies.p99()):.2f} ms)",
    ))
    print("\nTop optimisation targets (critical presence x mean span):")
    for node, weight in slowest_nodes(requests, top=3):
        print(f"  {node:20s} {ms(weight):8.3f} ms-equivalent")


if __name__ == "__main__":
    main()
