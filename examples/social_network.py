#!/usr/bin/env python3
"""The end-to-end Social Network application (paper Fig 11 / SSIV-D):
Thrift frontend fanning out to User + Post services, synchronising,
consulting the Media service, and composing the response — every
business tier backed by its own memcached + MongoDB pair.

Run:  python examples/social_network.py
"""

from repro.apps import social_network
from repro.telemetry import format_table, ms, us
from repro.workload import OpenLoopClient


def main() -> None:
    world = social_network(seed=3)
    client = OpenLoopClient(
        world.sim, world.dispatcher, arrivals=4_000, stop_at=0.5
    )
    client.start()
    print("Simulating 0.5 s of the social network at 4k QPS...")
    world.sim.run(until=0.6)

    lat = client.latencies
    print()
    print(format_table(
        ["metric", "value"],
        [
            ["requests completed", client.requests_completed],
            ["mean latency (ms)", ms(lat.mean(since=0.1))],
            ["p50 (ms)", ms(lat.p50(since=0.1))],
            ["p99 (ms)", ms(lat.p99(since=0.1))],
        ],
        title="Read-post request, end to end",
    ))

    rows = []
    for tier in sorted(world.deployment.services):
        for instance in world.instances(tier):
            rows.append([
                tier,
                instance.machine_name,
                instance.jobs_completed,
                round(instance.utilization(now=0.5) * 100, 1),
            ])
    print()
    print(format_table(
        ["tier", "machine", "jobs", "core util %"], rows,
        title="Per-tier accounting",
    ))


if __name__ == "__main__":
    main()
