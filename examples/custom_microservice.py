#!/usr/bin/env python3
"""Build a custom microservice from first principles with the public
API: stages with different queue types, probabilistic execution paths,
a multi-threaded execution model, deployment, and an inter-service path
tree with blocking semantics.

The example models a small "search" application: an API gateway in
front of a query service whose requests either hit an in-memory index
(fast path, 80%) or fall back to a disk-backed segment scan (slow path,
20%).

Run:  python examples/custom_microservice.py
"""

from repro.distributions import Deterministic, Erlang, Exponential
from repro.engine import Simulator
from repro.hardware import Cluster, Machine
from repro.service import (
    EpollQueue,
    ExecutionPath,
    IoDevice,
    Microservice,
    MultiThreadedModel,
    PathSelector,
    SingleQueue,
    Stage,
)
from repro.telemetry import format_table, ms
from repro.topology import Deployment, Dispatcher, NodeOp, PathNode, PathTree
from repro.workload import OpenLoopClient


def build_gateway(sim, machine):
    cores = machine.allocate("gateway0", 2)
    stages = [
        Stage(
            "epoll", 0, EpollQueue(per_connection_limit=16),
            base=Deterministic(6e-6), per_job=Deterministic(1e-6),
            batching=True,
        ),
        Stage("route", 1, SingleQueue(), base=Erlang(4, 20e-6)),
        Stage("respond", 2, SingleQueue(), base=Deterministic(8e-6)),
    ]
    selector = PathSelector(
        [
            ExecutionPath(0, "route", [0, 1]),
            ExecutionPath(1, "respond", [0, 2]),
        ]
    )
    return Microservice(
        "gateway0", sim, stages, selector, cores,
        model=MultiThreadedModel(2, context_switch=1e-6),
        machine_name="server0", tier="gateway",
    )


def build_query_service(sim, machine):
    cores = machine.allocate("query0", 4)
    disk = IoDevice("query0/disk", sim, channels=2)
    stages = [
        Stage(
            "epoll", 0, EpollQueue(per_connection_limit=16),
            base=Deterministic(5e-6), per_job=Deterministic(1e-6),
            batching=True,
        ),
        Stage("index_lookup", 1, SingleQueue(), base=Erlang(4, 60e-6)),
        Stage(
            "segment_scan", 2, SingleQueue(),
            base=Erlang(2, 150e-6), io=Exponential(1.5e-3),
        ),
        Stage("serialize", 3, SingleQueue(), base=Deterministic(10e-6)),
    ]
    selector = PathSelector(
        [
            ExecutionPath(0, "hot", [0, 1, 3]),
            ExecutionPath(1, "cold", [0, 2, 3]),
        ],
        probabilities={0: 0.8, 1: 0.2},  # the SSIII-B state machine
    )
    return Microservice(
        "query0", sim, stages, selector, cores,
        model=MultiThreadedModel(8, context_switch=2e-6),
        machine_name="server0", tier="query", io_device=disk,
    )


def main() -> None:
    sim = Simulator(seed=7)
    cluster = Cluster()
    server = cluster.add_machine(Machine("server0", 16))
    cluster.add_machine(Machine("client", 4))

    deployment = Deployment()
    gateway = deployment.add_instance(build_gateway(sim, server))
    query = deployment.add_instance(build_query_service(sim, server))
    deployment.set_pool("gateway", 64)
    deployment.set_pool("query", 8)

    dispatcher = Dispatcher(sim, deployment, cluster.network)
    tree = PathTree("search")
    tree.chain(
        PathNode("gateway", "gateway", path_name="route",
                 on_enter=NodeOp.block()),
        PathNode("query", "query"),  # path picked by the state machine
        PathNode("gateway_resp", "gateway", path_name="respond",
                 same_instance_as="gateway",
                 on_leave=NodeOp.unblock("gateway")),
    )
    dispatcher.add_tree(tree)

    client = OpenLoopClient(sim, dispatcher, arrivals=5_000, stop_at=1.0)
    client.start()
    sim.run(until=1.2)

    lat = client.latencies
    print(format_table(
        ["metric", "value"],
        [
            ["requests completed", client.requests_completed],
            ["mean latency (ms)", ms(lat.mean(since=0.2))],
            ["p50 (ms)", ms(lat.p50(since=0.2))],
            ["p99 (ms)", ms(lat.p99(since=0.2))],
            ["gateway jobs", gateway.jobs_completed],
            ["query jobs", query.jobs_completed],
            ["disk ops (cold path)", query.io_device.ops_completed],
        ],
        title="Custom search application @5k QPS",
    ))
    cold_fraction = query.io_device.ops_completed / max(1, query.jobs_completed)
    print(f"\ncold-path fraction: {cold_fraction:.1%} (configured: 20%)")


if __name__ == "__main__":
    main()
