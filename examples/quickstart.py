#!/usr/bin/env python3
"""Quickstart: simulate the paper's 2-tier NGINX-memcached application
and print its load-latency curve.

Run:  python examples/quickstart.py
"""

from repro.apps import two_tier
from repro.experiments import load_latency_sweep, saturation_load
from repro.telemetry import format_table, ms


def main() -> None:
    loads = [10_000, 25_000, 40_000, 52_000, 60_000, 66_000]
    print("Sweeping the 2-tier app (8 NGINX workers, 4 memcached threads)...")
    points = load_latency_sweep(two_tier, loads, duration=0.4, warmup=0.1)

    rows = [
        [p.offered_qps, round(p.throughput), ms(p.mean), ms(p.p95), ms(p.p99),
         "saturated" if p.saturated else ""]
        for p in points
    ]
    print()
    print(
        format_table(
            ["offered QPS", "throughput", "mean ms", "p95 ms", "p99 ms", ""],
            rows,
            title="2-tier NGINX -> memcached load-latency curve",
        )
    )
    print(f"\nSustained load before saturation: "
          f"{saturation_load(points, p99_limit=5e-3):,.0f} QPS")


if __name__ == "__main__":
    main()
