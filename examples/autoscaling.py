#!/usr/bin/env python3
"""Autoscaling under a diurnal load: replicas of a webserver tier are
activated and deactivated to track utilisation, trading provisioned
core-hours against latency.

Run:  python examples/autoscaling.py
"""

import numpy as np

from repro.apps.base import add_client_machine, new_world
from repro.apps.nginx import SERVE_PATH, make_nginx
from repro.hardware import Machine
from repro.scaling import ActiveSetBalancer, AutoScaler
from repro.telemetry import format_table, ms
from repro.topology import PathNode, PathTree
from repro.workload import DiurnalPattern, OpenLoopClient

REPLICAS = 8


def main() -> None:
    world = new_world(seed=3)
    add_client_machine(world)
    world.cluster.add_machine(Machine("server0", 24))
    instances = [
        make_nginx(world, "server0", f"web{i}", processes=1, tier="web")
        for i in range(REPLICAS)
    ]
    balancer = ActiveSetBalancer(REPLICAS, initial_active=2)
    world.deployment._balancers["web"] = balancer
    world.dispatcher.add_tree(
        PathTree("serve").chain(PathNode("web", "web", path_name=SERVE_PATH))
    )

    pattern = DiurnalPattern(low=4_000, high=32_000, period=20.0)
    scaler = AutoScaler(
        world.sim, instances, balancer,
        decision_interval=0.25, low_watermark=0.35, high_watermark=0.7,
    )
    client = OpenLoopClient(world.sim, world.dispatcher, arrivals=pattern,
                            stop_at=40.0)
    scaler.start()
    client.start()
    print("Simulating 40 s of diurnal load over an autoscaled tier...")
    world.sim.run(until=40.0)

    times, active = scaler.active_series.resample(2.0, reducer=np.mean)
    rows = [
        [round(t, 1), round(pattern.rate(t)), round(a, 1)]
        for t, a in zip(times, active)
    ]
    print(format_table(["t (s)", "offered QPS", "active replicas"], rows))

    static_core_seconds = REPLICAS * 40.0
    print(format_table(
        ["metric", "value"],
        [
            ["requests completed", client.requests_completed],
            ["p50 (ms)", ms(client.latencies.p50(since=5.0))],
            ["p99 (ms)", ms(client.latencies.p99(since=5.0))],
            ["core-seconds (autoscaled)", round(scaler.core_seconds_active())],
            ["core-seconds (static 8x)", round(static_core_seconds)],
            ["capacity saved",
             f"{1 - scaler.core_seconds_active()/static_core_seconds:.0%}"],
        ],
        title="\nOutcome",
    ))


if __name__ == "__main__":
    main()
