#!/usr/bin/env python3
"""QoS-aware power management (paper SSV-B / Algorithm 1): the 2-tier
application under a diurnal load, with the manager trading frequency
for latency slack.

Run:  python examples/power_management.py
"""

import numpy as np

from repro.experiments.power_mgmt import run_power_experiment
from repro.telemetry import format_table, ms


def main() -> None:
    print("Running Algorithm 1 on the 2-tier app (compressed diurnal load,")
    print("15 s period, QoS = 5 ms p99, decision interval 0.5 s)...\n")
    result = run_power_experiment(decision_interval=0.5, duration=20.0)

    print(format_table(
        ["metric", "value"],
        [
            ["decision cycles", result.decisions],
            ["QoS violations", f"{result.violation_rate:.1%}"],
            ["mean p99 (ms)", ms(result.mean_p99)],
            ["QoS target (ms)", ms(result.qos_target)],
        ],
        title="Power management summary",
    ))

    print("\nTimeline (1 s bins):")
    rows = []
    t, p99 = result.p99_series.resample(1.0, reducer=np.mean)
    freq = {
        tier: dict(zip(*series.resample(1.0, reducer=np.mean)))
        for tier, series in result.frequency_series.items()
    }
    load = dict(zip(*result.load_series.resample(1.0, reducer=np.mean)))

    def nearest(table, key):
        if not table:
            return None
        best = min(table, key=lambda k: abs(k - key))
        return table[best]

    for ti, p in zip(t, p99):
        rows.append([
            round(ti, 1),
            round(nearest(load, ti) or 0),
            ms(p),
            round((nearest(freq["nginx"], ti) or 0) / 1e9, 1),
            round((nearest(freq["memcached"], ti) or 0) / 1e9, 1),
        ])
    print(format_table(
        ["t (s)", "load QPS", "p99 ms", "nginx GHz", "memcached GHz"], rows
    ))
    print(
        "\nThe manager tracks the diurnal load: it walks frequencies down\n"
        "while QoS has slack and races back up as the peak approaches.\n"
        "Tail latency converges well below the QoS target because DVFS\n"
        "only offers discrete speed steps (the paper's 2 ms-vs-5 ms gap)."
    )


if __name__ == "__main__":
    main()
