#!/usr/bin/env python3
"""Tail@scale (paper SSV-A / Fig 14): how a handful of slow servers
comes to dominate tail latency as request fanout grows.

Run:  python examples/tail_at_scale.py
"""

from repro.experiments.tail_at_scale import measure_tail_at_scale
from repro.telemetry import format_table, ms


def main() -> None:
    sizes = (5, 20, 50, 100, 200)
    fractions = (0.0, 0.01, 0.05)
    rows = []
    for frac in fractions:
        for size in sizes:
            point = measure_tail_at_scale(
                size, frac, qps=30, num_requests=200, seed=42
            )
            rows.append(
                [size, f"{frac:.0%}", ms(point.p50), ms(point.p99)]
            )
            print(f"  simulated cluster={size:>4} slow={frac:>4.0%} "
                  f"p99={ms(point.p99):8.2f} ms")
    print()
    print(format_table(
        ["cluster size", "slow servers", "p50 ms", "p99 ms"],
        rows,
        title="Tail at scale: full-fanout requests vs slow-server fraction",
    ))
    print(
        "\nNote how ~1% slow servers already dominates the tail once the\n"
        "cluster exceeds ~100 servers, matching Dean & Barroso and Fig 14."
    )


if __name__ == "__main__":
    main()
