#!/usr/bin/env python3
"""Drive a simulation entirely from the paper's JSON input surface
(Table I): service.json, graph.json, path.json, machines.json and
client.json, written to a spec directory and loaded back.

Run:  python examples/json_config.py
"""

import json
import tempfile
from pathlib import Path

from repro.config import SimulationSpec
from repro.telemetry import format_table, ms

MEMCACHED = {
    "service_name": "memcached",
    "stages": [
        {"stage_name": "epoll", "stage_id": 0, "queue_type": "epoll",
         "batching": True, "queue_parameter": [None, 16],
         "cost": {"base": {"dist": "deterministic", "value_us": 5},
                  "per_job": {"dist": "deterministic", "value_us": 1}}},
        {"stage_name": "socket_read", "stage_id": 1, "queue_type": "socket",
         "batching": True, "queue_parameter": [16],
         "cost": {"base": {"dist": "deterministic", "value_us": 2},
                  "per_byte": {"dist": "deterministic", "value_us": 0.008}}},
        {"stage_name": "memcached_processing", "stage_id": 2,
         "queue_type": "single", "batching": False,
         "cost": {"base": {"dist": "erlang", "k": 4, "mean_us": 8}}},
        {"stage_name": "socket_send", "stage_id": 3, "queue_type": "single",
         "batching": False,
         "cost": {"base": {"dist": "deterministic", "value_us": 3}}},
    ],
    # Listing 1's two deterministic paths over the same stages.
    "paths": [
        {"path_id": 0, "path_name": "memcached_read", "stages": [0, 1, 2, 3]},
        {"path_id": 1, "path_name": "memcached_write", "stages": [0, 1, 2, 3]},
    ],
}

MACHINES = {
    "machines": [
        {"name": "server0", "cores": 8,
         "dvfs": {"min_ghz": 1.2, "max_ghz": 2.6, "step_ghz": 0.1}},
        {"name": "client", "cores": 4},
    ],
    "network": {"propagation_us": 20, "loopback_us": 5, "bandwidth_gbps": 1},
}

GRAPH = {
    "instances": [
        {"name": "memcached0", "service": "memcached", "machine": "server0",
         "cores": 4, "tier": "memcached",
         "model": {"type": "multithreaded", "threads": 4,
                   "context_switch_us": 2}},
    ],
    "netproc": [{"machine": "server0", "cores": 2}],
    "pools": {"memcached": 64},
}

PATHS = {
    "trees": [
        {"name": "get", "nodes": [
            {"name": "memcached", "service": "memcached",
             "path_name": "memcached_read"}], "edges": []}
    ]
}

CLIENT = {
    "name": "wrk2", "machine": "client",
    "arrivals": {"process": "poisson",
                 "pattern": {"type": "constant", "qps": 30_000}},
    "mix": [{"name": "get", "weight": 1.0,
             "size": {"dist": "exponential", "mean_bytes": 256}}],
    "stop_at": 0.5,
}


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        base = Path(tmp)
        (base / "services").mkdir()
        (base / "services" / "memcached.json").write_text(json.dumps(MEMCACHED))
        (base / "machines.json").write_text(json.dumps(MACHINES))
        (base / "graph.json").write_text(json.dumps(GRAPH))
        (base / "path.json").write_text(json.dumps(PATHS))
        (base / "client.json").write_text(json.dumps(CLIENT))

        spec = SimulationSpec.load(base)
        print(f"loaded: {spec!r}")
        world, client = spec.build(seed=1)
        client.start()
        world.sim.run()

        lat = client.latencies
        print(format_table(
            ["metric", "value"],
            [
                ["requests", client.requests_completed],
                ["throughput (QPS)", round(lat.throughput(0.1, 0.5))],
                ["mean (ms)", ms(lat.mean(since=0.1))],
                ["p99 (ms)", ms(lat.p99(since=0.1))],
            ],
            title="memcached from Table I JSON inputs @30k QPS",
        ))


if __name__ == "__main__":
    main()
