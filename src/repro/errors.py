"""Exception hierarchy for the uqSim reproduction.

All errors raised by the library derive from :class:`ReproError`, so
callers can catch a single base class. Sub-classes mark the subsystem
that detected the problem; configuration errors additionally carry the
offending file/section where available.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class SimulationError(ReproError):
    """The discrete-event engine detected an inconsistent state.

    Examples: scheduling an event in the past, running a simulator that
    was already stopped, or an event handler corrupting the clock.
    """


class ConfigError(ReproError):
    """A configuration input (JSON spec or programmatic builder) is invalid.

    Carries an optional ``source`` describing the file or section the
    error came from, so that multi-file specs (service.json, graph.json,
    path.json, machines.json, client.json) produce actionable messages.
    """

    def __init__(self, message: str, *, source: str | None = None) -> None:
        self.source = source
        if source is not None:
            message = f"{source}: {message}"
        super().__init__(message)


class ResourceError(ReproError):
    """A hardware resource request cannot be satisfied.

    Raised when a deployment pins more threads than a machine has cores,
    references an unknown machine, or double-books a dedicated core.
    """


class TopologyError(ReproError):
    """The inter-microservice graph or path tree is malformed.

    Examples: a path node referencing an unknown microservice or
    execution path, a cyclic blocking dependency, or fan-in that can
    never be satisfied.
    """


class WorkloadError(ReproError):
    """A workload definition cannot be realised (bad rate, empty mix...)."""


class DistributionError(ReproError):
    """A processing-time distribution is invalid (negative scale, empty
    histogram, probabilities that do not sum to one...)."""
