"""Exception hierarchy for the uqSim reproduction.

All errors raised by the library derive from :class:`ReproError`, so
callers can catch a single base class. Sub-classes mark the subsystem
that detected the problem; configuration errors additionally carry the
offending file/section where available.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class SimulationError(ReproError):
    """The discrete-event engine detected an inconsistent state.

    Examples: scheduling an event in the past, running a simulator that
    was already stopped, or an event handler corrupting the clock.
    """


class SimulationAborted(SimulationError):
    """A :meth:`Simulator.run` guardrail tripped mid-run.

    Raised when a run exceeds its ``wall_clock_budget`` or its
    ``max_live_events`` bound, instead of hanging or exhausting memory.
    Carries a partial-progress snapshot so the caller can report how
    far the simulation got: ``clock`` (simulated seconds), ``events_processed``
    (since the simulator was built), ``queue_depth`` (live events still
    pending) and ``wall_clock`` (real seconds spent in this run).
    """

    def __init__(
        self,
        reason: str,
        *,
        clock: float,
        events_processed: int,
        queue_depth: int,
        wall_clock: float,
    ) -> None:
        self.reason = reason
        self.clock = clock
        self.events_processed = events_processed
        self.queue_depth = queue_depth
        self.wall_clock = wall_clock
        super().__init__(
            f"simulation aborted ({reason}) at t={clock:.6f}s after "
            f"{events_processed} events ({queue_depth} still queued, "
            f"{wall_clock:.2f}s wall clock)"
        )


class AuditError(SimulationError):
    """The end-of-run conservation audit found a broken invariant.

    Every generated request must be accounted for exactly once
    (``ok + timeout + shed + failed + in-flight``) and the clock must
    never run backwards; a violation means the simulation lost or
    double-counted work, so its statistics cannot be trusted.
    """


class ConfigError(ReproError):
    """A configuration input (JSON spec or programmatic builder) is invalid.

    Carries an optional ``source`` describing the file or section the
    error came from, so that multi-file specs (service.json, graph.json,
    path.json, machines.json, client.json) produce actionable messages.
    """

    def __init__(self, message: str, *, source: str | None = None) -> None:
        self.source = source
        if source is not None:
            message = f"{source}: {message}"
        super().__init__(message)


class ResourceError(ReproError):
    """A hardware resource request cannot be satisfied.

    Raised when a deployment pins more threads than a machine has cores,
    references an unknown machine, or double-books a dedicated core.
    """


class SchedulingError(ResourceError):
    """The control-plane scheduler cannot place a replica.

    Raised when no schedulable machine has enough free cores for a
    replica spec (the replica stays *pending* and the reconciler
    retries), or when a placement request is malformed.
    """


class TopologyError(ReproError):
    """The inter-microservice graph or path tree is malformed.

    Examples: a path node referencing an unknown microservice or
    execution path, a cyclic blocking dependency, or fan-in that can
    never be satisfied.
    """


class WorkloadError(ReproError):
    """A workload definition cannot be realised (bad rate, empty mix...)."""


class ShardingError(ReproError):
    """The sharded parallel simulation core detected a broken contract.

    Examples: a cross-shard message stamped earlier than the sender's
    conservative lookahead permits, a shard plan whose zero-lookahead
    (loopback) edges span shards, or a worker process that died
    mid-window. Sharding problems are always *configuration or
    engine* problems — a model that runs under ``shards=1`` never
    raises this.
    """


class DistributionError(ReproError):
    """A processing-time distribution is invalid (negative scale, empty
    histogram, probabilities that do not sum to one...)."""


class PartialSweepError(ReproError):
    """Some sweep items failed after exhausting their retry budget.

    Raised by :func:`repro.runner.parallel_map` (``failures="collect"``)
    only after every item has had its chance: ``results`` is the full
    in-order result list with an :class:`~repro.runner.ItemFailure` in
    each failed slot, and ``failures`` lists just the failed ones.
    Callers that can live with holes catch this and keep ``results``;
    journaled sweeps resume later and recompute only the holes.
    """

    def __init__(self, failures, results) -> None:
        self.failures = list(failures)
        self.results = results
        detail = "; ".join(
            f"item[{f.index}] {f.item!r}: {f.kind} after "
            f"{f.attempts} attempt(s)"
            for f in self.failures[:4]
        )
        if len(self.failures) > 4:
            detail += f"; ... {len(self.failures) - 4} more"
        super().__init__(
            f"{len(self.failures)} of {len(results)} sweep items failed "
            f"({detail})"
        )


class WorkerCrashError(ReproError):
    """A pool worker died (or hung past its timeout) running one item.

    Raised in fail-fast mode (``failures="raise"``) once the item has
    exhausted its retry budget; carries the structured
    :class:`~repro.runner.ItemFailure` as ``failure`` for attribution.
    """

    def __init__(self, failure) -> None:
        self.failure = failure
        super().__init__(
            f"worker {failure.kind} on item[{failure.index}] "
            f"{failure.item!r} after {failure.attempts} attempt(s): "
            f"{failure.error}"
        )


class FaultError(ReproError):
    """A fault plan cannot be realised.

    Examples: a fault event targeting an unknown instance or machine,
    a negative injection time, a recovery scheduled before its crash,
    or an unknown fault kind in faults.json.
    """


class RequestOutcomeError(ReproError):
    """Base class for errors describing a request's terminal outcome.

    Raised by :meth:`repro.service.Request.raise_for_outcome` (and
    closed-loop drivers that want failures to be loud) when a request
    resolved with a non-``ok`` outcome. Carries the offending request
    as ``request``.
    """

    def __init__(self, request, message: str | None = None) -> None:
        self.request = request
        super().__init__(
            message
            or f"request {request.request_id} resolved {request.outcome!r}"
        )


class RequestTimeout(RequestOutcomeError):
    """The request exceeded its resilience-policy timeout and was
    cancelled (outcome ``timeout``): every queued job was withdrawn and
    its connections reclaimed before the deadline response."""


class RequestShed(RequestOutcomeError):
    """Admission control refused the request up front (outcome
    ``shed``): queue-length or deadline-based load shedding decided the
    request could not meet its service objective."""


class RequestFailed(RequestOutcomeError):
    """The request failed mid-flight (outcome ``failed``): an instance
    crashed while holding its job, a down instance refused it, or an
    open circuit breaker rejected the hop."""
