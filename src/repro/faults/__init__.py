"""Deterministic fault injection for the simulated cluster.

A :class:`FaultPlan` declares *what* breaks and *when* — instance
crashes with in-flight-job disposition, recoveries, graceful drains,
stragglers (slow instances), and network-link degradation or partition.
The :class:`FaultInjector` arms the plan as ordinary simulator events,
so failure histories are exactly reproducible given the seed. Plans
load from ``faults.json`` via :func:`load_fault_plan`.

:mod:`repro.resilience` provides the policies that respond to these
faults; together they turn the simulator into a testbed for
availability questions (retry storms, hedging, graceful degradation)
the paper's performance-only model cannot ask.
"""

from .injector import FaultInjector
from .loader import load_fault_plan, parse_fault, parse_fault_plan
from .plan import (
    CRASH,
    DRAIN,
    HEAL,
    KINDS,
    LINK_DEGRADE,
    LINK_RESTORE,
    MACHINE_FAIL,
    MACHINE_RECOVER,
    PARTITION,
    RECOVER,
    SHARD_HANG,
    SHARD_KILL,
    SLOW,
    Fault,
    FaultPlan,
)

__all__ = [
    "CRASH",
    "DRAIN",
    "Fault",
    "FaultInjector",
    "FaultPlan",
    "HEAL",
    "KINDS",
    "LINK_DEGRADE",
    "LINK_RESTORE",
    "MACHINE_FAIL",
    "MACHINE_RECOVER",
    "PARTITION",
    "RECOVER",
    "SHARD_HANG",
    "SHARD_KILL",
    "SLOW",
    "load_fault_plan",
    "parse_fault",
    "parse_fault_plan",
]
