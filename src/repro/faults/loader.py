"""``faults.json`` -> :class:`~repro.faults.FaultPlan`.

The file is a JSON object with a ``"faults"`` list (or a bare list);
each entry names a fault ``kind`` plus its target fields::

    {"faults": [
      {"at": 1.0, "kind": "crash",   "instance": "leaf_0"},
      {"at": 2.0, "kind": "recover", "instance": "leaf_0"},
      {"at": 0.5, "kind": "slow",    "instance": "leaf_1", "factor": 10},
      {"at": 1.5, "kind": "partition", "src": "m0", "dst": "m1"},
      {"at": 2.5, "kind": "machine_fail", "machine": "m0"},
      {"at": 3, "kind": "shard_kill", "shard": 1}
    ]}

``shard_kill`` / ``shard_hang`` are execution-layer faults: ``at`` is
a conservative round index and ``shard`` the worker to strike; they
only apply to sharded runs (``--shards N``).

Validation errors surface as :class:`~repro.errors.ConfigError` (bad
file shape) or :class:`~repro.errors.FaultError` (bad fault fields),
both caught by the CLI.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from ..errors import ConfigError
from .plan import Fault, FaultPlan

_FIELDS = (
    "at",
    "kind",
    "instance",
    "src",
    "dst",
    "machine",
    "shard",
    "factor",
    "disposition",
)


def parse_fault(payload: dict, source: str) -> Fault:
    """Build one :class:`Fault` from a JSON object."""
    if not isinstance(payload, dict):
        raise ConfigError(f"{source}: each fault must be an object")
    unknown = set(payload) - set(_FIELDS)
    if unknown:
        raise ConfigError(
            f"{source}: unknown fault fields {sorted(unknown)}"
        )
    if "at" not in payload or "kind" not in payload:
        raise ConfigError(f"{source}: faults need 'at' and 'kind'")
    return Fault(
        at=float(payload["at"]),
        kind=str(payload["kind"]),
        instance=payload.get("instance"),
        src=payload.get("src"),
        dst=payload.get("dst"),
        machine=payload.get("machine"),
        shard=(
            int(payload["shard"]) if payload.get("shard") is not None
            else None
        ),
        factor=float(payload.get("factor", 1.0)),
        disposition=str(payload.get("disposition", "fail")),
    )


def parse_fault_plan(payload: Union[dict, list], source: str) -> FaultPlan:
    """Build a :class:`FaultPlan` from decoded ``faults.json`` content."""
    if isinstance(payload, dict):
        payload = payload.get("faults", [])
    if not isinstance(payload, list):
        raise ConfigError(f"{source}: expected a list of faults")
    plan = FaultPlan()
    for i, entry in enumerate(payload):
        plan.add(parse_fault(entry, f"{source}[{i}]"))
    return plan


def load_fault_plan(path: Union[str, Path]) -> FaultPlan:
    """Read and parse a ``faults.json`` file."""
    path = Path(path)
    if not path.exists():
        raise ConfigError(f"fault plan file not found: {path}")
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ConfigError(f"{path}: invalid JSON ({exc})") from exc
    return parse_fault_plan(payload, str(path))
