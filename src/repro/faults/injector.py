"""Arms a :class:`~repro.faults.FaultPlan` against a live simulation.

Each fault becomes one simulator event at its scheduled time (admin
priority, so faults land after same-timestamp arrivals/completions —
the state they see is the state a real operator's SIGKILL would see).
The injector records everything it fires in :attr:`FaultInjector.log`
for assertions and reports.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..engine import PRIORITY_ADMIN, Simulator
from ..errors import FaultError
from ..hardware import NetworkFabric
from ..topology import Deployment
from . import plan as _plan
from .plan import Fault, FaultPlan


class FaultInjector:
    """Schedules a fault plan's events onto a simulator."""

    def __init__(
        self,
        sim: Simulator,
        deployment: Deployment,
        network: Optional[NetworkFabric] = None,
        plan: Optional[FaultPlan] = None,
    ) -> None:
        self.sim = sim
        self.deployment = deployment
        self.network = network
        self.plan = plan or FaultPlan()
        self.log: List[Tuple[float, Fault]] = []
        self._armed = False

    def arm(self) -> "FaultInjector":
        """Schedule every fault in the plan (idempotent; call once,
        before or during the run — past-dated faults are rejected)."""
        if self._armed:
            return self
        self._armed = True
        for fault in self.plan.sorted():
            if fault.at < self.sim.now:
                raise FaultError(
                    f"fault at t={fault.at} is in the past (now={self.sim.now})"
                )
            self.sim.schedule(
                fault.at - self.sim.now,
                self._fire,
                fault,
                priority=PRIORITY_ADMIN,
            )
        return self

    def _fire(self, fault: Fault) -> None:
        self.log.append((self.sim.now, fault))
        if fault.kind in (_plan.CRASH, _plan.RECOVER, _plan.DRAIN, _plan.SLOW):
            instance = self.deployment.find_instance(fault.instance)
            if fault.kind == _plan.CRASH:
                instance.crash(disposition=fault.disposition)
            elif fault.kind == _plan.RECOVER:
                instance.recover()
            elif fault.kind == _plan.DRAIN:
                instance.start_draining()
            else:
                instance.degrade(fault.factor)
            return
        if self.network is None:
            raise FaultError(
                f"{fault.kind!r} fault needs a NetworkFabric, none was given"
            )
        if fault.kind == _plan.LINK_DEGRADE:
            self.network.degrade_link(fault.src, fault.dst, fault.factor)
        elif fault.kind == _plan.LINK_RESTORE:
            self.network.restore_link(fault.src, fault.dst)
        elif fault.kind == _plan.PARTITION:
            self.network.partition(fault.src, fault.dst)
        else:
            self.network.heal(fault.src, fault.dst)

    def __repr__(self) -> str:
        return (
            f"<FaultInjector planned={len(self.plan)} fired={len(self.log)}>"
        )
