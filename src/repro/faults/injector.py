"""Arms a :class:`~repro.faults.FaultPlan` against a live simulation.

Each fault becomes one simulator event at its scheduled time (admin
priority, so faults land after same-timestamp arrivals/completions —
the state they see is the state a real operator's SIGKILL would see).
The injector records everything it fires in :attr:`FaultInjector.log`
for assertions and reports.

:meth:`FaultInjector.arm` validates every fault target up front — an
instance, machine, or link endpoint that does not exist in the
deployment fails fast with a :class:`~repro.errors.FaultError` instead
of blowing up minutes into a run.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..engine import PRIORITY_ADMIN, Simulator
from ..errors import FaultError, ReproError
from ..hardware import Cluster, NetworkFabric
from ..service.microservice import STATE_DOWN
from ..topology import Deployment
from . import plan as _plan
from .plan import Fault, FaultPlan


class FaultInjector:
    """Schedules a fault plan's events onto a simulator."""

    def __init__(
        self,
        sim: Simulator,
        deployment: Deployment,
        network: Optional[NetworkFabric] = None,
        plan: Optional[FaultPlan] = None,
        cluster: Optional[Cluster] = None,
    ) -> None:
        """*cluster* is required for machine-level faults
        (``fail_machine``/``recover_machine``) and, when given, lets
        :meth:`arm` validate link-fault endpoints as real machines."""
        self.sim = sim
        self.deployment = deployment
        self.network = network
        self.plan = plan or FaultPlan()
        self.cluster = cluster
        self.log: List[Tuple[float, Fault]] = []
        self._armed = False

    def arm(self) -> "FaultInjector":
        """Schedule every fault in the plan (idempotent; call once,
        before or during the run — past-dated faults are rejected and
        every fault target must exist)."""
        if self._armed:
            return self
        self._armed = True
        for fault in self.plan.sorted():
            if fault.at < self.sim.now:
                raise FaultError(
                    f"fault at t={fault.at} is in the past (now={self.sim.now})"
                )
            self._validate_target(fault)
            self.sim.schedule(
                fault.at - self.sim.now,
                self._fire,
                fault,
                priority=PRIORITY_ADMIN,
            )
        return self

    def _validate_target(self, fault: Fault) -> None:
        """Fail fast on targets that do not exist in the deployment."""
        if fault.kind in _plan._SHARD_KINDS:
            raise FaultError(
                f"{fault.kind!r} targets the sharded execution layer, "
                f"not the simulated world; run with --shards N so the "
                f"shard supervisor can inject it"
            )
        if fault.kind in _plan._INSTANCE_KINDS:
            try:
                self.deployment.find_instance(fault.instance)
            except ReproError:
                raise FaultError(
                    f"{fault.kind!r} fault at t={fault.at} targets unknown "
                    f"instance {fault.instance!r}; deployed instances: "
                    f"{sorted(i.name for i in self.deployment.all_instances)}"
                ) from None
            return
        if fault.kind in _plan._MACHINE_KINDS:
            if self.cluster is None:
                raise FaultError(
                    f"{fault.kind!r} fault needs a Cluster, none was given"
                )
            if fault.machine not in self.cluster:
                raise FaultError(
                    f"{fault.kind!r} fault at t={fault.at} targets unknown "
                    f"machine {fault.machine!r}; cluster has "
                    f"{sorted(self.cluster.machine_names)}"
                )
            return
        # Link kinds.
        if self.network is None:
            raise FaultError(
                f"{fault.kind!r} fault needs a NetworkFabric, none was given"
            )
        if self.cluster is not None:
            for endpoint in (fault.src, fault.dst):
                if endpoint not in self.cluster:
                    raise FaultError(
                        f"{fault.kind!r} fault at t={fault.at} references "
                        f"unknown machine {endpoint!r}; cluster has "
                        f"{sorted(self.cluster.machine_names)}"
                    )

    # Firing ---------------------------------------------------------------

    def _fire(self, fault: Fault) -> None:
        self.log.append((self.sim.now, fault))
        if fault.kind in _plan._INSTANCE_KINDS:
            instance = self.deployment.find_instance(fault.instance)
            if fault.kind == _plan.CRASH:
                instance.crash(disposition=fault.disposition)
            elif fault.kind == _plan.RECOVER:
                instance.recover()
            elif fault.kind == _plan.DRAIN:
                instance.start_draining()
            else:
                instance.degrade(fault.factor)
            return
        if fault.kind in _plan._MACHINE_KINDS:
            self._fire_machine(fault)
            return
        if self.network is None:
            raise FaultError(
                f"{fault.kind!r} fault needs a NetworkFabric, none was given"
            )
        if fault.kind == _plan.LINK_DEGRADE:
            self.network.degrade_link(fault.src, fault.dst, fault.factor)
        elif fault.kind == _plan.LINK_RESTORE:
            self.network.restore_link(fault.src, fault.dst)
        elif fault.kind == _plan.PARTITION:
            self.network.partition(fault.src, fault.dst)
        else:
            self.network.heal(fault.src, fault.dst)

    def _hosted_instances(self, machine_name: str) -> list:
        """Every deployed instance pinned to *machine_name*, tier
        replicas first, then the machine's netproc."""
        hosted = [
            inst
            for inst in self.deployment.all_instances
            if inst.machine_name == machine_name
        ]
        netproc = self.deployment.netproc(machine_name)
        if netproc is not None:
            hosted.append(netproc)
        return hosted

    def _fire_machine(self, fault: Fault) -> None:
        machine = self.cluster.machine(fault.machine)
        if fault.kind == _plan.MACHINE_FAIL:
            machine.fail()
            for instance in self._hosted_instances(fault.machine):
                instance.crash(disposition=fault.disposition)
        else:
            machine.restore()
            # Only still-deployed, still-down instances come back:
            # replicas the control plane retired and rescheduled
            # elsewhere stay gone, and a replica mid-drain keeps
            # draining.
            for instance in self._hosted_instances(fault.machine):
                if instance.state == STATE_DOWN:
                    instance.recover()

    def __repr__(self) -> str:
        return (
            f"<FaultInjector planned={len(self.plan)} fired={len(self.log)}>"
        )
