"""Fault schedules: what breaks, when, and how.

A :class:`FaultPlan` is an ordered, declarative list of :class:`Fault`
records — instance crashes/recoveries, stragglers (slow instances), and
network-link degradations/partitions — built either programmatically
(``plan.crash(1.0, "leaf_0")``) or from ``faults.json``
(:func:`repro.faults.load_fault_plan`). The plan itself is inert data;
:class:`~repro.faults.FaultInjector` arms it against a live simulation.

Determinism: fault times are explicit simulation timestamps and the
injector schedules them on the simulator's deterministic event queue,
so a given (plan, seed) pair always reproduces the same failure
history.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..errors import FaultError

CRASH = "crash"
RECOVER = "recover"
DRAIN = "drain"
SLOW = "slow"
LINK_DEGRADE = "link_degrade"
LINK_RESTORE = "link_restore"
PARTITION = "partition"
HEAL = "heal"
MACHINE_FAIL = "machine_fail"
MACHINE_RECOVER = "machine_recover"
SHARD_KILL = "shard_kill"
SHARD_HANG = "shard_hang"

KINDS = (
    CRASH,
    RECOVER,
    DRAIN,
    SLOW,
    LINK_DEGRADE,
    LINK_RESTORE,
    PARTITION,
    HEAL,
    MACHINE_FAIL,
    MACHINE_RECOVER,
    SHARD_KILL,
    SHARD_HANG,
)

_INSTANCE_KINDS = (CRASH, RECOVER, DRAIN, SLOW)
_LINK_KINDS = (LINK_DEGRADE, LINK_RESTORE, PARTITION, HEAL)
_MACHINE_KINDS = (MACHINE_FAIL, MACHINE_RECOVER)
#: Execution-layer faults: they strike the *worker process* running a
#: shard, not anything inside the simulated world, and ``at`` is a
#: conservative round index rather than a simulated timestamp.
_SHARD_KINDS = (SHARD_KILL, SHARD_HANG)


@dataclass(frozen=True)
class Fault:
    """One scheduled fault.

    ``kind`` selects the mechanism; ``instance`` targets instance kinds
    (``crash``/``recover``/``drain``/``slow``), ``src``/``dst`` target
    link kinds (``link_degrade``/``link_restore``/``partition``/
    ``heal``), and ``machine`` targets machine kinds
    (``machine_fail``/``machine_recover`` — whole-server faults that
    fan out to every hosted instance), and ``shard`` targets the
    execution-layer kinds (``shard_kill``/``shard_hang`` — SIGKILL or
    silence the worker *process* running that shard; ``at`` is then a
    conservative round index, not a simulated time). ``factor`` is the slow-down
    multiplier for ``slow`` and ``link_degrade``; ``disposition`` says
    what a crash does to in-flight jobs (``fail`` notifies upstreams,
    ``drop`` loses them silently).
    """

    at: float
    kind: str
    instance: Optional[str] = None
    src: Optional[str] = None
    dst: Optional[str] = None
    machine: Optional[str] = None
    shard: Optional[int] = None
    factor: float = 1.0
    disposition: str = "fail"

    def __post_init__(self) -> None:
        if self.at < 0:
            raise FaultError(f"fault time must be >= 0, got {self.at!r}")
        if self.kind not in KINDS:
            raise FaultError(
                f"unknown fault kind {self.kind!r}; expected one of {KINDS}"
            )
        if self.kind in _INSTANCE_KINDS and not self.instance:
            raise FaultError(f"{self.kind!r} fault needs an instance name")
        if self.kind in _LINK_KINDS and not (self.src and self.dst):
            raise FaultError(f"{self.kind!r} fault needs src and dst machines")
        if self.kind in _MACHINE_KINDS and not self.machine:
            raise FaultError(f"{self.kind!r} fault needs a machine name")
        if self.kind in _SHARD_KINDS:
            if self.shard is None or self.shard < 0:
                raise FaultError(
                    f"{self.kind!r} fault needs a shard id >= 0, "
                    f"got {self.shard!r}"
                )
            if self.at != int(self.at):
                raise FaultError(
                    f"{self.kind!r} faults fire at a conservative round "
                    f"index (an integer), got at={self.at!r}"
                )
        if self.kind in (SLOW, LINK_DEGRADE) and self.factor < 1.0:
            raise FaultError(
                f"{self.kind!r} factor must be >= 1, got {self.factor!r}"
            )


@dataclass
class FaultPlan:
    """An ordered schedule of faults to inject into one simulation."""

    faults: List[Fault] = field(default_factory=list)

    def add(self, fault: Fault) -> "FaultPlan":
        """Append a pre-built :class:`Fault` (chainable)."""
        self.faults.append(fault)
        return self

    def crash(
        self, at: float, instance: str, disposition: str = "fail"
    ) -> "FaultPlan":
        """Hard-kill *instance* at time *at* (chainable)."""
        return self.add(
            Fault(at=at, kind=CRASH, instance=instance, disposition=disposition)
        )

    def recover(self, at: float, instance: str) -> "FaultPlan":
        """Bring a crashed/draining *instance* back up at *at*."""
        return self.add(Fault(at=at, kind=RECOVER, instance=instance))

    def drain(self, at: float, instance: str) -> "FaultPlan":
        """Stop routing new work to *instance* at *at* (graceful)."""
        return self.add(Fault(at=at, kind=DRAIN, instance=instance))

    def slow(self, at: float, instance: str, factor: float) -> "FaultPlan":
        """Degrade *instance* to ``factor`` x compute cost at *at*
        (``factor=1`` restores full speed)."""
        return self.add(Fault(at=at, kind=SLOW, instance=instance, factor=factor))

    def degrade_link(
        self, at: float, src: str, dst: str, factor: float
    ) -> "FaultPlan":
        """Multiply the src<->dst wire delay by ``factor`` from *at*."""
        return self.add(
            Fault(at=at, kind=LINK_DEGRADE, src=src, dst=dst, factor=factor)
        )

    def restore_link(self, at: float, src: str, dst: str) -> "FaultPlan":
        """Undo a link degradation at *at*."""
        return self.add(Fault(at=at, kind=LINK_RESTORE, src=src, dst=dst))

    def partition(self, at: float, src: str, dst: str) -> "FaultPlan":
        """Sever the src<->dst link at *at*: messages are dropped."""
        return self.add(Fault(at=at, kind=PARTITION, src=src, dst=dst))

    def heal(self, at: float, src: str, dst: str) -> "FaultPlan":
        """Heal a partition at *at*."""
        return self.add(Fault(at=at, kind=HEAL, src=src, dst=dst))

    def fail_machine(
        self, at: float, machine: str, disposition: str = "fail"
    ) -> "FaultPlan":
        """Kill the whole server at *at*: every hosted instance (tier
        replicas and the machine's netproc) crashes with *disposition*
        and the machine becomes unschedulable until recovered."""
        return self.add(
            Fault(
                at=at,
                kind=MACHINE_FAIL,
                machine=machine,
                disposition=disposition,
            )
        )

    def recover_machine(self, at: float, machine: str) -> "FaultPlan":
        """Bring a failed server back at *at*: the machine becomes
        schedulable again and every still-deployed hosted instance
        recovers."""
        return self.add(Fault(at=at, kind=MACHINE_RECOVER, machine=machine))

    def kill_shard(self, shard_id: int, at_round: int) -> "FaultPlan":
        """SIGKILL the worker process of shard *shard_id* at
        conservative round *at_round* (an execution-layer fault: the
        supervisor must rebuild and replay the shard, and the run's
        results must not change)."""
        return self.add(Fault(at=at_round, kind=SHARD_KILL, shard=shard_id))

    def hang_shard(self, shard_id: int, at_round: int) -> "FaultPlan":
        """Silence the worker process of shard *shard_id* at round
        *at_round* — alive but unresponsive, the failure mode the
        supervisor's window deadline exists for."""
        return self.add(Fault(at=at_round, kind=SHARD_HANG, shard=shard_id))

    def shard_faults(self) -> List[Fault]:
        """The execution-layer (``shard_*``) subset, in round order."""
        return [f for f in self.sorted() if f.kind in _SHARD_KINDS]

    def sim_faults(self) -> List[Fault]:
        """The in-simulation subset (everything except ``shard_*``)."""
        return [f for f in self.sorted() if f.kind not in _SHARD_KINDS]

    def sorted(self) -> List[Fault]:
        """The schedule in injection order (stable by time)."""
        return sorted(self.faults, key=lambda f: f.at)

    def __len__(self) -> int:
        return len(self.faults)

    def __repr__(self) -> str:
        return f"<FaultPlan faults={len(self.faults)}>"
