"""Utilisation-driven horizontal autoscaling.

A use case in the spirit of the paper's SSV studies: the intro
motivates uqSim with cluster management ("the scheduler must now
determine the impact of dependencies between any two microservices in
order to guarantee end-to-end QoS"). This module provides the simplest
such manager: replicas of a tier are activated/deactivated to keep
utilisation inside a band, trading provisioned capacity (core-hours)
against latency under time-varying load.

Mechanics: the tier is deployed at its maximum replica count (cores are
pinned up front, as everywhere in uqSim); an :class:`ActiveSetBalancer`
routes requests only to the first *active_count* replicas, and the
:class:`AutoScaler` adjusts that count each decision interval from
measured utilisation. Deactivated replicas finish their queued work and
then sit idle — their cores count as reclaimed capacity in the
:meth:`AutoScaler.core_seconds_active` accounting.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..engine import PRIORITY_MONITOR, Simulator
from ..errors import ConfigError
from ..service import Microservice
from ..telemetry import TimeSeries
from ..topology.load_balancer import LoadBalancer


class ActiveSetBalancer(LoadBalancer):
    """Round-robin over the first ``active_count`` replicas."""

    def __init__(self, total: int, initial_active: int = 1) -> None:
        if total < 1:
            raise ConfigError(f"need >= 1 replica, got {total}")
        if not 1 <= initial_active <= total:
            raise ConfigError(
                f"initial_active must be in [1, {total}], got {initial_active}"
            )
        self.total = total
        self.active_count = initial_active
        self._next = 0

    def pick(
        self,
        instances: Sequence[Microservice],
        rng: np.random.Generator,
    ) -> Microservice:
        alive = self._eligible(instances)
        active = min(self.active_count, len(alive))
        chosen = alive[self._next % active]
        self._next += 1
        return chosen

    def set_active(self, count: int) -> int:
        self.active_count = max(1, min(self.total, count))
        return self.active_count


class AutoScaler:
    """Keeps a tier's per-active-replica utilisation inside a band.

    Each *decision_interval*, measure the mean utilisation of the
    active replicas over the last interval; above *high_watermark*
    activate one more replica, below *low_watermark* deactivate one.
    One step at a time — the same damping rationale as Algorithm 1's
    one-tier-at-a-time slowdowns.

    With an attached :class:`~repro.telemetry.slo.SLOMonitor`
    (*slo_monitor*), a currently-breached SLO overrides the
    utilisation band: the scaler never steps down while burning and
    forces a step up, so recovering QoS outranks reclaiming capacity.
    """

    def __init__(
        self,
        sim: Simulator,
        replicas: Sequence[Microservice],
        balancer: ActiveSetBalancer,
        decision_interval: float = 0.5,
        low_watermark: float = 0.3,
        high_watermark: float = 0.7,
        slo_monitor=None,
    ) -> None:
        if not replicas:
            raise ConfigError("autoscaler needs at least one replica")
        if not 0.0 <= low_watermark < high_watermark <= 1.0:
            raise ConfigError(
                f"need 0 <= low < high <= 1, got "
                f"({low_watermark!r}, {high_watermark!r})"
            )
        if decision_interval <= 0:
            raise ConfigError(
                f"decision_interval must be > 0, got {decision_interval!r}"
            )
        self.sim = sim
        self.replicas: List[Microservice] = list(replicas)
        self.balancer = balancer
        self.decision_interval = float(decision_interval)
        self.low_watermark = low_watermark
        self.high_watermark = high_watermark

        self.slo_monitor = slo_monitor

        self._last_busy = [0.0] * len(self.replicas)
        self._last_time = 0.0
        self.decisions = 0
        self.slo_scale_ups = 0
        self.active_series = TimeSeries("active_replicas")
        self.utilization_series = TimeSeries("active_utilization")
        self._core_seconds = 0.0

    def start(self) -> "AutoScaler":
        self._last_time = self.sim.now
        self._last_busy = [self._busy_of(r) for r in self.replicas]
        self.sim.schedule(
            self.decision_interval, self._cycle, priority=PRIORITY_MONITOR
        )
        return self

    @staticmethod
    def _busy_of(replica: Microservice) -> float:
        now = replica.sim.now
        busy = 0.0
        for core in replica.cores.cores:
            busy += core.busy_time
            if core.busy and core._busy_since is not None:
                busy += now - core._busy_since
        return busy

    def _cycle(self) -> None:
        self.sim.schedule(
            self.decision_interval, self._cycle, priority=PRIORITY_MONITOR
        )
        now = self.sim.now
        window = now - self._last_time
        active = self.balancer.active_count
        # Provisioned capacity accounting: active replicas' cores.
        self._core_seconds += window * sum(
            len(self.replicas[i].cores) for i in range(active)
        )
        utils = []
        for i, replica in enumerate(self.replicas):
            busy = self._busy_of(replica)
            if i < active and window > 0:
                utils.append(
                    (busy - self._last_busy[i]) / (window * len(replica.cores))
                )
            self._last_busy[i] = busy
        self._last_time = now
        mean_util = float(np.mean(utils)) if utils else 0.0
        self.decisions += 1
        self.utilization_series.append(now, mean_util)

        slo_burning = self.slo_monitor is not None and any(
            state.breached for state in self.slo_monitor.states
        )
        if slo_burning:
            # A breached objective outranks the utilisation band: add
            # capacity now, and never reclaim it mid-breach.
            if self.balancer.set_active(active + 1) > active:
                self.slo_scale_ups += 1
        elif mean_util > self.high_watermark:
            self.balancer.set_active(active + 1)
        elif mean_util < self.low_watermark and active > 1:
            self.balancer.set_active(active - 1)
        self.active_series.append(now, self.balancer.active_count)

    @property
    def active(self) -> int:
        return self.balancer.active_count

    def core_seconds_active(self) -> float:
        """Provisioned core-seconds so far (the cost side of scaling)."""
        return self._core_seconds

    def __repr__(self) -> str:
        return (
            f"<AutoScaler replicas={len(self.replicas)} "
            f"active={self.active} band=({self.low_watermark},"
            f"{self.high_watermark})>"
        )
