"""Horizontal autoscaling use case (library extension; see
DESIGN.md)."""

from .autoscaler import ActiveSetBalancer, AutoScaler

__all__ = ["ActiveSetBalancer", "AutoScaler"]
