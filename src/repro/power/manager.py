"""The QoS-aware power manager (paper Algorithm 1).

A periodic controller dividing the end-to-end tail-latency QoS into
per-tier QoS targets. Each decision interval it reads the trailing
per-tier and end-to-end p99 latencies and either

* (QoS met) records the observation into the matching latency bucket,
  periodically re-draws the target bucket / per-tier QoS tuple, and
  slows down AT MOST ONE tier — the one with the largest latency slack
  — by one DVFS step ("the scheduler only slows down 1 tier at a time,
  to prevent cascading violations"), or
* (QoS violated) penalises the bucket the current target came from,
  appends the target to its failing list, re-draws a target, and speeds
  up every tier whose latency exceeds its per-tier target.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..engine import PRIORITY_MONITOR, Simulator
from ..errors import ConfigError
from ..service import Microservice
from ..telemetry import TimeSeries, WindowedLatency
from ..telemetry.slo import LATENCY, SLO
from .buckets import Bucket, LatencyBuckets, TierTuple

#: How many decision cycles between voluntary target re-draws
#: (Algorithm 1 line 10's "CycleCount > Interval").
RETARGET_EVERY = 5


class PowerManager:
    """Runs Algorithm 1 inside the simulation."""

    def __init__(
        self,
        sim: Simulator,
        tiers: Dict[str, Sequence[Microservice]],
        client_latencies: WindowedLatency,
        qos_target: Optional[float] = None,
        decision_interval: float = 0.5,
        num_buckets: int = 10,
        percentile: float = 99.0,
        min_samples: int = 20,
        slo: Optional[SLO] = None,
    ) -> None:
        """
        *tiers* maps tier name -> instances whose DVFS is actuated
        together; *client_latencies* is the end-to-end trailing window
        the client feeds; *qos_target* is the end-to-end tail-latency
        QoS in seconds. Alternatively pass a latency *slo*
        (:class:`~repro.telemetry.slo.SLO`): Algorithm 1's QoS check
        then evaluates that objective — the threshold becomes the QoS
        target and the objective's percentile the sensed statistic — so
        the controller and the SLO alerter judge the run by the same
        declarative objective.
        """
        if not tiers:
            raise ConfigError("power manager needs at least one tier")
        if slo is not None:
            if slo.metric != LATENCY:
                raise ConfigError(
                    f"power manager needs a latency SLO, got {slo.name!r}"
                )
            if qos_target is not None and qos_target != slo.threshold:
                raise ConfigError(
                    "pass either qos_target or slo, not conflicting both"
                )
            qos_target = slo.threshold
            percentile = slo.percentile
        if qos_target is None:
            raise ConfigError("power manager needs qos_target or slo")
        if qos_target <= 0:
            raise ConfigError(f"qos_target must be > 0, got {qos_target!r}")
        if decision_interval <= 0:
            raise ConfigError(
                f"decision_interval must be > 0, got {decision_interval!r}"
            )
        self.sim = sim
        self.slo = slo
        self.tier_names: List[str] = list(tiers)
        self.tiers = {name: list(instances) for name, instances in tiers.items()}
        self.client_latencies = client_latencies
        self.qos_target = float(qos_target)
        self.decision_interval = float(decision_interval)
        self.percentile = percentile
        self.min_samples = min_samples
        self._rng = sim.random.stream("power-manager")

        # Per-tier trailing latency sensors, fed by completion listeners.
        # The window matches the decision interval (floored for sample
        # count): the controller acts on the state of the last interval,
        # not a stale multi-interval average.
        sensor_window = max(decision_interval, 0.05)
        self._tier_windows: Dict[str, WindowedLatency] = {}
        for name, instances in self.tiers.items():
            window = WindowedLatency(sensor_window, name)
            self._tier_windows[name] = window
            for instance in instances:
                instance.on_job_complete(
                    lambda job, _w=window: _w.record(
                        job.completed_at, job.service_latency
                    )
                )

        # Learning state.
        self.buckets = LatencyBuckets(
            num_buckets, span=2.0 * self.qos_target, num_tiers=len(self.tiers)
        )
        self._target_bucket: Optional[Bucket] = None
        self._target_tuple: Optional[TierTuple] = None
        self._cycles_since_retarget = 0

        # Telemetry (Fig 16 / Table III).
        self.decisions = 0
        self.violations = 0
        self.p99_series = TimeSeries("e2e_p99")
        self.frequency_series: Dict[str, TimeSeries] = {
            name: TimeSeries(f"freq/{name}") for name in self.tier_names
        }

    # Lifecycle ------------------------------------------------------------

    def start(self) -> "PowerManager":
        """Schedule the first decision cycle."""
        self.sim.schedule(
            self.decision_interval, self._cycle, priority=PRIORITY_MONITOR
        )
        return self

    @property
    def violation_rate(self) -> float:
        """Fraction of decision intervals that violated QoS (Table III)."""
        if self.decisions == 0:
            return 0.0
        return self.violations / self.decisions

    def tier_frequency(self, tier: str) -> float:
        return self.tiers[tier][0].frequency

    # Decision loop ---------------------------------------------------------

    def _tier_stats(self) -> Optional[TierTuple]:
        values = []
        for name in self.tier_names:
            p = self._tier_windows[name].percentile(self.percentile)
            if p is None:
                return None
            values.append(p)
        return tuple(values)

    def _set_tier_frequency(self, tier: str, frequency: float) -> None:
        for instance in self.tiers[tier]:
            instance.set_frequency(frequency)

    def _step_tier(self, tier: str, direction: int, steps: int = 1) -> None:
        instances = self.tiers[tier]
        ladder = instances[0].cores.cores[0].ladder
        current = instances[0].frequency
        if direction < 0:
            target = ladder.step_down(current, steps)
        else:
            target = ladder.step_up(current, steps)
        if target != current:
            self._set_tier_frequency(tier, target)

    def _retarget(self) -> None:
        bucket, tier_tuple = self.buckets.choose_target(self._rng)
        if bucket is not None:
            self._target_bucket = bucket
            self._target_tuple = tier_tuple
        self._cycles_since_retarget = 0

    def _cycle(self) -> None:
        self.sim.schedule(
            self.decision_interval, self._cycle, priority=PRIORITY_MONITOR
        )
        e2e = (
            self.client_latencies.percentile(self.percentile)
            if len(self.client_latencies) >= self.min_samples
            else None
        )
        if e2e is None:
            return  # not enough traffic yet to act on
        self.decisions += 1
        self.p99_series.append(self.sim.now, e2e)
        stats = self._tier_stats()

        if e2e < self.qos_target:
            # QoS met (Algorithm 1 lines 5-14).
            if stats is not None:
                self.buckets.observe(e2e, stats)
            self._cycles_since_retarget += 1
            if self._cycles_since_retarget >= RETARGET_EVERY:
                self._retarget()
            self._slow_down_one_tier(stats)
        else:
            # QoS violated (lines 15-21).
            self.violations += 1
            if self._target_bucket is not None and self._target_tuple is not None:
                self._target_bucket.penalise()
                self._target_bucket.record_failure(self._target_tuple)
            self._retarget()
            self._speed_up_lagging_tiers(stats)

        for name in self.tier_names:
            self.frequency_series[name].append(
                self.sim.now, self.tier_frequency(name)
            )

    def _slow_down_one_tier(self, stats: Optional[TierTuple]) -> None:
        """Pick the tier with the most slack against its per-tier QoS
        and lower its frequency by one step (lines 10-14)."""
        if stats is None:
            return
        target = self._target_tuple
        if target is None:
            # No learned target yet: split the end-to-end QoS evenly,
            # the algorithm's cold-start divide-and-conquer guess.
            target = tuple(
                self.qos_target / len(self.tier_names)
                for _ in self.tier_names
            )
        slacks = [
            (t - s) / t if t > 0 else 0.0 for s, t in zip(stats, target)
        ]
        # Highest slack first, skipping tiers already at the DVFS floor
        # (stepping them down again would silently do nothing and starve
        # the other tiers of their turn).
        for idx in sorted(range(len(slacks)), key=lambda i: -slacks[i]):
            if slacks[idx] <= 0:
                return  # no remaining tier has positive slack
            tier = self.tier_names[idx]
            instances = self.tiers[tier]
            ladder = instances[0].cores.cores[0].ladder
            if instances[0].frequency > ladder.min:
                # Still "at most 1 tier" per cycle (Algorithm 1 line
                # 14), but descend faster while the slack is large so
                # long decision intervals also converge within a run.
                steps = 3 if slacks[idx] > 0.6 else (
                    2 if slacks[idx] > 0.3 else 1
                )
                self._step_tier(tier, direction=-1, steps=steps)
                return

    def _speed_up_lagging_tiers(self, stats: Optional[TierTuple]) -> None:
        """Raise the frequency of every tier running late (line 20)."""
        if stats is None:
            # Blind violation: speed everything up.
            for name in self.tier_names:
                self._step_tier(name, direction=+1)
            return
        target = self._target_tuple or tuple(
            self.qos_target / len(self.tier_names) for _ in self.tier_names
        )
        for name, observed, tier_target in zip(self.tier_names, stats, target):
            if observed > tier_target:
                # Violations recover aggressively: two steps up.
                self._step_tier(name, direction=+1, steps=2)

    def __repr__(self) -> str:
        return (
            f"<PowerManager tiers={self.tier_names} qos={self.qos_target*1e3}ms "
            f"interval={self.decision_interval}s violations="
            f"{self.violations}/{self.decisions}>"
        )
