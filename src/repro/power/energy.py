"""Core energy accounting for the power-management study.

The paper motivates Algorithm 1 with datacenter energy proportionality
(SSV-B); this module quantifies what the DVFS schedule actually saved.
Per-core power follows the standard CMOS model::

    P(f) = P_static + P_dynamic_max * (f / f_max)^3

(dynamic power tracks f x V^2 and voltage scales roughly with
frequency). Integrating a tier's frequency time series gives its energy
over the run, compared against the always-max baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..errors import ReproError
from ..telemetry import TimeSeries


@dataclass
class CorePowerModel:
    """Per-core power in Watts at a given frequency."""

    static_w: float = 5.0
    dynamic_max_w: float = 15.0
    f_max: float = 2.6e9

    def power(self, frequency: float) -> float:
        if frequency <= 0:
            raise ReproError(f"frequency must be > 0, got {frequency!r}")
        ratio = frequency / self.f_max
        return self.static_w + self.dynamic_max_w * ratio**3


def tier_energy(
    frequency_series: TimeSeries,
    num_cores: int,
    model: CorePowerModel,
    t_end: float,
) -> float:
    """Joules consumed by a tier whose cores followed *frequency_series*.

    The series is piecewise-constant between samples; the last sample
    extends to *t_end*.
    """
    if num_cores < 1:
        raise ReproError(f"num_cores must be >= 1, got {num_cores}")
    times = frequency_series.times
    freqs = frequency_series.values
    if times.size == 0:
        raise ReproError("empty frequency series")
    if t_end < times[-1]:
        raise ReproError(
            f"t_end ({t_end}) precedes the last sample ({times[-1]})"
        )
    # Assume the first recorded frequency also held from t=0.
    boundaries = np.concatenate([[0.0], times[1:], [t_end]])
    energy = 0.0
    for i, frequency in enumerate(freqs):
        duration = boundaries[i + 1] - boundaries[i]
        energy += model.power(float(frequency)) * duration
    return energy * num_cores


@dataclass
class EnergyReport:
    """Energy outcome of one power-managed run."""

    managed_joules: float
    baseline_joules: float

    @property
    def savings_fraction(self) -> float:
        if self.baseline_joules <= 0:
            return 0.0
        return 1.0 - self.managed_joules / self.baseline_joules


def energy_report(
    frequency_series: Dict[str, TimeSeries],
    cores_per_tier: Dict[str, int],
    t_end: float,
    model: CorePowerModel = None,
) -> EnergyReport:
    """Total energy of all managed tiers vs the run-at-max baseline."""
    model = model or CorePowerModel()
    managed = 0.0
    baseline = 0.0
    for tier, series in frequency_series.items():
        cores = cores_per_tier[tier]
        managed += tier_energy(series, cores, model, t_end)
        baseline += model.power(model.f_max) * cores * t_end
    return EnergyReport(managed_joules=managed, baseline_joules=baseline)
