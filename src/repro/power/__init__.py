"""QoS-aware power management for microservices (paper SSV-B,
Algorithm 1)."""

from .buckets import Bucket, LatencyBuckets, no_more_relaxed
from .energy import CorePowerModel, EnergyReport, energy_report, tier_energy
from .manager import PowerManager

__all__ = [
    "Bucket",
    "CorePowerModel",
    "EnergyReport",
    "LatencyBuckets",
    "PowerManager",
    "energy_report",
    "no_more_relaxed",
    "tier_energy",
]
