"""Latency buckets for the power-management algorithm.

Paper SSV-B: "our algorithm divides the tail latency space into a
number of buckets, with each bucket corresponding to a given end-to-end
QoS range, and classifies the observed per-tier latencies into the
corresponding buckets. ... Different buckets are equally likely to be
visited initially, and as the application execution progresses, the
scheduler learns which buckets are more likely to meet the end-to-end
tail latency requirement, and adjusts the weights accordingly. To
refine the recorded per-tier latencies, every bucket also keeps a list
of previous per-tier tuples that fail to meet QoS when used as the
latency target, and a new per-tier tuple is only inserted if it is no
more relaxed than any of the failing tuples."
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..errors import ConfigError

TierTuple = Tuple[float, ...]

#: Multiplicative preference updates (learning rate of the scheduler).
PREFERENCE_BOOST = 1.25
PREFERENCE_PENALTY = 0.6
MIN_PREFERENCE = 0.05
MAX_STORED_TUPLES = 64
MAX_FAILING_TUPLES = 64


def no_more_relaxed(candidate: TierTuple, failing: TierTuple) -> bool:
    """True when *candidate* is NOT element-wise looser than *failing*.

    A candidate that is >= a known-failing tuple in every tier (i.e. at
    least as relaxed everywhere) would fail for the same reason; any
    tier where the candidate is strictly tighter makes it admissible.
    """
    if len(candidate) != len(failing):
        raise ConfigError(
            f"tier count mismatch: {len(candidate)} vs {len(failing)}"
        )
    return any(c < f for c, f in zip(candidate, failing))


class Bucket:
    """One end-to-end latency range and its per-tier knowledge."""

    def __init__(self, index: int, lower: float, upper: float) -> None:
        self.index = index
        self.lower = lower
        self.upper = upper
        self.preference = 1.0
        self.tuples: List[TierTuple] = []
        self.failing: List[TierTuple] = []

    def try_insert(self, stats: TierTuple) -> bool:
        """Record an observed per-tier tuple unless a failing tuple
        proves it hopeless."""
        if any(not no_more_relaxed(stats, f) for f in self.failing):
            return False
        self.tuples.append(stats)
        if len(self.tuples) > MAX_STORED_TUPLES:
            self.tuples.pop(0)
        return True

    def record_failure(self, target: TierTuple) -> None:
        """The per-tier target drawn from this bucket missed QoS."""
        self.failing.append(target)
        if len(self.failing) > MAX_FAILING_TUPLES:
            self.failing.pop(0)
        # Purge stored tuples the new failure invalidates.
        self.tuples = [t for t in self.tuples if no_more_relaxed(t, target)]

    def boost(self) -> None:
        self.preference *= PREFERENCE_BOOST

    def penalise(self) -> None:
        self.preference = max(MIN_PREFERENCE, self.preference * PREFERENCE_PENALTY)

    def __repr__(self) -> str:
        return (
            f"<Bucket {self.index} [{self.lower*1e3:.1f},{self.upper*1e3:.1f})ms "
            f"pref={self.preference:.2f} tuples={len(self.tuples)} "
            f"failing={len(self.failing)}>"
        )


class LatencyBuckets:
    """The set of buckets spanning [0, span) seconds of tail latency."""

    def __init__(
        self,
        num_buckets: int,
        span: float,
        num_tiers: int,
    ) -> None:
        if num_buckets < 1:
            raise ConfigError(f"need >= 1 bucket, got {num_buckets}")
        if span <= 0:
            raise ConfigError(f"span must be > 0, got {span!r}")
        if num_tiers < 1:
            raise ConfigError(f"need >= 1 tier, got {num_tiers}")
        self.span = float(span)
        self.num_tiers = num_tiers
        width = self.span / num_buckets
        self.buckets = [
            Bucket(i, i * width, (i + 1) * width) for i in range(num_buckets)
        ]

    def __len__(self) -> int:
        return len(self.buckets)

    def bucket_for(self, e2e_latency: float) -> Bucket:
        """The bucket whose range contains *e2e_latency* (clamped)."""
        if e2e_latency < 0:
            raise ConfigError(f"negative latency {e2e_latency!r}")
        idx = min(
            int(e2e_latency / self.span * len(self.buckets)),
            len(self.buckets) - 1,
        )
        return self.buckets[idx]

    def observe(self, e2e_latency: float, stats: TierTuple) -> Optional[Bucket]:
        """Classify a QoS-meeting observation (Algorithm 1 lines 5-9)."""
        if len(stats) != self.num_tiers:
            raise ConfigError(
                f"expected {self.num_tiers} tiers, got {len(stats)}"
            )
        bucket = self.bucket_for(e2e_latency)
        bucket.try_insert(stats)
        bucket.boost()
        return bucket

    def choose_target(
        self, rng: np.random.Generator
    ) -> Tuple[Optional[Bucket], Optional[TierTuple]]:
        """Preference-weighted draw of a bucket and one of its stored
        per-tier tuples (Algorithm 1 lines 11-12, 18-19).

        Returns (None, None) before anything has been learned.
        """
        candidates = [b for b in self.buckets if b.tuples]
        if not candidates:
            return None, None
        weights = np.array([b.preference for b in candidates])
        weights = weights / weights.sum()
        bucket = candidates[int(rng.choice(len(candidates), p=weights))]
        tuple_idx = int(rng.integers(len(bucket.tuples)))
        return bucket, bucket.tuples[tuple_idx]

    def __repr__(self) -> str:
        learned = sum(1 for b in self.buckets if b.tuples)
        return f"<LatencyBuckets {len(self)} buckets, {learned} populated>"
