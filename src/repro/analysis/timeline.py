"""Timeline rendering: scraped ``timeseries.json`` artifacts back into
tables.

``repro analyze --timeline DIR`` drives this module: it finds every
timeline artifact a run or sweep exported
(:func:`load_timelines`), bins each named series over sim-time
(:func:`format_timeline_report`), and — for sharded runs — renders the
coordinator's runtime introspection (per-shard wall accounting, window
efficiency, mailbox volume, and the straggler ranking of which shard
bounded each conservative round).

The shard section is *reconciled*, not merely printed: the straggler
attribution must sum to exactly the coordinator's round count and the
per-edge mailbox totals must sum to exactly ``messages_exchanged``;
any mismatch raises :class:`~repro.errors.ReproError` rather than
rendering numbers that silently disagree with the run's own counters.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..errors import ReproError
from ..telemetry.report import Cell, format_cell, format_table, ms
from ..telemetry.scrape import load_timeline

__all__ = [
    "format_timeline_report",
    "load_timelines",
    "reconcile_shard_runtime",
]


def load_timelines(
    timeline_dir: Union[str, Path],
) -> List[Tuple[Path, Dict[str, Any]]]:
    """Every timeline artifact under *timeline_dir*, sorted by path.

    Matches both the single-run name (``timeseries.json``) and the
    per-sweep-point names (``qps*.timeseries.json``), searched
    recursively. Raises :class:`ReproError` when the directory holds
    none — an ``analyze --timeline`` over a scrape-off run is a user
    error, not an empty report.
    """
    base = Path(timeline_dir)
    if not base.is_dir():
        raise ReproError(f"timeline dir {str(base)!r} does not exist")
    paths = sorted(
        path
        for path in base.rglob("*.json")
        if path.name == "timeseries.json"
        or path.name.endswith(".timeseries.json")
    )
    if not paths:
        raise ReproError(
            f"no timeline artifacts (timeseries.json / "
            f"*.timeseries.json) under {str(base)!r}; run with "
            f"--scrape-interval to produce them"
        )
    return [(path, load_timeline(path)) for path in paths]


def _bin_edges(series: Mapping[str, Mapping[str, Sequence[float]]],
               bins: int) -> List[float]:
    """Uniform sim-time bin edges spanning every sample of *series*."""
    times = [t for data in series.values() for t in data["times"]]
    if not times:
        return []
    lo, hi = min(times), max(times)
    if hi == lo:
        hi = lo + 1.0
    width = (hi - lo) / bins
    return [lo + i * width for i in range(bins + 1)]


def _bin_means(data: Mapping[str, Sequence[float]],
               edges: Sequence[float]) -> List[Optional[float]]:
    """Mean of the samples landing in each bin (None for empty bins).

    The last bin is right-inclusive so the final sample — the scrape
    loop's close-out tick at exactly ``stop_at`` — is never dropped.
    """
    out: List[Optional[float]] = []
    times, values = data["times"], data["values"]
    last = len(edges) - 2
    for i, (lo, hi) in enumerate(zip(edges[:-1], edges[1:])):
        picked = [
            v for t, v in zip(times, values)
            if lo <= t < hi or (i == last and t == hi)
        ]
        out.append(sum(picked) / len(picked) if picked else None)
    return out


def reconcile_shard_runtime(runtime: Mapping[str, Any]) -> None:
    """Assert a runtime report's cross-counters agree exactly.

    * the straggler attribution (one binding shard per round) must sum
      to the coordinator's round count;
    * the per-edge mailbox totals (rebuilt from the shards'
      conservation ledgers) must sum to ``messages_exchanged``.
    """
    rounds = int(runtime.get("rounds", 0))
    straggler = runtime.get("straggler_rounds") or {}
    attributed = sum(int(count) for count in straggler.values())
    if attributed != rounds:
        raise ReproError(
            f"straggler attribution covers {attributed} rounds but the "
            f"coordinator ran {rounds}; the timeline artifact is "
            f"inconsistent"
        )
    messages = int(runtime.get("messages_exchanged", 0))
    mailbox = runtime.get("mailbox_volume") or {}
    shipped = sum(int(count) for count in mailbox.values())
    if shipped != messages:
        raise ReproError(
            f"mailbox volume sums to {shipped} messages but the "
            f"coordinator exchanged {messages}; the timeline artifact "
            f"is inconsistent"
        )


def _shard_sections(runtime: Mapping[str, Any],
                    precision: int) -> List[str]:
    reconcile_shard_runtime(runtime)
    sections: List[str] = []
    rounds = int(runtime.get("rounds", 0))
    sections.append(
        f"shard runtime ({runtime.get('mode', '?')}): "
        f"{rounds} rounds, "
        f"{runtime.get('messages_exchanged', 0)} messages, "
        f"{runtime.get('stalls', 0)} stalls, "
        f"{format_cell(float(runtime.get('wall_s', 0.0)), precision)}s wall"
    )
    per_shard = runtime.get("per_shard") or {}
    straggler = runtime.get("straggler_rounds") or {}
    if per_shard:
        rows: List[List[Cell]] = []
        for shard in sorted(per_shard, key=int):
            stats = per_shard[shard]
            bound = int(straggler.get(shard, 0))
            rows.append([
                shard,
                stats.get("events", 0),
                float(stats.get("busy_wall_s", 0.0)),
                float(stats.get("blocked_wall_s", 0.0)),
                stats.get("idle_rounds", 0),
                float(stats.get("window_efficiency", 0.0)),
                bound,
                (100.0 * bound / rounds) if rounds else 0.0,
            ])
        sections.append(format_table(
            ["shard", "events", "busy s", "blocked s", "idle rounds",
             "events/sim-s window", "bound rounds", "bound %"],
            rows,
            title="shard imbalance (busy = host advance wall; bound = "
                  "rounds whose horizon this shard limited; bound "
                  "rounds sum to the coordinator's round count)",
            precision=precision,
        ))
    if straggler:
        ranking = sorted(
            straggler.items(), key=lambda kv: (-kv[1], int(kv[0]))
        )
        sections.append(
            "critical shards (most horizon-binding first): "
            + ", ".join(
                f"shard {shard} ({count}/{rounds} rounds)"
                for shard, count in ranking
            )
        )
    mailbox = runtime.get("mailbox_volume") or {}
    if mailbox:
        sections.append(format_table(
            ["edge", "messages"],
            [
                [edge, count]
                for edge, count in sorted(
                    mailbox.items(), key=lambda kv: (-kv[1], kv[0])
                )
            ],
            title="mailbox volume per shard edge (sums to "
                  "messages_exchanged)",
            precision=precision,
        ))
    return sections


def format_timeline_report(
    payload: Mapping[str, Any],
    *,
    name: str = "",
    bins: int = 6,
    precision: int = 3,
) -> str:
    """Render one timeline artifact as aligned tables.

    Sections: a header identifying the run, per-tier utilisation /
    queue-depth over binned sim-time, client QPS and p99 over time,
    and — when the artifact carries a ``shard_runtime`` block — the
    reconciled shard imbalance report (see
    :func:`reconcile_shard_runtime`).
    """
    if bins < 1:
        raise ReproError(f"bins must be >= 1, got {bins!r}")
    series: Dict[str, Any] = payload.get("series") or {}
    meta = payload.get("meta") or {}
    header = "timeline"
    if name:
        header += f" {name}"
    identity = ", ".join(
        f"{key}={format_cell(meta[key], precision)}"
        for key in ("qps", "duration", "warmup", "shards")
        if key in meta
    )
    if identity:
        header += f" ({identity})"
    header += (
        f": {len(series)} series, "
        f"interval {format_cell(float(payload.get('interval', 0.0)), precision)}s"
    )
    sections: List[str] = [header]
    edges = _bin_edges(series, bins)
    if edges:
        centres = [
            (lo + hi) / 2.0 for lo, hi in zip(edges[:-1], edges[1:])
        ]
        time_headers = [f"t={format_cell(c, precision)}s" for c in centres]

        def grid(prefix: str) -> List[List[Cell]]:
            rows: List[List[Cell]] = []
            for full_name in sorted(series):
                if not full_name.startswith(prefix):
                    continue
                rows.append(
                    [full_name[len(prefix):]]
                    + list(_bin_means(series[full_name], edges))
                )
            return rows

        util_rows = grid("util/")
        if util_rows:
            sections.append(format_table(
                ["tier"] + time_headers, util_rows,
                title="per-tier utilisation over sim-time (bin means, "
                      "fraction of cores busy)",
                precision=precision,
            ))
        depth_rows = grid("depth/")
        if depth_rows:
            sections.append(format_table(
                ["tier"] + time_headers, depth_rows,
                title="per-tier queue depth over sim-time (bin means)",
                precision=precision,
            ))
        client_rows: List[List[Cell]] = []
        if "client/qps" in series:
            client_rows.append(
                ["qps"] + list(_bin_means(series["client/qps"], edges))
            )
        for q in ("p50", "p99"):
            key = f"client/{q}"
            if key in series:
                client_rows.append([f"{q} ms"] + [
                    None if v is None else ms(v)
                    for v in _bin_means(series[key], edges)
                ])
        if "client/inflight" in series:
            client_rows.append(
                ["in flight"]
                + list(_bin_means(series["client/inflight"], edges))
            )
        if client_rows:
            sections.append(format_table(
                ["client"] + time_headers, client_rows,
                title="client over sim-time (bin means)",
                precision=precision,
            ))
    runtime = payload.get("shard_runtime")
    if runtime:
        sections.extend(_shard_sections(runtime, precision))
    return "\n\n".join(sections)
