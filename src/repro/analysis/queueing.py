"""Closed-form queueing results for cross-validation.

uqSim's credibility rests on agreeing with queueing theory where
closed forms exist (the paper leans on this: "unlike complex monoliths
[microservices] conform to the principles of queueing theory"). This
module provides the standard formulas — M/M/1, M/M/c (Erlang C),
M/G/1 (Pollaczek-Khinchine), and the tail-at-scale fan-in bound — used
by the test suite to check the simulator end to end and by users to
sanity-check calibrations.

All times in seconds, rates in 1/seconds.
"""

from __future__ import annotations

import math

from ..errors import ReproError


def _check_stability(rho: float) -> None:
    if rho >= 1.0:
        raise ReproError(f"unstable queue: utilisation rho={rho:.3f} >= 1")
    if rho < 0:
        raise ReproError(f"negative utilisation rho={rho:.3f}")


def mm1_mean_sojourn(arrival_rate: float, service_rate: float) -> float:
    """E[T] for M/M/1: 1 / (mu - lambda)."""
    rho = arrival_rate / service_rate
    _check_stability(rho)
    return 1.0 / (service_rate - arrival_rate)


def mm1_sojourn_percentile(
    arrival_rate: float, service_rate: float, q: float
) -> float:
    """Exact percentile of the (exponential) M/M/1 sojourn time."""
    if not 0 < q < 100:
        raise ReproError(f"percentile must be in (0,100), got {q!r}")
    mean = mm1_mean_sojourn(arrival_rate, service_rate)
    return -mean * math.log(1.0 - q / 100.0)


def erlang_c(servers: int, offered_load: float) -> float:
    """Erlang C: probability an arrival waits in M/M/c.

    *offered_load* is a = lambda/mu (in Erlangs); requires a < c.
    """
    if servers < 1:
        raise ReproError(f"need >= 1 server, got {servers}")
    rho = offered_load / servers
    _check_stability(rho)
    # Stable evaluation via the iterative Erlang B recurrence.
    b = 1.0
    for k in range(1, servers + 1):
        b = offered_load * b / (k + offered_load * b)
    return b / (1.0 - rho * (1.0 - b))


def mmc_mean_wait(
    arrival_rate: float, service_rate: float, servers: int
) -> float:
    """E[W] (queueing delay, excluding service) for M/M/c."""
    offered = arrival_rate / service_rate
    rho = offered / servers
    _check_stability(rho)
    wait_prob = erlang_c(servers, offered)
    return wait_prob / (servers * service_rate - arrival_rate)


def mmc_mean_sojourn(
    arrival_rate: float, service_rate: float, servers: int
) -> float:
    """E[T] = E[W] + E[S] for M/M/c."""
    return mmc_mean_wait(arrival_rate, service_rate, servers) + 1.0 / service_rate


def mg1_mean_wait(
    arrival_rate: float, service_mean: float, service_scv: float
) -> float:
    """Pollaczek-Khinchine: E[W] for M/G/1.

    *service_scv* is the squared coefficient of variation of the
    service time (1 for exponential, 0 for deterministic).
    """
    rho = arrival_rate * service_mean
    _check_stability(rho)
    if service_scv < 0:
        raise ReproError(f"scv must be >= 0, got {service_scv!r}")
    return rho * service_mean * (1.0 + service_scv) / (2.0 * (1.0 - rho))


def mg1_mean_sojourn(
    arrival_rate: float, service_mean: float, service_scv: float
) -> float:
    """E[T] for M/G/1."""
    return mg1_mean_wait(arrival_rate, service_mean, service_scv) + service_mean


def fanout_percentile_amplification(fanout: int, per_leaf_quantile: float) -> float:
    """The tail-at-scale identity: if each of *fanout* independent leaves
    answers within its q-quantile latency with probability q, the
    probability ALL do is q**fanout.

    Returns the per-request probability that the synchronised response
    meets the per-leaf quantile — e.g. Dean & Barroso's "1% of requests
    take over a second at one server => 63% of fanout-100 requests do".
    """
    if fanout < 1:
        raise ReproError(f"fanout must be >= 1, got {fanout}")
    if not 0.0 < per_leaf_quantile < 1.0:
        raise ReproError(
            f"quantile must be in (0,1), got {per_leaf_quantile!r}"
        )
    return per_leaf_quantile**fanout


def required_leaf_quantile(fanout: int, end_to_end_quantile: float) -> float:
    """Invert :func:`fanout_percentile_amplification`: the per-leaf
    quantile each leaf must hit for the fan-in to hit
    *end_to_end_quantile* — the paper's motivation for studying fanout
    ("a single slow leaf node can degrade the performance of the
    majority of user requests")."""
    if fanout < 1:
        raise ReproError(f"fanout must be >= 1, got {fanout}")
    if not 0.0 < end_to_end_quantile < 1.0:
        raise ReproError(
            f"quantile must be in (0,1), got {end_to_end_quantile!r}"
        )
    return end_to_end_quantile ** (1.0 / fanout)
