"""Backpressure onset detection.

The paper motivates microservice simulation with cascading QoS
violations: "dependencies between neighboring microservices introduce
backpressure effects, creating cascading hotspots and QoS violations
through the system" (SSV-B), and "a single poorly-configured
microservice on the critical path can cause cascading QoS violations"
(SSI). Given per-instance queue-depth time series from a
:class:`~repro.telemetry.ServiceMonitor`, this module finds *where the
cascade started*: the instance whose queues grew first is the culprit;
everything that lights up later is collateral.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..errors import ReproError
from ..telemetry import ServiceMonitor


@dataclass
class BackpressureOnset:
    """When an instance's queues first grew beyond its baseline."""

    instance: str
    onset_time: float
    peak_depth: float
    baseline_depth: float


def detect_onsets(
    monitor: ServiceMonitor,
    threshold_factor: float = 4.0,
    min_depth: float = 4.0,
    baseline_fraction: float = 0.2,
) -> List[BackpressureOnset]:
    """Find each instance's backpressure onset, earliest first.

    An instance's baseline is its mean queue depth over the first
    *baseline_fraction* of the observation window; its onset is the
    first sample exceeding ``max(min_depth, threshold_factor x
    baseline)``. Instances that never cross are omitted. The returned
    order IS the causal story: upstream victims of a slow dependency
    start queueing strictly after the dependency does.
    """
    if threshold_factor <= 1.0:
        raise ReproError(
            f"threshold_factor must be > 1, got {threshold_factor!r}"
        )
    if not 0.0 < baseline_fraction < 1.0:
        raise ReproError(
            f"baseline_fraction must be in (0,1), got {baseline_fraction!r}"
        )
    onsets: List[BackpressureOnset] = []
    for name, series in monitor.queue_depth.items():
        if len(series) == 0:
            continue
        times = series.times
        depths = series.values
        cut = max(1, int(len(depths) * baseline_fraction))
        baseline = float(depths[:cut].mean())
        threshold = max(min_depth, threshold_factor * baseline)
        over = np.nonzero(depths > threshold)[0]
        if over.size == 0:
            continue
        onsets.append(
            BackpressureOnset(
                instance=name,
                onset_time=float(times[over[0]]),
                peak_depth=float(depths.max()),
                baseline_depth=baseline,
            )
        )
    onsets.sort(key=lambda o: o.onset_time)
    return onsets


def culprit(
    monitor: ServiceMonitor,
    threshold_factor: float = 4.0,
    min_depth: float = 4.0,
) -> Optional[str]:
    """The instance where the cascade started (None if no backpressure)."""
    onsets = detect_onsets(monitor, threshold_factor, min_depth)
    return onsets[0].instance if onsets else None


def cascade_report(monitor: ServiceMonitor) -> Dict[str, float]:
    """Instance -> onset time, for quick printing/plotting."""
    return {o.instance: o.onset_time for o in detect_onsets(monitor)}
