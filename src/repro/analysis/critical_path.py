"""Critical-path analysis over request traces.

With dispatcher tracing enabled
(:class:`~repro.topology.Dispatcher` ``trace=True``), every request
carries per-node (enter, leave) timestamps. This module turns a set of
traced requests into the numbers an operator actually needs:

* per-node latency contributions (mean/percentile of node spans),
* the **critical path** of each request — the chain of nodes whose
  spans sum (with the gaps between them) to the end-to-end latency,
  accounting for fan-out branches that overlap in time,
* aggregate blame: how often each node sits on the critical path.

This is the style of per-tier attribution the paper's power manager
needs (per-tier latency tuples) and the precursor of tools like Seer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from ..errors import ReproError
from ..service import Request


@dataclass
class NodeSpan:
    """One node visit inside a trace."""

    node: str
    instance: str
    enter: float
    leave: float

    @property
    def duration(self) -> float:
        return self.leave - self.enter


def spans_of(request: Request) -> List[NodeSpan]:
    """Extract the trace spans of one completed request."""
    trace = request.metadata.get("trace")
    if trace is None:
        raise ReproError(
            f"request {request.request_id} carries no trace; build the "
            f"Dispatcher with trace=True"
        )
    return [NodeSpan(*entry) for entry in trace]


def critical_path(request: Request) -> List[NodeSpan]:
    """The latency-defining chain of node visits.

    Walks backwards from the last-finishing span, at each step jumping
    to the latest-finishing span that ended at or before the current
    span began — under fan-out, that is precisely the branch the
    synchronisation waited for.
    """
    spans = sorted(spans_of(request), key=lambda s: s.leave)
    if not spans:
        raise ReproError(f"request {request.request_id} has an empty trace")
    path = [spans[-1]]
    cursor = spans[-1].enter
    for span in reversed(spans[:-1]):
        if span.leave <= cursor + 1e-12:
            path.append(span)
            cursor = span.enter
    path.reverse()
    return path


@dataclass
class NodeContribution:
    """Aggregated latency attribution of one path node."""

    node: str
    mean_span: float
    p99_span: float
    critical_fraction: float  # share of requests where it's on the path
    visits: int


def analyze(requests: Iterable[Request]) -> Dict[str, NodeContribution]:
    """Aggregate per-node latency attribution over traced requests."""
    durations: Dict[str, List[float]] = {}
    critical_hits: Dict[str, int] = {}
    total = 0
    for request in requests:
        total += 1
        for span in spans_of(request):
            durations.setdefault(span.node, []).append(span.duration)
        for span in critical_path(request):
            critical_hits[span.node] = critical_hits.get(span.node, 0) + 1
    if total == 0:
        raise ReproError("no traced requests to analyze")
    result = {}
    for node, values in durations.items():
        arr = np.asarray(values)
        result[node] = NodeContribution(
            node=node,
            mean_span=float(arr.mean()),
            p99_span=float(np.percentile(arr, 99)),
            critical_fraction=critical_hits.get(node, 0) / total,
            visits=int(arr.size),
        )
    return result


def slowest_nodes(
    requests: Sequence[Request], top: int = 3
) -> List[Tuple[str, float]]:
    """The *top* nodes by mean critical-path presence x span — the
    first candidates for speeding up or scaling out."""
    contributions = analyze(requests)
    ranked = sorted(
        contributions.values(),
        key=lambda c: c.critical_fraction * c.mean_span,
        reverse=True,
    )
    return [(c.node, c.critical_fraction * c.mean_span) for c in ranked[:top]]
