"""Critical-path analysis over request traces.

With dispatcher tracing enabled (``Dispatcher(trace=True)`` or a
:class:`~repro.telemetry.tracing.TraceConfig`), every sampled request
carries a :class:`~repro.telemetry.tracing.Trace` of attempt-aware
:class:`~repro.telemetry.tracing.Span` objects. This module turns a
set of traced requests into the numbers an operator actually needs:

* per-node latency contributions (mean/percentile of node spans),
* the **critical path** of each request — the chain of spans whose
  durations sum (with the gaps between them) to the end-to-end
  latency, accounting for fan-out branches that overlap in time and
  for failed attempts whose time the request really did spend,
* aggregate blame: how often each node sits on the critical path.

This is the style of per-tier attribution the paper's power manager
needs (per-tier latency tuples) and the precursor of tools like Seer.

The legacy trace format — a list of ``(node, instance, enter, leave)``
tuples in ``request.metadata["trace"]`` — is still accepted and
upgraded to spans on the fly, so existing notebooks keep working.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from ..errors import ReproError
from ..service import Request
from ..telemetry.tracing import SPAN_OK, Span, Trace

#: Backwards-compatible alias: span extraction used to return a
#: purpose-built NodeSpan; it now returns the telemetry Span directly
#: (same ``node``/``instance``/``enter``/``leave``/``duration`` API).
NodeSpan = Span


def _upgrade_legacy(entries: Sequence[tuple]) -> List[Span]:
    """Turn legacy (node, instance, enter, leave) tuples into spans."""
    spans = []
    for node, instance, enter, leave in entries:
        span = Span(node=node, instance=instance, service="",
                    attempt=0, enter=enter)
        span.finish(leave, breakdown=False)
        spans.append(span)
    return spans


def spans_of(request: Request, include_cancelled: bool = False) -> List[Span]:
    """Extract the closed trace spans of one traced request.

    By default only successfully completed spans are returned; pass
    ``include_cancelled=True`` to also see spans of cancelled attempts
    (timeout victims, losing hedges) — each closed with its *own*
    timestamps.
    """
    trace = request.metadata.get("trace")
    if trace is None:
        raise ReproError(
            f"request {request.request_id} carries no trace; build the "
            f"Dispatcher with trace=True"
        )
    if isinstance(trace, Trace):
        return trace.completed_spans(include_cancelled=include_cancelled)
    return _upgrade_legacy(trace)


def chain_of(spans: Sequence[Span], label: str = "trace") -> List[Span]:
    """The latency-defining chain through a set of closed spans.

    Walks backwards from the last-finishing *successful* span, at each
    step jumping to the latest-finishing span that ended at or before
    the current span began — under fan-out, that is precisely the
    branch the synchronisation waited for; under retries, the failed
    attempt's cancelled spans (which ended before the retry began)
    join the chain, because the request genuinely spent that time. A
    losing hedge's span cannot join: it is cancelled at resolution,
    *after* the winner's chain began, so the walk passes it by.
    """
    spans = sorted(spans, key=lambda s: s.leave)
    anchors = [s for s in spans if s.status == SPAN_OK]
    if not anchors:
        raise ReproError(f"{label} has an empty trace")
    start = anchors[-1]
    path = [start]
    cursor = start.enter
    for span in reversed(spans):
        if span is not start and span.leave <= cursor + 1e-12:
            path.append(span)
            cursor = span.enter
    path.reverse()
    return path


def critical_path_of(trace: Trace) -> List[Span]:
    """The critical chain of one :class:`Trace` (in-memory or decoded
    from an OTLP file — no live :class:`Request` needed)."""
    return chain_of(
        trace.completed_spans(include_cancelled=True),
        label=f"request {trace.request_id}",
    )


def critical_path(request: Request) -> List[Span]:
    """The latency-defining chain of node visits of a traced request
    (see :func:`chain_of` for the walk)."""
    return chain_of(
        spans_of(request, include_cancelled=True),
        label=f"request {request.request_id}",
    )


@dataclass
class NodeContribution:
    """Aggregated latency attribution of one path node."""

    node: str
    mean_span: float
    p99_span: float
    critical_fraction: float  # share of requests where it's on the path
    visits: int


def analyze(requests: Iterable[Request]) -> Dict[str, NodeContribution]:
    """Aggregate per-node latency attribution over traced requests."""
    durations: Dict[str, List[float]] = {}
    critical_hits: Dict[str, int] = {}
    total = 0
    for request in requests:
        total += 1
        # Cancelled attempts count too: they can sit on the critical
        # path (a timed-out attempt the retry waited out), so every
        # node the path can name must have a contribution entry.
        for span in spans_of(request, include_cancelled=True):
            durations.setdefault(span.node, []).append(span.duration)
        # A node is "on the path" at most once per request, however
        # many of its visits (retried attempts) the chain includes.
        for node in {span.node for span in critical_path(request)}:
            critical_hits[node] = critical_hits.get(node, 0) + 1
    if total == 0:
        raise ReproError("no traced requests to analyze")
    result = {}
    for node, values in durations.items():
        arr = np.asarray(values)
        result[node] = NodeContribution(
            node=node,
            mean_span=float(arr.mean()),
            p99_span=float(np.percentile(arr, 99)),
            critical_fraction=critical_hits.get(node, 0) / total,
            visits=int(arr.size),
        )
    return result


def slowest_nodes(
    requests: Sequence[Request], top: int = 3
) -> List[Tuple[str, float]]:
    """The *top* nodes by mean critical-path presence x span — the
    first candidates for speeding up or scaling out."""
    contributions = analyze(requests)
    ranked = sorted(
        contributions.values(),
        key=lambda c: c.critical_fraction * c.mean_span,
        reverse=True,
    )
    return [(c.node, c.critical_fraction * c.mean_span) for c in ranked[:top]]
