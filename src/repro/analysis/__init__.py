"""Analysis tools: closed-form queueing formulas for cross-validation
and critical-path attribution over request traces."""

from .backpressure import (
    BackpressureOnset,
    cascade_report,
    culprit,
    detect_onsets,
)
from .critical_path import (
    NodeContribution,
    NodeSpan,
    analyze,
    critical_path,
    slowest_nodes,
    spans_of,
)
from .queueing import (
    erlang_c,
    fanout_percentile_amplification,
    mg1_mean_sojourn,
    mg1_mean_wait,
    mm1_mean_sojourn,
    mm1_sojourn_percentile,
    mmc_mean_sojourn,
    mmc_mean_wait,
    required_leaf_quantile,
)

__all__ = [
    "BackpressureOnset",
    "NodeContribution",
    "NodeSpan",
    "analyze",
    "cascade_report",
    "critical_path",
    "culprit",
    "detect_onsets",
    "erlang_c",
    "fanout_percentile_amplification",
    "mg1_mean_sojourn",
    "mg1_mean_wait",
    "mm1_mean_sojourn",
    "mm1_sojourn_percentile",
    "mmc_mean_sojourn",
    "mmc_mean_wait",
    "required_leaf_quantile",
    "slowest_nodes",
    "spans_of",
]
