"""Aggregate trace analytics: from a pile of spans to answers.

:mod:`repro.telemetry.tracing` records what happened to individual
sampled requests; this module answers the fleet-wide questions an
operator actually asks of a trace corpus:

* **Tail attribution** (:func:`tail_attribution`) — which node owns
  the p99? For each requested percentile, the end-to-end latency
  quantile is decomposed into per-node critical-path contributions
  plus a ``"(gaps)"`` remainder (client wire hops, retry backoff
  waits). The decomposition is *exact*: the linear-interpolated
  quantile blends the two adjacent order-statistic traces, so the
  contributions sum to the measured end-to-end percentile to within
  float rounding — not merely "approximately explain" it.
* **RED dependency graph** (:func:`red_graph`) — rate / errors /
  duration per (upstream, service) edge, extracted purely from span
  ``upstream`` fields. Each span is one traversal of one edge, the
  same granularity as the dispatcher's ``edge_requests_total``
  counter, so at ``sample_rate=1.0`` the graph's edge counts match the
  metrics registry exactly. Per-edge *amplification* (traversals per
  primary-attempt traversal) quantifies retry/hedge traffic inflation.
* **Breakdown percentiles** (:func:`node_breakdowns`) — per node, the
  queueing / service / network decomposition at each duration
  percentile (blended the same exact way, so the three parts sum to
  the duration quantile).
* **Exemplars** (:func:`exemplars`) — the k slowest traces touching
  each node, cross-referenced by trace id so the matching request can
  be opened in the Perfetto export (``pid`` = request id).

:func:`analyze_traces` bundles all four into one
:class:`TraceAnalytics`; :func:`load_traces` feeds it from a
``--trace-dir`` full of OTLP exports. The ``repro analyze`` CLI prints
the result through
:func:`repro.telemetry.report.format_analytics_report`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..errors import ReproError
from ..telemetry.export import read_otlp
from ..telemetry.tracing import SPAN_CANCELLED, SPAN_OK, Span, Trace
from .critical_path import critical_path_of

#: Pseudo-node collecting end-to-end time outside every critical-path
#: span: client-side wire hops, retry backoff waits, hedge scheduling
#: slack. Parenthesised so it can never collide with a real node name
#: (path-tree node names are identifiers).
GAPS = "(gaps)"

#: Default percentiles every analytics surface reports.
DEFAULT_PERCENTILES = (50.0, 95.0, 99.0)


def load_traces(trace_dir: Union[str, Path]) -> List[Trace]:
    """Every trace exported under *trace_dir* (recursively), from the
    ``*.otlp.json`` files the exporters and sweeps write. Files load in
    sorted path order, so the corpus is deterministic."""
    base = Path(trace_dir)
    if not base.exists():
        raise ReproError(f"trace dir {str(base)!r} does not exist")
    paths = sorted(base.rglob("*.otlp.json"))
    if not paths:
        raise ReproError(
            f"no *.otlp.json files under {str(base)!r}; export traces "
            f"with --trace-dir first"
        )
    traces: List[Trace] = []
    for path in paths:
        traces.extend(read_otlp(path))
    return traces


def _ok_traces(traces: Sequence[Trace]) -> List[Trace]:
    """Traces of requests that resolved ``ok`` (end-to-end latency is
    only defined for them), sorted by end-to-end latency."""
    ok = [
        t for t in traces
        if t.outcome == "ok" and t.completed_at is not None
    ]
    return sorted(ok, key=_e2e)


def _e2e(trace: Trace) -> float:
    return trace.completed_at - trace.created_at


def _quantile_blend(
    n: int, q: float
) -> List[Tuple[int, float]]:
    """(index, weight) pairs of the order statistics whose weighted sum
    is the linear-interpolated *q*-th percentile of n sorted samples —
    numpy's default method, reproduced so a blend of per-trace
    decompositions sums to exactly ``np.percentile(values, q)``."""
    if not 0.0 <= q <= 100.0:
        raise ReproError(f"percentile must be in [0, 100], got {q!r}")
    position = (n - 1) * q / 100.0
    lo = int(math.floor(position))
    frac = position - lo
    if frac <= 0.0 or lo + 1 >= n:
        return [(lo, 1.0)]
    return [(lo, 1.0 - frac), (lo + 1, frac)]


def _decompose(trace: Trace) -> Dict[str, float]:
    """One ok trace's end-to-end latency as per-node critical-path time
    plus the :data:`GAPS` remainder. The values sum exactly to the
    trace's end-to-end latency."""
    parts: Dict[str, float] = {}
    spanned = 0.0
    for span in critical_path_of(trace):
        parts[span.node] = parts.get(span.node, 0.0) + span.duration
        spanned += span.duration
    parts[GAPS] = _e2e(trace) - spanned
    return parts


@dataclass
class TailAttribution:
    """Per-node blame for one end-to-end latency percentile."""

    percentile: float
    latency: float  #: the interpolated end-to-end quantile (seconds)
    #: node -> seconds of critical-path time at this quantile (plus the
    #: ``"(gaps)"`` remainder); values sum to ``latency``.
    contributions: Dict[str, float]
    #: request ids of the order-statistic traces blended into the
    #: quantile (open these in the Perfetto export to see why).
    trace_ids: List[int] = field(default_factory=list)

    def ranked(self) -> List[Tuple[str, float]]:
        """Contributions sorted largest-first."""
        return sorted(
            self.contributions.items(), key=lambda kv: -kv[1]
        )


def tail_attribution(
    traces: Sequence[Trace],
    percentiles: Sequence[float] = DEFAULT_PERCENTILES,
) -> Dict[float, TailAttribution]:
    """Decompose each end-to-end latency percentile into per-node
    critical-path contributions.

    For percentile *q*, the two traces adjacent to the quantile rank
    are decomposed along their critical paths and blended with the
    interpolation weights, so ``sum(contributions.values())`` equals
    the measured end-to-end percentile over the traced ok requests
    exactly (float rounding aside). This is aggregate attribution over
    the quantile's *neighbourhood*, not a single lucky trace: at p50
    the blend sits mid-distribution, at p99 it names the nodes the
    actual tail waits on.
    """
    ok = _ok_traces(traces)
    if not ok:
        raise ReproError("no ok traces to attribute (all failed/cancelled?)")
    out: Dict[float, TailAttribution] = {}
    for q in percentiles:
        blend = _quantile_blend(len(ok), q)
        contributions: Dict[str, float] = {}
        latency = 0.0
        ids: List[int] = []
        for index, weight in blend:
            trace = ok[index]
            ids.append(trace.request_id)
            latency += weight * _e2e(trace)
            for node, seconds in _decompose(trace).items():
                contributions[node] = (
                    contributions.get(node, 0.0) + weight * seconds
                )
        out[q] = TailAttribution(
            percentile=q,
            latency=latency,
            contributions=contributions,
            trace_ids=ids,
        )
    return out


@dataclass
class EdgeStats:
    """RED statistics of one (upstream, service) dependency edge."""

    upstream: str
    service: str
    count: int  #: traversals (== ``edge_requests_total`` at sample 1.0)
    errors: int  #: traversals whose attempt was cancelled mid-edge
    rate: float  #: traversals per simulated second of the observation window
    amplification: float  #: traversals per primary-attempt traversal
    duration: Dict[float, float]  #: percentile -> closed-span duration

    @property
    def error_rate(self) -> float:
        return self.errors / self.count if self.count else 0.0


def _observation_window(traces: Sequence[Trace]) -> Tuple[float, float]:
    """(start, end) of the corpus: first request creation to the last
    timestamp any span or resolution reached."""
    start = math.inf
    end = -math.inf
    for trace in traces:
        start = min(start, trace.created_at)
        if trace.completed_at is not None:
            end = max(end, trace.completed_at)
        for span in trace.spans:
            end = max(end, span.leave if span.leave is not None else span.enter)
    if not traces or end < start:
        raise ReproError("cannot derive an observation window: no traces")
    return start, end


def red_graph(
    traces: Sequence[Trace],
    percentiles: Sequence[float] = DEFAULT_PERCENTILES,
) -> List[EdgeStats]:
    """The dependency graph with RED (rate / errors / duration)
    statistics per (upstream, service) edge.

    Every span is one traversal of one edge — including retried,
    hedged, and cancelled attempts, and spans still open when the run
    was cut — which is exactly when the dispatcher increments
    ``edge_requests_total``, so the counts reconcile against the
    metrics registry. *errors* counts cancelled traversals; *duration*
    percentiles cover successfully completed traversals; the
    *amplification* factor (traversals / primary-attempt traversals)
    exposes retry/hedge traffic inflation per edge.
    """
    window = _observation_window(traces)
    span_groups: Dict[Tuple[str, str], List[Span]] = {}
    for trace in traces:
        for span in trace.spans:
            span_groups.setdefault(
                (span.upstream, span.service), []
            ).append(span)
    elapsed = max(window[1] - window[0], 1e-12)
    edges: List[EdgeStats] = []
    for (upstream, service), spans in sorted(span_groups.items()):
        primaries = sum(1 for s in spans if s.attempt == 0)
        completed = sorted(
            s.duration for s in spans if s.closed and s.status == SPAN_OK
        )
        duration = {
            q: sum(
                weight * completed[index]
                for index, weight in _quantile_blend(len(completed), q)
            )
            for q in percentiles
        } if completed else {}
        edges.append(EdgeStats(
            upstream=upstream,
            service=service,
            count=len(spans),
            errors=sum(1 for s in spans if s.status == SPAN_CANCELLED),
            rate=len(spans) / elapsed,
            amplification=(
                len(spans) / primaries if primaries else math.inf
            ),
            duration=duration,
        ))
    return edges


@dataclass
class NodeBreakdown:
    """Queueing / service / network decomposition of one node's spans
    at each duration percentile."""

    node: str
    visits: int  #: completed (ok) spans the percentiles cover
    cancelled: int  #: traversals cancelled at this node
    #: percentile -> (duration, network, queueing, service) — the last
    #: three sum to the first at every percentile.
    percentiles: Dict[float, Tuple[float, float, float, float]]


def node_breakdowns(
    traces: Sequence[Trace],
    percentiles: Sequence[float] = DEFAULT_PERCENTILES,
) -> List[NodeBreakdown]:
    """Where each node's time goes, percentile by percentile.

    Spans of each node are ordered by duration; at each percentile the
    adjacent order statistics' (network, queueing, service) components
    are blended with the interpolation weights, so the three parts sum
    to the node's duration quantile exactly. A node whose p99 is
    queueing-dominated needs capacity; one that is service-dominated
    needs faster code (or DVFS); network domination points at the
    fabric or the netproc tier.
    """
    groups: Dict[str, List[Span]] = {}
    cancelled: Dict[str, int] = {}
    for trace in traces:
        for span in trace.spans:
            if span.closed and span.status == SPAN_OK:
                groups.setdefault(span.node, []).append(span)
            elif span.status == SPAN_CANCELLED:
                cancelled[span.node] = cancelled.get(span.node, 0) + 1
                groups.setdefault(span.node, [])
    out: List[NodeBreakdown] = []
    for node, spans in sorted(groups.items()):
        spans.sort(key=lambda s: s.duration)
        quantiles: Dict[float, Tuple[float, float, float, float]] = {}
        for q in percentiles:
            if not spans:
                continue
            duration = network = queueing = service = 0.0
            for index, weight in _quantile_blend(len(spans), q):
                span = spans[index]
                duration += weight * span.duration
                network += weight * span.network
                queueing += weight * span.queueing
                service += weight * span.service_time
            quantiles[q] = (duration, network, queueing, service)
        out.append(NodeBreakdown(
            node=node,
            visits=len(spans),
            cancelled=cancelled.get(node, 0),
            percentiles=quantiles,
        ))
    return out


@dataclass
class Exemplar:
    """One slow trace touching a node — openable by request id in the
    Perfetto export (``pid`` = request id)."""

    request_id: int
    latency: float  #: end-to-end seconds
    outcome: str
    attempts: int


def exemplars(
    traces: Sequence[Trace], top: int = 3
) -> Dict[str, List[Exemplar]]:
    """The *top* slowest ok traces touching each node, slowest first —
    the traces worth opening in Perfetto when a node shows up in the
    tail attribution."""
    if top < 1:
        raise ReproError(f"top must be >= 1, got {top!r}")
    by_node: Dict[str, List[Trace]] = {}
    for trace in _ok_traces(traces):
        for node in {span.node for span in trace.spans}:
            by_node.setdefault(node, []).append(trace)
    return {
        node: [
            Exemplar(
                request_id=t.request_id,
                latency=_e2e(t),
                outcome=t.outcome,
                attempts=t.attempts,
            )
            for t in sorted(node_traces, key=_e2e, reverse=True)[:top]
        ]
        for node, node_traces in sorted(by_node.items())
    }


@dataclass
class TraceAnalytics:
    """Everything :func:`analyze_traces` derives from a trace corpus."""

    traces: int  #: traces analysed
    ok_traces: int  #: traces whose request resolved ok
    window: Tuple[float, float]  #: simulated (start, end) covered
    tail: Dict[float, TailAttribution]
    edges: List[EdgeStats]
    nodes: List[NodeBreakdown]
    exemplars: Dict[str, List[Exemplar]]

    @property
    def duration(self) -> float:
        return self.window[1] - self.window[0]


def analyze_traces(
    traces: Sequence[Trace],
    percentiles: Sequence[float] = DEFAULT_PERCENTILES,
    top: int = 3,
) -> TraceAnalytics:
    """Run the full analytics battery over *traces*."""
    if not traces:
        raise ReproError("no traces to analyze")
    return TraceAnalytics(
        traces=len(traces),
        ok_traces=len(_ok_traces(traces)),
        window=_observation_window(traces),
        tail=tail_attribution(traces, percentiles),
        edges=red_graph(traces, percentiles),
        nodes=node_breakdowns(traces, percentiles),
        exemplars=exemplars(traces, top),
    )
