"""Process-parallel fan-out for embarrassingly parallel experiments.

Every sweep point, replication, and figure panel builds its own world
from its own seed — there is no shared state between them, so the only
thing serial execution buys is a warm prompt. :func:`parallel_map`
farms such items out to a :class:`~concurrent.futures.ProcessPoolExecutor`
while keeping the two properties the experiment layer relies on:

* **Deterministic ordering** — results come back in item order, never
  completion order, so a sweep's points line up with its loads no
  matter how the pool interleaved them.
* **Deterministic seeding** — parallelism must not touch randomness.
  Workers receive fully-specified work items whose seeds were derived
  *before* the fan-out (see :mod:`repro.runner.seeding`), so
  ``jobs=1`` and ``jobs=N`` produce identical results bit for bit.

On top of the PR-2 fan-out this runner is **self-healing**: items run
as individual ``submit()`` futures, so one worker dying (OOM kill,
segfault, ``os._exit``) no longer aborts the whole sweep with a bare
``BrokenProcessPool``. The pool is rebuilt, surviving items continue,
and the items that were in flight at the moment of death are re-run
one at a time in a *quarantine* pool of a single worker — if the pool
breaks again there, the guilty item is identified beyond doubt and
innocent bystanders keep their results. Failed items are retried up to
a budget with capped backoff; an optional per-item wall-clock timeout
kills hung workers the same way.

The callable and items must be picklable (module-level functions,
:func:`functools.partial` of them, plain-data arguments). ``jobs=1``
(the default everywhere) never touches multiprocessing, and a pool
that cannot be created at all — sandboxes without /dev/shm or fork —
degrades to the same in-process path rather than failing the sweep.
"""

from __future__ import annotations

import os
import time
import warnings
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, TypeVar

from ..errors import PartialSweepError, ReproError, WorkerCrashError

T = TypeVar("T")
R = TypeVar("R")

#: Backoff between pool rebuilds / item retries: ``BACKOFF_BASE * 2**k``
#: capped at ``BACKOFF_CAP`` seconds. Real seconds, not simulated ones —
#: this paces recovery from resource exhaustion (an OOM-killed worker
#: retried instantly usually dies instantly again).
BACKOFF_BASE = 0.05
BACKOFF_CAP = 2.0

#: How often the future-wait loop wakes up to poll timeouts (seconds).
_POLL = 0.05


@dataclass
class ItemFailure:
    """One sweep item that exhausted its retry budget.

    Returned in-place in the result list (``failures="collect"``) so a
    sweep with a few bad points still yields every good one; the
    journaled-run layer (:mod:`repro.runner.runstore`) records these and
    recomputes only the holes on resume.
    """

    index: int  #: position in the item list
    item: Any  #: the work item itself (repr'd in messages)
    error: str  #: repr of the final exception
    kind: str  #: "exception" | "crash" | "timeout"
    attempts: int  #: how many times the item was tried
    seed: Optional[int] = None  #: derived seed, when the caller knows it

    def __bool__(self) -> bool:  # a failure is falsy as a "result"
        return False


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``jobs`` argument: ``None``/``0`` means all cores."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    jobs = int(jobs)
    if jobs < 0:
        raise ReproError(
            f"jobs must be >= 1, or 0/None for all cores; got {jobs!r}"
        )
    return jobs


@dataclass
class _ItemState:
    """Book-keeping for one in-flight item."""

    index: int
    attempts: int = 0
    running_since: Optional[float] = None
    suspect: bool = False  # was (possibly) running when the pool broke


@dataclass
class _MapRun:
    """Shared state of one self-healing map invocation."""

    fn: Callable
    items: List[Any]
    retries: int
    timeout: Optional[float]
    fail_fast: bool
    on_result: Optional[Callable[[int, Any], None]]
    results: List[Any] = field(default_factory=list)
    failures: List[ItemFailure] = field(default_factory=list)

    def record(self, index: int, value: Any) -> None:
        self.results[index] = value
        if self.on_result is not None:
            self.on_result(index, value)

    def fail(self, state: _ItemState, exc_repr: str, kind: str) -> None:
        failure = ItemFailure(
            index=state.index,
            item=self.items[state.index],
            error=exc_repr,
            kind=kind,
            attempts=state.attempts,
        )
        if self.fail_fast and kind != "exception":
            raise WorkerCrashError(failure)
        self.failures.append(failure)
        self.results[state.index] = failure


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    jobs: Optional[int] = 1,
    chunksize: int = 1,  # kept for call-site compatibility; unused
    *,
    retries: int = 0,
    timeout: Optional[float] = None,
    on_result: Optional[Callable[[int, R], None]] = None,
    failures: str = "raise",
) -> List[R]:
    """``[fn(item) for item in items]``, fanned out over *jobs* processes.

    Results keep item order. With ``jobs=1`` (or a single item) the map
    runs in-process — no pool, no pickling, no overhead.

    Robustness knobs (all default to the historical fail-fast
    behaviour):

    * ``retries`` — per-item retry budget. An item that raises, crashes
      its worker, or times out is re-run up to this many extra times
      (with capped exponential backoff between pool rebuilds).
    * ``timeout`` — per-item wall-clock budget in real seconds. A
      worker that exceeds it is killed and its item counts one attempt.
      Only enforceable with ``jobs > 1`` (in-process there is no worker
      to kill); ignored otherwise.
    * ``on_result`` — ``on_result(index, result)`` called in the parent
      process as each item completes (journaling hook; completion
      order, not item order).
    * ``failures`` — ``"raise"`` re-raises the first exhausted item's
      exception immediately (worker crashes/timeouts raise
      :class:`~repro.errors.WorkerCrashError`); ``"collect"`` leaves an
      :class:`ItemFailure` in that item's result slot, lets every other
      item finish, and only then raises a single
      :class:`~repro.errors.PartialSweepError` carrying the full result
      list.
    """
    if failures not in ("raise", "collect"):
        raise ReproError(
            f'failures must be "raise" or "collect", got {failures!r}'
        )
    if retries < 0:
        raise ReproError(f"retries must be >= 0, got {retries!r}")
    items = list(items)
    jobs = resolve_jobs(jobs)
    run = _MapRun(
        fn=fn,
        items=items,
        retries=retries,
        timeout=timeout,
        fail_fast=failures == "raise",
        on_result=on_result,
        results=[None] * len(items),
    )
    if jobs == 1 or len(items) <= 1:
        _map_in_process(run)
    else:
        try:
            _map_in_pool(run, jobs)
        except (OSError, PermissionError) as exc:
            # Pool infrastructure unavailable (restricted sandbox, no
            # semaphores): degrade to in-process rather than fail the
            # experiment. Results are identical by construction.
            warnings.warn(
                f"process pool unavailable ({exc}); running {len(items)} "
                f"items in-process", RuntimeWarning, stacklevel=2,
            )
            _map_in_process(run)
    if run.failures:
        raise PartialSweepError(run.failures, run.results)
    return run.results


def _map_in_process(run: _MapRun) -> None:
    """The serial path: same retry/collect semantics, no pool.

    Worker crashes cannot be healed here (the "worker" is this very
    process) and timeouts are unenforceable, so only plain exceptions
    are retried.
    """
    for index, item in enumerate(run.items):
        state = _ItemState(index)
        while True:
            state.attempts += 1
            try:
                run.record(index, run.fn(item))
                break
            except Exception as exc:
                if state.attempts <= run.retries:
                    time.sleep(_backoff(state.attempts))
                    continue
                if run.fail_fast:
                    raise
                run.fail(state, repr(exc), "exception")
                break


def _backoff(attempt: int) -> float:
    """Capped exponential backoff before retry *attempt*."""
    return min(BACKOFF_BASE * (2 ** max(0, attempt - 1)), BACKOFF_CAP)


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down *now*, killing any still-running workers.

    ``shutdown(cancel_futures=True)`` only drops queued work — a hung
    worker would keep its process (and our wall clock) forever, so
    terminate the worker processes directly.
    """
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.terminate()
        except (OSError, AttributeError):  # already dead / exotic impl
            pass
    pool.shutdown(wait=False, cancel_futures=True)


def _map_in_pool(run: _MapRun, jobs: int) -> None:
    """The self-healing pool path: individual futures, rebuilt pools.

    Items flow through a main pool of *jobs* workers; whenever the pool
    breaks (a worker died) or an item exceeds its wall-clock timeout,
    the items that may have been running become *suspects* and are
    replayed one at a time in a single-worker quarantine pool where
    blame is unambiguous. Unstarted items are resubmitted to a fresh
    main pool without losing an attempt.
    """
    pending = [_ItemState(i) for i in range(len(run.items))]
    rebuilds = 0
    while pending:
        suspects = [s for s in pending if s.suspect]
        healthy = [s for s in pending if not s.suspect]
        if suspects:
            # Quarantine: one item, one worker, exact attribution.
            survivors = _drive_pool(run, suspects[:1], max_workers=1)
            pending = survivors + suspects[1:] + healthy
        else:
            pending = _drive_pool(run, healthy, max_workers=jobs)
        if pending:
            rebuilds += 1
            time.sleep(_backoff(rebuilds))


def _drive_pool(
    run: _MapRun, states: List[_ItemState], max_workers: int
) -> List[_ItemState]:
    """Run *states* in one pool until it finishes, breaks, or an item
    times out. Returns the states still owed a result (requeued and/or
    suspects for quarantine)."""
    if not states:
        return []
    workers = min(max_workers, len(states))
    for state in states:
        state.running_since = None
        state.suspect = False
    pool = ProcessPoolExecutor(max_workers=workers)
    try:
        futures: Dict[Any, _ItemState] = {}
        for state in states:
            state.attempts += 1
            futures[pool.submit(run.fn, run.items[state.index])] = state
        return _reap(run, pool, futures, workers)
    finally:
        _kill_pool(pool)


def _reap(
    run: _MapRun,
    pool: ProcessPoolExecutor,
    futures: Dict[Any, _ItemState],
    workers: int,
) -> List[_ItemState]:
    """Collect futures until the map is done, the pool breaks, or an
    item times out. *futures* is insertion-ordered (submission order),
    which mirrors the executor's FIFO dispatch — the basis for blaming
    the right items when the pool dies without notice."""
    while futures:
        done, _ = wait(futures, timeout=_POLL, return_when=FIRST_COMPLETED)
        now = time.monotonic()
        broken = False
        resubmit: List[_ItemState] = []
        for future in done:
            exc = future.exception()
            if isinstance(exc, BrokenProcessPool):
                # Leave it in *futures*, in submission order, for
                # classification — every sibling future carries the
                # same exception once the pool dies.
                broken = True
            elif exc is None:
                run.record(futures.pop(future).index, future.result())
            elif _retryable(run, state := futures.pop(future),
                            exc, "exception"):
                resubmit.append(state)
        if broken:
            return _after_break(run, futures, workers)
        for state in resubmit:
            state.running_since = None
            state.attempts += 1
            try:
                futures[pool.submit(run.fn, run.items[state.index])] = state
            except BrokenProcessPool:
                # Pool died between the poll and the resubmit: the item
                # provably was not running, so it keeps its refund.
                state.attempts -= 1
                survivors = _after_break(run, futures, workers)
                return survivors + [state]
        # Timeout accounting: an item's clock starts the first time its
        # future reports running (dispatch to a worker), so time queued
        # behind other items doesn't count against its budget.
        expired = False
        for future, state in futures.items():
            if state.running_since is None and future.running():
                state.running_since = now
            if (run.timeout is not None
                    and state.running_since is not None
                    and now - state.running_since > run.timeout):
                expired = True
        if expired:
            return _after_timeout(run, futures, workers)
    return []


def _retryable(
    run: _MapRun, state: _ItemState, exc: BaseException, kind: str
) -> bool:
    """Retry *state* if budget remains, else record its failure.

    Returns True when the item should be run again."""
    if state.attempts <= run.retries:
        return True
    if kind == "exception" and run.fail_fast:
        raise exc
    run.fail(state, repr(exc), kind)
    return False


def _dispatched(
    futures: Dict[Any, _ItemState], workers: int
) -> "set[int]":
    """Indices of the unfinished items that may have reached a worker.

    A worker death gives no culprit, so blame conservatively: any item
    observed running, plus the earliest-submitted unfinished items that
    fit in the workers and the executor's one-deep staging queue (its
    dispatch is FIFO over submissions). Everyone else was provably
    still queued in the parent process.
    """
    suspects = {
        state.index
        for state in futures.values()
        if state.running_since is not None
    }
    window = workers + 1  # max_workers + the executor's staging slot
    for state in futures.values():  # insertion order == submission order
        if len(suspects) >= window:
            break
        suspects.add(state.index)
    return suspects


def _after_break(
    run: _MapRun, futures: Dict[Any, _ItemState], workers: int
) -> List[_ItemState]:
    """Classify every unfinished item after the pool died.

    Possible culprits keep the attempt they just spent and go to
    quarantine (a one-worker pool where a second death is attributed
    beyond doubt); provably-queued items get their attempt refunded and
    rejoin the next main pool.
    """
    suspects = _dispatched(futures, workers)
    exc = BrokenProcessPool("a process pool worker died unexpectedly")
    survivors = []
    for state in futures.values():
        state.running_since = None
        if state.index in suspects:
            if _retryable(run, state, exc, "crash"):
                state.suspect = True
                survivors.append(state)
        else:
            state.attempts -= 1  # never dispatched; refund
            state.suspect = False
            survivors.append(state)
    return survivors


def _after_timeout(
    run: _MapRun, futures: Dict[Any, _ItemState], workers: int
) -> List[_ItemState]:
    """Classify every unfinished item after a per-item timeout.

    The caller kills the whole pool (a hung worker cannot be cancelled
    individually), so expired items count their attempt, other
    observed-running items go to quarantine with their attempt
    refunded (their work was collateral damage, not their fault), and
    queued items simply rejoin.
    """
    now = time.monotonic()
    exc = TimeoutError(
        f"item exceeded its {run.timeout}s wall-clock timeout"
    )
    survivors = []
    for state in futures.values():
        started = state.running_since
        state.running_since = None
        expired = (started is not None
                   and now - started > (run.timeout or 0.0))
        if expired:
            if _retryable(run, state, exc, "timeout"):
                state.suspect = True  # rerun alone, on a fresh clock
                survivors.append(state)
        else:
            state.attempts -= 1  # killed pool took its attempt back
            state.suspect = started is not None
            survivors.append(state)
    return survivors


def default_jobs_from_env(var: str = "REPRO_JOBS") -> int:
    """Worker count from the environment (used by benchmarks/CLI glue)."""
    raw = os.environ.get(var, "1")
    try:
        return resolve_jobs(int(raw))
    except (ValueError, ReproError) as exc:
        warnings.warn(
            f"ignoring bad {var}={raw!r} ({exc}); using 1 worker",
            RuntimeWarning, stacklevel=2,
        )
        return 1
