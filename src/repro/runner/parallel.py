"""Process-parallel fan-out for embarrassingly parallel experiments.

Every sweep point, replication, and figure panel builds its own world
from its own seed — there is no shared state between them, so the only
thing serial execution buys is a warm prompt. :func:`parallel_map`
farms such items out to a :class:`~concurrent.futures.ProcessPoolExecutor`
while keeping the two properties the experiment layer relies on:

* **Deterministic ordering** — results come back in item order, never
  completion order, so a sweep's points line up with its loads no
  matter how the pool interleaved them.
* **Deterministic seeding** — parallelism must not touch randomness.
  Workers receive fully-specified work items whose seeds were derived
  *before* the fan-out (see :mod:`repro.runner.seeding`), so
  ``jobs=1`` and ``jobs=N`` produce identical results bit for bit.

The callable and items must be picklable (module-level functions,
:func:`functools.partial` of them, plain-data arguments). ``jobs=1``
(the default everywhere) never touches multiprocessing, and a pool
that cannot be created at all — sandboxes without /dev/shm or fork —
degrades to the same in-process path rather than failing the sweep.
"""

from __future__ import annotations

import os
import sys
import warnings
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, List, Optional, TypeVar

from ..errors import ReproError

T = TypeVar("T")
R = TypeVar("R")


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``jobs`` argument: ``None``/``0`` means all cores."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    jobs = int(jobs)
    if jobs < 0:
        raise ReproError(f"jobs must be >= 1 (or 0/None for all cores), "
                         f"got {jobs!r}")
    return jobs


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    jobs: Optional[int] = 1,
    chunksize: int = 1,
) -> List[R]:
    """``[fn(item) for item in items]``, fanned out over *jobs* processes.

    Results keep item order. With ``jobs=1`` (or a single item) the map
    runs in-process — no pool, no pickling, no overhead. A worker
    exception propagates to the caller either way.
    """
    items = list(items)
    jobs = resolve_jobs(jobs)
    if jobs == 1 or len(items) <= 1:
        return [fn(item) for item in items]
    try:
        with ProcessPoolExecutor(max_workers=min(jobs, len(items))) as pool:
            return list(pool.map(fn, items, chunksize=chunksize))
    except (OSError, PermissionError) as exc:
        # Pool infrastructure unavailable (restricted sandbox, no
        # semaphores): degrade to in-process rather than fail the
        # experiment. Results are identical by construction.
        warnings.warn(
            f"process pool unavailable ({exc}); running {len(items)} "
            f"items in-process", RuntimeWarning, stacklevel=2,
        )
        return [fn(item) for item in items]


def default_jobs_from_env(var: str = "REPRO_JOBS") -> int:
    """Worker count from the environment (used by benchmarks/CLI glue)."""
    raw = os.environ.get(var, "1")
    try:
        return resolve_jobs(int(raw))
    except ValueError:
        print(f"ignoring non-integer {var}={raw!r}", file=sys.stderr)
        return 1
