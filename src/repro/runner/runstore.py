"""Durable experiment runs: a journaled run directory per sweep.

A multi-hour sweep that dies at point 199/200 should not owe the world
a fresh multi-hour run. :class:`RunStore` gives every run a directory
holding two files:

``journal.jsonl``
    One line per finished sweep point, appended (and flushed) the
    moment the point completes, keyed by a **content hash** of
    (experiment id, point spec, derived seed, code-relevant config) —
    :func:`point_key`. A key identifies a point's *inputs* exactly, so
    reusing a journaled result is byte-identical to recomputing it:
    seeds are derived before the fan-out and simulations are
    deterministic given their seed.

``manifest.json``
    An atomically-rewritten summary of the run: outcome per point,
    seeds, config hash, package versions, wall time, and final status
    (``completed`` / ``partial`` / ``interrupted``). The write goes to
    a temp file in the same directory followed by :func:`os.replace`,
    so a kill mid-write never leaves a torn manifest.

:func:`durable_map` is the glue the experiment layer uses: it skips
already-journaled points (``resume=True``), fans the missing ones out
through :func:`~repro.runner.parallel_map` in self-healing collect
mode, journals each as it lands, and always leaves a manifest behind —
including on ``KeyboardInterrupt``.

Results are stored as JSON, not pickles, so journals stay auditable
and diffable: dataclasses registered via :func:`register_result_type`
round-trip field-by-field (floats keep their exact bits — Python's
``repr`` shortest-round-trip guarantee), and only unregistered exotic
objects fall back to pickling.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import pickle
import platform
import sys
import tempfile
import time
from dataclasses import fields, is_dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from ..errors import PartialSweepError, ReproError
from .parallel import ItemFailure, parallel_map

# -- result codec ----------------------------------------------------------

_RESULT_TYPES: Dict[str, type] = {}


def register_result_type(cls: type) -> type:
    """Register a dataclass so journal entries round-trip it by name.

    Usable as a decorator. Registration is keyed by class name; two
    result dataclasses with the same name would shadow each other, so
    that is rejected loudly.
    """
    if not is_dataclass(cls):
        raise ReproError(f"{cls!r} is not a dataclass")
    existing = _RESULT_TYPES.get(cls.__name__)
    if existing is not None and existing is not cls:
        raise ReproError(
            f"result type name {cls.__name__!r} already registered "
            f"by {existing.__module__}"
        )
    _RESULT_TYPES[cls.__name__] = cls
    return cls


def encode_value(value: Any) -> Any:
    """JSON-encodable form of *value*; see :func:`decode_value`."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, tuple):
        return {"__tuple__": [encode_value(v) for v in value]}
    if isinstance(value, list):
        return [encode_value(v) for v in value]
    if isinstance(value, dict) and all(isinstance(k, str) for k in value):
        return {k: encode_value(v) for k, v in value.items()}
    if is_dataclass(value) and type(value).__name__ in _RESULT_TYPES:
        return {
            "__dc__": type(value).__name__,
            "fields": {
                f.name: encode_value(getattr(value, f.name))
                for f in fields(value)
            },
        }
    # Last resort for unregistered types: opaque but lossless.
    return {
        "__pickle__": base64.b64encode(
            pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        ).decode("ascii")
    }


def decode_value(value: Any) -> Any:
    """Inverse of :func:`encode_value`."""
    if isinstance(value, list):
        return [decode_value(v) for v in value]
    if isinstance(value, dict):
        if "__tuple__" in value:
            return tuple(decode_value(v) for v in value["__tuple__"])
        if "__dc__" in value:
            name = value["__dc__"]
            cls = _RESULT_TYPES.get(name)
            if cls is None:
                raise ReproError(
                    f"journal references unregistered result type {name!r}; "
                    f"import the module that defines it before resuming"
                )
            return cls(**{
                k: decode_value(v) for k, v in value["fields"].items()
            })
        if "__pickle__" in value:
            return pickle.loads(base64.b64decode(value["__pickle__"]))
        return {k: decode_value(v) for k, v in value.items()}
    return value


def canonical_json(value: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace, exact floats."""
    return json.dumps(
        encode_value(value), sort_keys=True, separators=(",", ":")
    )


def point_key(
    experiment: str,
    item: Any,
    seed: Optional[int],
    config: Any = None,
) -> str:
    """Content hash naming one sweep point's inputs.

    Two points share a key iff they would compute the same result:
    same experiment id, same point spec, same derived seed, same
    code-relevant config. 80 bits of SHA-256 — collisions are not a
    practical concern at sweep scale.
    """
    payload = canonical_json({
        "experiment": experiment,
        "item": item,
        "seed": seed,
        "config": config,
    })
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:20]


def append_jsonl(path: Union[str, Path], entry: dict) -> None:
    """Durably append one JSON line (open-write-fsync-close).

    The journal discipline shared by :class:`RunStore` and the sharded
    replay log (:class:`repro.shard.journal.ReplayJournal`): entries
    land seconds apart, so per-line durability beats throughput, and a
    torn final line from a killed process leaves every earlier line
    intact.
    """
    line = json.dumps(entry, sort_keys=True)
    with open(path, "a") as fh:
        fh.write(line + "\n")
        fh.flush()
        os.fsync(fh.fileno())


def write_json_atomic(path: Union[str, Path], payload: dict) -> None:
    """Write *payload* as JSON via a same-directory temp file and
    :func:`os.replace`, so readers never observe a torn file."""
    path = Path(path)
    fd, tmp = tempfile.mkstemp(
        dir=str(path.parent), prefix=path.name, suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def environment_info() -> Dict[str, str]:
    """The package/platform versions a manifest records."""
    import repro  # deferred: repro/__init__ imports this module's package

    return {
        "repro": getattr(repro, "__version__", "unknown"),
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "platform": platform.platform(),
    }


# -- the store -------------------------------------------------------------

class RunStore:
    """One run directory: journal + manifest.

    The journal is append-only and keyed by content hash, so it doubles
    as a cache: a fresh run over an existing directory appends new
    entries (later entries win), while ``resume`` reuses any entry
    whose key matches — which is safe by construction, because the key
    covers everything the result depends on.
    """

    def __init__(
        self,
        run_dir: Union[str, Path],
        experiment: str = "run",
        config: Any = None,
    ) -> None:
        self.run_dir = Path(run_dir)
        self.run_dir.mkdir(parents=True, exist_ok=True)
        self.experiment = experiment
        self.config = config
        self.journal_path = self.run_dir / "journal.jsonl"
        self.manifest_path = self.run_dir / "manifest.json"
        self.started_at = time.time()
        self._entries: Dict[str, dict] = {}
        self._load_journal()

    def _load_journal(self) -> None:
        if not self.journal_path.exists():
            return
        with open(self.journal_path) as fh:
            for line_no, line in enumerate(fh, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except ValueError:
                    # A torn final line from a killed run: everything
                    # before it is intact, the point it described will
                    # simply be recomputed.
                    continue
                if isinstance(entry, dict) and "key" in entry:
                    self._entries[entry["key"]] = entry

    # -- queries ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def entry(self, key: str) -> Optional[dict]:
        return self._entries.get(key)

    def has_ok(self, key: str) -> bool:
        entry = self._entries.get(key)
        return entry is not None and entry.get("outcome") == "ok"

    def result_for(self, key: str) -> Any:
        """Decode the journaled result for *key* (must be an ok entry)."""
        entry = self._entries[key]
        if entry.get("outcome") != "ok":
            raise ReproError(
                f"journal entry {key} has outcome "
                f"{entry.get('outcome')!r}, not 'ok'"
            )
        return decode_value(entry["result"])

    # -- recording --------------------------------------------------------

    def record_ok(
        self,
        key: str,
        *,
        item: Any,
        seed: Optional[int],
        result: Any,
        attempts: int = 1,
        wall_s: Optional[float] = None,
    ) -> None:
        self._append({
            "key": key,
            "outcome": "ok",
            "item": encode_value(item),
            "seed": seed,
            "attempts": attempts,
            "wall_s": wall_s,
            "recorded_at": time.time(),
            "result": encode_value(result),
        })

    def record_failure(
        self,
        key: str,
        *,
        item: Any,
        seed: Optional[int],
        error: str,
        kind: str = "exception",
        attempts: int = 1,
    ) -> None:
        self._append({
            "key": key,
            "outcome": "failed",
            "item": encode_value(item),
            "seed": seed,
            "attempts": attempts,
            "recorded_at": time.time(),
            "error": error,
            "kind": kind,
        })

    def _append(self, entry: dict) -> None:
        """Durably append one journal line (see :func:`append_jsonl`)."""
        append_jsonl(self.journal_path, entry)
        self._entries[entry["key"]] = entry

    # -- manifest ---------------------------------------------------------

    def write_manifest(
        self, status: str, extra: Optional[dict] = None
    ) -> dict:
        """Atomically (re)write ``manifest.json`` and return its payload."""
        outcomes = {
            key: {
                k: entry.get(k)
                for k in ("outcome", "seed", "attempts", "wall_s", "kind")
                if entry.get(k) is not None
            }
            for key, entry in sorted(self._entries.items())
        }
        counts: Dict[str, int] = {}
        for entry in self._entries.values():
            outcome = entry.get("outcome", "unknown")
            counts[outcome] = counts.get(outcome, 0) + 1
        payload = {
            "experiment": self.experiment,
            "status": status,
            "config": encode_value(self.config),
            "config_hash": point_key(self.experiment, None, None, self.config),
            "environment": environment_info(),
            "wall_time_s": round(time.time() - self.started_at, 3),
            "points": outcomes,
            "counts": counts,
        }
        if extra:
            payload.update(extra)
        write_json_atomic(self.manifest_path, payload)
        return payload


# -- the durable map -------------------------------------------------------

def durable_map(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    *,
    store: RunStore,
    keys: Sequence[str],
    seeds: Optional[Sequence[int]] = None,
    resume: bool = True,
    jobs: Optional[int] = 1,
    retries: int = 0,
    timeout: Optional[float] = None,
    manifest_extra: Optional[Any] = None,
) -> List[Any]:
    """:func:`parallel_map` with a journal in the loop.

    Points whose *key* already has an ``ok`` journal entry are reused
    (``resume=True``) without touching a worker; the rest run in
    collect mode so one bad point cannot abort the sweep. Every
    completion and every exhausted failure is journaled as it happens,
    and a manifest is written on the way out — on success, on partial
    failure, and on interrupt alike.

    *manifest_extra* adds sweep-level keys to the manifest: either a
    dict merged as-is, or a callable receiving the full result list
    (failures included) and returning a dict — how sweeps record
    aggregate verdicts such as SLO summaries. The callable is skipped
    on interrupt, when there is no complete result list to summarise.
    """
    if len(keys) != len(items):
        raise ReproError(
            f"{len(items)} items but {len(keys)} keys"
        )
    if seeds is not None and len(seeds) != len(items):
        raise ReproError(
            f"{len(items)} items but {len(seeds)} seeds"
        )
    results: List[Any] = [None] * len(items)
    todo: List[int] = []
    for i, key in enumerate(keys):
        if resume and store.has_ok(key):
            results[i] = store.result_for(key)
        else:
            todo.append(i)

    def seed_of(i: int) -> Optional[int]:
        return None if seeds is None else seeds[i]

    def journal_ok(sub_index: int, result: Any) -> None:
        i = todo[sub_index]
        store.record_ok(
            keys[i], item=items[i], seed=seed_of(i), result=result,
        )

    failures: List[ItemFailure] = []
    try:
        sub_results = parallel_map(
            fn,
            [items[i] for i in todo],
            jobs=jobs,
            retries=retries,
            timeout=timeout,
            on_result=journal_ok,
            failures="collect",
        )
    except PartialSweepError as exc:
        sub_results = exc.results
        for failure in exc.failures:
            i = todo[failure.index]
            failures.append(ItemFailure(
                index=i,
                item=items[i],
                error=failure.error,
                kind=failure.kind,
                attempts=failure.attempts,
                seed=seed_of(i),
            ))
            store.record_failure(
                keys[i],
                item=items[i],
                seed=seed_of(i),
                error=failure.error,
                kind=failure.kind,
                attempts=failure.attempts,
            )
    except BaseException:
        # KeyboardInterrupt / hard errors: the journal already holds
        # every completed point; leave an honest manifest behind too.
        store.write_manifest(
            "interrupted",
            extra=manifest_extra if isinstance(manifest_extra, dict) else None,
        )
        raise
    remapped = {failure.index: failure for failure in failures}
    for sub_index, i in enumerate(todo):
        result = sub_results[sub_index]
        results[i] = remapped[i] if isinstance(result, ItemFailure) else result
    extra: Dict[str, Any] = {"resumed_points": len(items) - len(todo)}
    if callable(manifest_extra):
        extra.update(manifest_extra(results) or {})
    elif manifest_extra:
        extra.update(manifest_extra)
    store.write_manifest("partial" if failures else "completed", extra=extra)
    if failures:
        raise PartialSweepError(failures, results)
    return results
