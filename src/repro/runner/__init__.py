"""Experiment runner: process-parallel fan-out with deterministic
ordering and seeding.

``parallel_map(fn, items, jobs)`` is the one entry point the
experiment layer uses; :func:`derive_seed` is the seed discipline that
makes ``jobs=1`` and ``jobs=N`` bit-identical. See
:mod:`repro.runner.parallel` for the contract.
"""

from .parallel import default_jobs_from_env, parallel_map, resolve_jobs
from .seeding import derive_seed

__all__ = [
    "parallel_map",
    "resolve_jobs",
    "derive_seed",
    "default_jobs_from_env",
]
