"""Experiment runner: process-parallel fan-out with deterministic
ordering and seeding, plus the durable-run layer.

``parallel_map(fn, items, jobs)`` is the one entry point the
experiment layer uses; :func:`derive_seed` is the seed discipline that
makes ``jobs=1`` and ``jobs=N`` bit-identical. See
:mod:`repro.runner.parallel` for the contract — including the
self-healing knobs (``retries``, ``timeout``, ``failures="collect"``)
that keep a sweep alive through crashed or hung workers.

:class:`RunStore` (:mod:`repro.runner.runstore`) journals completed
sweep points to a run directory so interrupted sweeps resume instead
of restarting; :func:`durable_map` is the parallel_map wrapper that
reads and writes it.
"""

from .parallel import (
    ItemFailure,
    default_jobs_from_env,
    parallel_map,
    resolve_jobs,
)
from .runstore import (
    RunStore,
    append_jsonl,
    durable_map,
    point_key,
    register_result_type,
)
from .seeding import derive_seed

__all__ = [
    "ItemFailure",
    "RunStore",
    "append_jsonl",
    "parallel_map",
    "resolve_jobs",
    "derive_seed",
    "default_jobs_from_env",
    "durable_map",
    "point_key",
    "register_result_type",
]
