"""Seed derivation for fanned-out work items.

The parallel runner's determinism rests on deriving every work item's
seed *before* the fan-out, from the experiment's base seed plus the
item's identity — the same discipline :meth:`RandomStreams.fork
<repro.engine.random.RandomStreams.fork>` uses for named sub-streams,
extended to numeric identities (a sweep's offered load, a replication
index).

:func:`derive_seed` folds the components through
:class:`numpy.random.SeedSequence`, so distinct identities give
decorrelated streams and the mapping is stable across platforms and
processes. Floats contribute their full IEEE-754 bit pattern: loads of
``50.2`` and ``50.9`` QPS get independent seeds where a naive
``int(qps)`` truncation would collide them.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from ..errors import ReproError

_Component = Union[int, float, str]

_MASK64 = (1 << 64) - 1


def _as_entropy(component: _Component) -> int:
    """A non-negative integer carrying all of *component*'s information."""
    if isinstance(component, (bool, np.bool_)):
        return int(component)
    if isinstance(component, (int, np.integer)):
        return int(component) & _MASK64
    if isinstance(component, (float, np.floating)):
        # Full IEEE-754 bit pattern — never truncate toward int().
        return int(np.float64(component).view(np.uint64))
    if isinstance(component, str):
        return int.from_bytes(component.encode("utf-8"), "little")
    raise ReproError(
        f"cannot derive a seed from {component!r} "
        f"(expected int, float, or str)"
    )


def derive_seed(base_seed: int, *components: _Component) -> int:
    """A decorrelated child seed for the work item named by *components*.

    Same ``(base_seed, components)`` always gives the same seed;
    distinct components give independent ones. The result fits in 32
    bits so it is a valid seed for every consumer in the library.
    """
    entropy = [_as_entropy(base_seed)]
    entropy.extend(_as_entropy(c) for c in components)
    return int(np.random.SeedSequence(entropy).generate_state(1, np.uint32)[0])
