"""Discrete-event simulation engine (paper SSIII-A).

The engine is deliberately tiny and payload-agnostic: an
:class:`Event` is a timestamped callback, the :class:`EventQueue` is a
binary heap with deterministic tie-breaking and lazy cancellation, and
the :class:`Simulator` advances the clock event by event. Everything
domain-specific (jobs, stages, microservices, dispatchers) lives in the
layers above and communicates solely by scheduling events.
"""

from .event import (
    Event,
    PRIORITY_ADMIN,
    PRIORITY_ARRIVAL,
    PRIORITY_COMPLETION,
    PRIORITY_MONITOR,
    acquire_event,
    release_event,
)
from .event_queue import EventQueue
from .profiler import EngineProfiler, ProfileEntry
from .random import RandomStreams
from .simulator import GUARD_CHECK_EVERY, RunProgress, Simulator

__all__ = [
    "EngineProfiler",
    "Event",
    "EventQueue",
    "GUARD_CHECK_EVERY",
    "ProfileEntry",
    "RandomStreams",
    "RunProgress",
    "Simulator",
    "PRIORITY_ADMIN",
    "PRIORITY_ARRIVAL",
    "PRIORITY_COMPLETION",
    "PRIORITY_MONITOR",
    "acquire_event",
    "release_event",
]
