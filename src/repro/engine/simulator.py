"""The discrete-event simulation loop.

Paper SSIII-A / Fig. 2: the queue manager repeatedly pops the earliest
event, advances the clock to its timestamp, and fires its handler; the
handler computes execution times via the microservice models and inserts
causally dependent events back into the queue. Simulation completes when
there are no more outstanding events (or an explicit horizon/stop
condition is reached).

Time is measured in **seconds** as a float throughout the library;
helpers in :mod:`repro.telemetry` convert to ms/us for reporting.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..errors import SimulationError
from .event import Event
from .event_queue import EventQueue
from .random import RandomStreams


class Simulator:
    """Owns the clock, the event queue, and the random streams.

    All model components hold a reference to their simulator and use
    :meth:`schedule` / :meth:`schedule_at` to insert future work.
    """

    def __init__(self, seed: int = 0) -> None:
        self.now: float = 0.0
        self.events = EventQueue()
        self.random = RandomStreams(seed)
        self.events_processed: int = 0
        self._running = False
        self._stop_requested = False

    # Scheduling -------------------------------------------------------

    def schedule(
        self,
        delay: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``fn(*args)`` to run *delay* seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay!r})")
        return self.events.push(Event(self.now + delay, fn, args, priority))

    def schedule_at(
        self,
        time: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``fn(*args)`` at absolute simulation *time*."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time!r}, clock already at {self.now!r}"
            )
        return self.events.push(Event(time, fn, args, priority))

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event."""
        self.events.cancel(event)

    # Main loop --------------------------------------------------------

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> float:
        """Process events until the queue drains or a bound is hit.

        ``until`` is an inclusive time horizon: events with timestamp
        exactly equal to ``until`` still run, later ones stay queued and
        the clock is left at ``until``. Returns the final clock value.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run())")
        self._running = True
        self._stop_requested = False
        # Hot loop: hoist bound methods out of the loop — at hundreds of
        # thousands of events per second the attribute lookups dominate.
        events = self.events
        pop = events.pop
        try:
            if until is None and max_events is None:
                # Drain fast path: no horizon to compare against, so pop
                # directly instead of peeking first (halves the number
                # of heap-top inspections per event).
                while not self._stop_requested:
                    event = pop()
                    if event is None:
                        break
                    next_time = event.time
                    if next_time < self.now:
                        raise SimulationError(
                            f"event queue yielded a past event: {event!r} "
                            f"at t={self.now}"
                        )
                    self.now = next_time
                    event.fn(*event.args)
                    self.events_processed += 1
            else:
                peek_time = events.peek_time
                processed_this_run = 0
                while not self._stop_requested:
                    if max_events is not None and processed_this_run >= max_events:
                        break
                    next_time = peek_time()
                    if next_time is None:
                        break
                    if until is not None and next_time > until:
                        self.now = max(self.now, until)
                        break
                    event = pop()
                    assert event is not None
                    if next_time < self.now:
                        raise SimulationError(
                            f"event queue yielded a past event: {event!r} "
                            f"at t={self.now}"
                        )
                    self.now = next_time
                    event.fn(*event.args)
                    self.events_processed += 1
                    processed_this_run += 1
        finally:
            self._running = False
        if until is not None and not self.events:
            self.now = max(self.now, until)
        return self.now

    def stop(self) -> None:
        """Request the main loop to exit after the current event.

        Safe to call from inside an event handler (e.g. a telemetry
        monitor that detected convergence).
        """
        self._stop_requested = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Simulator t={self.now:.6f}s pending={len(self.events)} "
            f"processed={self.events_processed}>"
        )
