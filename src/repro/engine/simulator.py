"""The discrete-event simulation loop.

Paper SSIII-A / Fig. 2: the queue manager repeatedly pops the earliest
event, advances the clock to its timestamp, and fires its handler; the
handler computes execution times via the microservice models and inserts
causally dependent events back into the queue. Simulation completes when
there are no more outstanding events (or an explicit horizon/stop
condition is reached).

Time is measured in **seconds** as a float throughout the library;
helpers in :mod:`repro.telemetry` convert to ms/us for reporting.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Optional

from ..errors import SimulationAborted, SimulationError
from .event import Event, acquire_event, release_event
from .event_queue import EventQueue
from .random import RandomStreams

#: How many events the guarded loop processes between guardrail checks.
#: Checks cost a clock read plus a couple of comparisons, so at the
#: default cadence their overhead is well under 1% of event throughput
#: while still bounding a runaway loop to a fraction of a second.
GUARD_CHECK_EVERY = 2048


@dataclass
class RunProgress:
    """Snapshot handed to a :meth:`Simulator.run` watchdog callback."""

    clock: float  #: simulated seconds
    events_processed: int  #: lifetime events (continues across run()s)
    queue_depth: int  #: live events still pending
    wall_clock: float  #: real seconds spent in the current run()


class Simulator:
    """Owns the clock, the event queue, and the random streams.

    All model components hold a reference to their simulator and use
    :meth:`schedule` / :meth:`schedule_at` to insert future work.
    """

    def __init__(self, seed: int = 0) -> None:
        self.now: float = 0.0
        self.events = EventQueue()
        self.random = RandomStreams(seed)
        self.events_processed: int = 0
        self._running = False
        self._stop_requested = False
        #: Opt-in self-profiling: assign an
        #: :class:`~repro.engine.profiler.EngineProfiler` before
        #: :meth:`run` to time every event handler. ``None`` (the
        #: default) keeps the hot loops completely unmodified — the
        #: check happens once per ``run()``, not per event.
        self.profiler = None

    # Scheduling -------------------------------------------------------

    def schedule(
        self,
        delay: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``fn(*args)`` to run *delay* seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay!r})")
        return self.events.push(Event(self.now + delay, fn, args, priority))

    def schedule_at(
        self,
        time: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``fn(*args)`` at absolute simulation *time*."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time!r}, clock already at {self.now!r}"
            )
        return self.events.push(Event(time, fn, args, priority))

    def schedule_transient(
        self,
        delay: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> None:
        """Schedule fire-and-forget work on the recycled-event slab.

        Semantically identical to :meth:`schedule` but the event object
        comes from (and returns to) a module free list: the run loop
        recycles it the instant its callback returns. The contract in
        exchange for the cheaper allocation: the caller must **never
        cancel** the event nor retain a handle to it — which is why
        nothing is returned. Reserved for the per-event hot paths
        (client arrival ticks, wire deliveries) that are fired exactly
        once by construction.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay!r})")
        self.events.push(acquire_event(self.now + delay, fn, args, priority))

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event."""
        self.events.cancel(event)

    # Main loop --------------------------------------------------------

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        *,
        wall_clock_budget: Optional[float] = None,
        max_live_events: Optional[int] = None,
        watchdog: Optional[Callable[[RunProgress], None]] = None,
        watchdog_interval: float = 1.0,
    ) -> float:
        """Process events until the queue drains or a bound is hit.

        ``until`` is an inclusive time horizon: events with timestamp
        exactly equal to ``until`` still run, later ones stay queued and
        the clock is left at ``until``. Returns the final clock value.

        Guardrails (all opt-in, checked every ``GUARD_CHECK_EVERY``
        events so the unguarded hot loops stay untouched):

        * ``wall_clock_budget`` — abort with
          :class:`~repro.errors.SimulationAborted` once the run has
          consumed this many *real* seconds (catches livelocks such as
          an event loop that keeps rescheduling itself).
        * ``max_live_events`` — abort when the pending-event queue
          exceeds this depth (catches unbounded event growth before it
          exhausts memory).
        * ``watchdog`` — called with a :class:`RunProgress` snapshot
          roughly every ``watchdog_interval`` wall-clock seconds; it may
          log progress, raise, or call :meth:`stop` to end the run
          cleanly.

        An abort raises :class:`~repro.errors.SimulationAborted`
        carrying partial stats (clock, events processed, queue depth,
        wall clock); the simulator itself stays consistent — queued
        events remain queued and ``run()`` may be called again.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run())")
        self._running = True
        self._stop_requested = False
        guarded = (
            wall_clock_budget is not None
            or max_live_events is not None
            or watchdog is not None
        )
        # Hot loop: hoist bound methods out of the loop — at hundreds of
        # thousands of events per second the attribute lookups dominate.
        events = self.events
        pop = events.pop
        try:
            if guarded:
                return self._run_guarded(
                    until, max_events, wall_clock_budget, max_live_events,
                    watchdog, watchdog_interval,
                )
            if self.profiler is not None:
                return self._run_profiled(until, max_events)
            if until is None and max_events is None:
                # Drain fast path: no horizon to compare against, so pop
                # directly instead of peeking first (halves the number
                # of heap-top inspections per event).
                while not self._stop_requested:
                    event = pop()
                    if event is None:
                        break
                    next_time = event.time
                    if next_time < self.now:
                        raise SimulationError(
                            f"event queue yielded a past event: {event!r} "
                            f"at t={self.now}"
                        )
                    self.now = next_time
                    event.fn(*event.args)
                    if event.transient:
                        release_event(event)
                    self.events_processed += 1
            else:
                peek_time = events.peek_time
                processed_this_run = 0
                while not self._stop_requested:
                    if max_events is not None and processed_this_run >= max_events:
                        break
                    next_time = peek_time()
                    if next_time is None:
                        break
                    if until is not None and next_time > until:
                        self.now = max(self.now, until)
                        break
                    event = pop()
                    assert event is not None
                    if next_time < self.now:
                        raise SimulationError(
                            f"event queue yielded a past event: {event!r} "
                            f"at t={self.now}"
                        )
                    self.now = next_time
                    event.fn(*event.args)
                    if event.transient:
                        release_event(event)
                    self.events_processed += 1
                    processed_this_run += 1
        finally:
            self._running = False
        if until is not None and not self.events:
            self.now = max(self.now, until)
        return self.now

    def _run_profiled(
        self, until: Optional[float], max_events: Optional[int]
    ) -> float:
        """The generic loop with every handler routed through the
        attached profiler. Kept separate so profiler-off runs keep the
        branch-free hot loops above."""
        events = self.events
        pop = events.pop
        peek_time = events.peek_time
        dispatch = self.profiler.dispatch
        processed_this_run = 0
        while not self._stop_requested:
            if max_events is not None and processed_this_run >= max_events:
                break
            next_time = peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                self.now = max(self.now, until)
                break
            event = pop()
            assert event is not None
            if next_time < self.now:
                raise SimulationError(
                    f"event queue yielded a past event: {event!r} "
                    f"at t={self.now}"
                )
            self.now = next_time
            dispatch(event.fn, event.args)
            if event.transient:
                release_event(event)
            self.events_processed += 1
            processed_this_run += 1
        if until is not None and not events:
            self.now = max(self.now, until)
        return self.now

    def _run_guarded(
        self,
        until: Optional[float],
        max_events: Optional[int],
        wall_clock_budget: Optional[float],
        max_live_events: Optional[int],
        watchdog: Optional[Callable[[RunProgress], None]],
        watchdog_interval: float,
    ) -> float:
        """The generic loop with guardrail checks every
        ``GUARD_CHECK_EVERY`` events (plus once up front, so a tiny
        budget still trips on a pathological first event batch)."""
        events = self.events
        pop = events.pop
        peek_time = events.peek_time
        profiler = self.profiler
        started = time.monotonic()
        next_watchdog = started + watchdog_interval
        processed_this_run = 0
        countdown = 1  # check once up front, then every GUARD_CHECK_EVERY
        while not self._stop_requested:
            countdown -= 1
            if countdown <= 0:
                countdown = GUARD_CHECK_EVERY
                wall = time.monotonic() - started
                if (wall_clock_budget is not None
                        and wall > wall_clock_budget):
                    self._abort("wall_clock_budget exceeded", wall)
                if (max_live_events is not None
                        and len(events) > max_live_events):
                    self._abort(
                        f"live events exceeded {max_live_events}", wall
                    )
                if watchdog is not None and started + wall >= next_watchdog:
                    next_watchdog = started + wall + watchdog_interval
                    watchdog(RunProgress(
                        clock=self.now,
                        events_processed=self.events_processed,
                        queue_depth=len(events),
                        wall_clock=wall,
                    ))
                    if self._stop_requested:
                        break
            if max_events is not None and processed_this_run >= max_events:
                break
            next_time = peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                self.now = max(self.now, until)
                break
            event = pop()
            assert event is not None
            if next_time < self.now:
                raise SimulationError(
                    f"event queue yielded a past event: {event!r} "
                    f"at t={self.now}"
                )
            self.now = next_time
            if profiler is None:
                event.fn(*event.args)
            else:
                profiler.dispatch(event.fn, event.args)
            if event.transient:
                release_event(event)
            self.events_processed += 1
            processed_this_run += 1
        if until is not None and not events:
            self.now = max(self.now, until)
        return self.now

    def _abort(self, reason: str, wall: float) -> None:
        raise SimulationAborted(
            reason,
            clock=self.now,
            events_processed=self.events_processed,
            queue_depth=len(self.events),
            wall_clock=wall,
        )

    def stop(self) -> None:
        """Request the main loop to exit after the current event.

        Safe to call from inside an event handler (e.g. a telemetry
        monitor that detected convergence).
        """
        self._stop_requested = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Simulator t={self.now:.6f}s pending={len(self.events)} "
            f"processed={self.events_processed}>"
        )
