"""Opt-in self-profiling of the event loop.

When a simulation is slower than expected, the question is *which
handlers* the wall-clock went to — arrivals, stage completions, monitor
ticks, resilience timers — and *which microservice* owns them. The
:class:`EngineProfiler` answers both by timing every event handler the
:class:`~repro.engine.simulator.Simulator` fires:

* **by kind** — the handler's qualified name (e.g.
  ``Instance._complete_stage``), the event-loop analogue of a flat
  profile;
* **by site** — the ``name`` of the bound method's owner when it has
  one (instance names, client names, monitor names), attributing
  wall-time to the simulated component that scheduled the work.

Profiling is strictly opt-in: ``sim.profiler = EngineProfiler()``
before ``run()``. When the attribute is ``None`` (the default) the
simulator's hot loops run *unmodified* — the only cost is one ``None``
check per ``run()`` call — so profiler-off throughput stays within
noise of the un-profiled engine (guarded by
``benchmarks/bench_profiler.py``). Profiled runs pay two
``perf_counter`` reads plus a couple of dict updates per event;
expect a moderate, roughly uniform slowdown that leaves the *relative*
ranking honest.

:meth:`EngineProfiler.summary` returns the ``BENCH_engine.json``-style
payload (events, wall seconds, events/sec, top hotspots) the CLI's
``--profile`` flag prints and the benchmark harness records.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..errors import ReproError


@dataclass
class ProfileEntry:
    """Aggregated cost of one handler kind (or one site)."""

    key: str
    count: int
    seconds: float  #: total wall-clock spent in the handler

    @property
    def mean_us(self) -> float:
        return self.seconds / self.count * 1e6 if self.count else 0.0


def _kind_of(fn: Callable[..., Any]) -> str:
    """Stable flat-profile key of an event handler."""
    kind = getattr(fn, "__qualname__", None)
    if kind is None:  # partials, odd callables
        kind = repr(fn)
    return kind


def _site_of(fn: Callable[..., Any]) -> Optional[str]:
    """The simulated component owning a bound-method handler, when it
    is nameable (instances, clients, monitors all carry ``.name``)."""
    owner = getattr(fn, "__self__", None)
    if owner is None:
        return None
    name = getattr(owner, "name", None)
    return name if isinstance(name, str) else None


class EngineProfiler:
    """Accumulates per-event wall-time; attach as ``sim.profiler``.

    The simulator calls :meth:`dispatch` instead of ``fn(*args)`` while
    profiling is on; everything else (scheduling, guardrails, the
    clock) is untouched, so profiled runs process the identical event
    sequence.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self.clock = clock
        self.events = 0
        self.wall = 0.0  #: total wall seconds inside handlers
        self.started: Optional[float] = None  #: first dispatch wall stamp
        self.finished: Optional[float] = None  #: last dispatch wall stamp
        self._by_kind: Dict[str, List[float]] = {}  # key -> [count, secs]
        self._by_site: Dict[str, List[float]] = {}

    # Hot path ----------------------------------------------------------

    def dispatch(self, fn: Callable[..., Any], args: Tuple[Any, ...]) -> None:
        """Run ``fn(*args)``, booking its wall-time."""
        clock = self.clock
        t0 = clock()
        try:
            fn(*args)
        finally:
            elapsed = clock() - t0
            if self.started is None:
                self.started = t0
            self.finished = t0 + elapsed
            self.events += 1
            self.wall += elapsed
            bucket = self._by_kind.get(_kind_of(fn))
            if bucket is None:
                bucket = self._by_kind.setdefault(_kind_of(fn), [0, 0.0])
            bucket[0] += 1
            bucket[1] += elapsed
            site = _site_of(fn)
            if site is not None:
                sbucket = self._by_site.get(site)
                if sbucket is None:
                    sbucket = self._by_site.setdefault(site, [0, 0.0])
                sbucket[0] += 1
                sbucket[1] += elapsed

    # Reporting ---------------------------------------------------------

    def events_per_second(self) -> float:
        """Events dispatched per wall second of handler time."""
        return self.events / self.wall if self.wall > 0 else 0.0

    def _ranked(self, table: Dict[str, List[float]]) -> List[ProfileEntry]:
        entries = [
            ProfileEntry(key=key, count=int(count), seconds=secs)
            for key, (count, secs) in table.items()
        ]
        entries.sort(key=lambda e: -e.seconds)
        return entries

    def hotspots(self, top: int = 10) -> List[ProfileEntry]:
        """Handler kinds ranked by total wall-time, costliest first."""
        if top < 1:
            raise ReproError(f"top must be >= 1, got {top!r}")
        return self._ranked(self._by_kind)[:top]

    def sites(self, top: int = 10) -> List[ProfileEntry]:
        """Simulated components ranked by handler wall-time."""
        if top < 1:
            raise ReproError(f"top must be >= 1, got {top!r}")
        return self._ranked(self._by_site)[:top]

    def reset(self) -> None:
        self.events = 0
        self.wall = 0.0
        self.started = None
        self.finished = None
        self._by_kind.clear()
        self._by_site.clear()

    def summary(self, top: int = 10) -> Dict[str, Any]:
        """``BENCH_engine.json``-style payload of the profile."""
        return {
            "events": self.events,
            "handler_wall_s": self.wall,
            "events_per_sec": self.events_per_second(),
            "hotspots": [
                {
                    "key": e.key,
                    "count": e.count,
                    "seconds": e.seconds,
                    "mean_us": e.mean_us,
                }
                for e in self.hotspots(top)
            ] if self._by_kind else [],
            "sites": [
                {
                    "key": e.key,
                    "count": e.count,
                    "seconds": e.seconds,
                    "mean_us": e.mean_us,
                }
                for e in self.sites(top)
            ] if self._by_site else [],
        }

    def write(self, path, top: int = 10) -> None:
        """Write :meth:`summary` to *path* as JSON."""
        with open(path, "w") as fh:
            json.dump(self.summary(top), fh, indent=2, sort_keys=True)
            fh.write("\n")

    def __repr__(self) -> str:
        return (
            f"<EngineProfiler events={self.events} "
            f"wall={self.wall:.3f}s kinds={len(self._by_kind)}>"
        )
