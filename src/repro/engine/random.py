"""Seeded random-number streams for reproducible simulations.

Every stochastic element of a simulation (arrival process, each stage's
service-time distribution, path selection, straggler placement...) draws
from its own named stream. Streams are spawned from a single root seed
via :class:`numpy.random.SeedSequence`, so

* the whole simulation is reproducible from one integer seed, and
* adding a new consumer does not perturb the draws seen by existing
  consumers (streams are independent, not interleaved).
"""

from __future__ import annotations

import numpy as np


class RandomStreams:
    """Factory of named, independent :class:`numpy.random.Generator` streams."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._root = np.random.SeedSequence(self._seed)
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The root seed this container was built from."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for *name*, creating it on first use.

        The child seed is derived from the root seed and a stable hash
        of the name, so the same ``(seed, name)`` pair always yields the
        same stream regardless of creation order.
        """
        generator = self._streams.get(name)
        if generator is None:
            # Stable, order-independent derivation: fold the name's bytes
            # into spawn keys understood by SeedSequence.
            name_key = [b for b in name.encode("utf-8")]
            child = np.random.SeedSequence(self._seed, spawn_key=tuple(name_key))
            generator = np.random.default_rng(child)
            self._streams[name] = generator
        return generator

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def fork(self, salt: str) -> "RandomStreams":
        """A new container whose streams are independent of this one's.

        Used to give repetitions of an experiment (e.g. the parallel
        BigHouse instances, or the per-point runs of a load sweep)
        decorrelated randomness while staying reproducible.
        """
        mixed = np.random.SeedSequence(
            self._seed, spawn_key=tuple(salt.encode("utf-8"))
        )
        return RandomStreams(int(mixed.generate_state(1)[0]))
