"""Simulation events.

uqSim is a discrete-event simulator (paper SSIII-A): every state change
is an :class:`Event` with a timestamp, kept in a priority queue and
executed in increasing time order. An event may represent the arrival
or completion of a job in a microservice, as well as cluster
administration operations such as a DVFS change or a power-management
decision tick.

Events here are callback-based: the payload is a callable plus
positional arguments. Higher layers (services, dispatchers, clients)
define named helpers that schedule the right callbacks; keeping the
engine payload-agnostic is what makes the models modular.
"""

from __future__ import annotations

from typing import Any, Callable


class Event:
    """A single scheduled occurrence.

    Events order by ``(time, priority, seq)``. ``priority`` breaks ties
    between events scheduled for the same instant (lower runs first) and
    ``seq`` is a per-queue monotonically increasing counter, assigned by
    :meth:`EventQueue.push <repro.engine.event_queue.EventQueue.push>`,
    that makes the order of equal-time, equal-priority events
    deterministic (FIFO in scheduling order) — a property the validation
    tests rely on. Keeping the counter on the queue rather than on the
    class means two simulators produce identical sequence numbers no
    matter how many other simulators ran in the same process — required
    for cross-process determinism of the parallel experiment runner.

    ``_key`` caches the heap entry ``(time, priority, seq, self)`` so
    the queue's binary heap compares plain tuples in C instead of
    calling back into :meth:`__lt__` and building fresh tuples per
    comparison. The embedded event is never reached by a comparison:
    ``seq`` is unique within a queue, so ties break at the third slot.

    Cancellation is lazy: :meth:`cancel` marks the event and the event
    loop discards it when popped, which keeps the heap operations
    O(log n) without requiring heap surgery.
    """

    __slots__ = ("time", "priority", "seq", "fn", "args", "cancelled",
                 "_key", "_queue")

    def __init__(
        self,
        time: float,
        fn: Callable[..., Any],
        args: tuple = (),
        priority: int = 0,
    ) -> None:
        self.time = float(time)
        self.priority = priority
        self.seq = 0  # assigned by EventQueue.push
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._key = None  # heap entry, built by EventQueue.push
        self._queue = None  # owning EventQueue while pending, else None

    def cancel(self) -> None:
        """Mark the event so the simulator skips it when it is popped.

        Routed through the owning queue (when there is one) so the
        queue's live-event accounting stays correct no matter whether
        handler code calls ``event.cancel()`` or ``queue.cancel(event)``.
        """
        queue = self._queue
        if queue is not None:
            queue.cancel(self)
        else:
            self.cancelled = True

    def fire(self) -> None:
        """Run the event's callback."""
        self.fn(*self.args)

    # Ordering ---------------------------------------------------------

    def __lt__(self, other: "Event") -> bool:
        # The heap never calls this (it compares ``_key`` tuples); kept
        # for sorting events outside a queue. Compare the fields
        # directly rather than slicing ``_key`` — the keys end with the
        # events themselves, and comparing those would recurse.
        if self.time != other.time:
            return self.time < other.time
        if self.priority != other.priority:
            return self.priority < other.priority
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        flag = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time:.9f} p={self.priority} {name}{flag}>"


# Priority bands. Lower value runs earlier at equal timestamps. The
# bands encode causality at an instant: a completion must be processed
# before the arrival it may unblock, and administrative changes (DVFS)
# apply before any work scheduled at the same instant.
PRIORITY_ADMIN = -10
PRIORITY_COMPLETION = 0
PRIORITY_ARRIVAL = 10
PRIORITY_MONITOR = 20
