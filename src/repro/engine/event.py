"""Simulation events.

uqSim is a discrete-event simulator (paper SSIII-A): every state change
is an :class:`Event` with a timestamp, kept in a priority queue and
executed in increasing time order. An event may represent the arrival
or completion of a job in a microservice, as well as cluster
administration operations such as a DVFS change or a power-management
decision tick.

Events here are callback-based: the payload is a callable plus
positional arguments. Higher layers (services, dispatchers, clients)
define named helpers that schedule the right callbacks; keeping the
engine payload-agnostic is what makes the models modular.
"""

from __future__ import annotations

from typing import Any, Callable


class Event:
    """A single scheduled occurrence.

    Events order by ``(time, priority, seq)``. ``priority`` breaks ties
    between events scheduled for the same instant (lower runs first) and
    ``seq`` is a per-queue monotonically increasing counter, assigned by
    :meth:`EventQueue.push <repro.engine.event_queue.EventQueue.push>`,
    that makes the order of equal-time, equal-priority events
    deterministic (FIFO in scheduling order) — a property the validation
    tests rely on. Keeping the counter on the queue rather than on the
    class means two simulators produce identical sequence numbers no
    matter how many other simulators ran in the same process — required
    for cross-process determinism of the parallel experiment runner.

    ``_key`` caches the heap entry ``(time, priority, seq, self)`` so
    the queue's binary heap compares plain tuples in C instead of
    calling back into :meth:`__lt__` and building fresh tuples per
    comparison. The embedded event is never reached by a comparison:
    ``seq`` is unique within a queue, so ties break at the third slot.

    Cancellation is lazy: :meth:`cancel` marks the event and the event
    loop discards it when popped, which keeps the heap operations
    O(log n) without requiring heap surgery.

    ``transient`` marks a slab-allocated event from the module free
    list (see :func:`acquire_event`): the simulator's run loops recycle
    it the moment its callback returns. The flag is the whole contract
    — transient events are only created through
    :meth:`Simulator.schedule_transient
    <repro.engine.simulator.Simulator.schedule_transient>`, whose
    callers promise never to cancel or retain the handle.
    """

    __slots__ = ("time", "priority", "seq", "fn", "args", "cancelled",
                 "transient", "_key", "_queue")

    def __init__(
        self,
        time: float,
        fn: Callable[..., Any],
        args: tuple = (),
        priority: int = 0,
    ) -> None:
        self.time = float(time)
        self.priority = priority
        self.seq = 0  # assigned by EventQueue.push
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.transient = False
        self._key = None  # heap entry, built by EventQueue.push
        self._queue = None  # owning EventQueue while pending, else None

    def cancel(self) -> None:
        """Mark the event so the simulator skips it when it is popped.

        Routed through the owning queue (when there is one) so the
        queue's live-event accounting stays correct no matter whether
        handler code calls ``event.cancel()`` or ``queue.cancel(event)``.
        """
        queue = self._queue
        if queue is not None:
            queue.cancel(self)
        else:
            self.cancelled = True

    def fire(self) -> None:
        """Run the event's callback."""
        self.fn(*self.args)

    # Ordering ---------------------------------------------------------

    def __lt__(self, other: "Event") -> bool:
        # The heap never calls this (it compares ``_key`` tuples); kept
        # for sorting events outside a queue. Compare the fields
        # directly rather than slicing ``_key`` — the keys end with the
        # events themselves, and comparing those would recurse.
        if self.time != other.time:
            return self.time < other.time
        if self.priority != other.priority:
            return self.priority < other.priority
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        flag = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time:.9f} p={self.priority} {name}{flag}>"


# Priority bands. Lower value runs earlier at equal timestamps. The
# bands encode causality at an instant: a completion must be processed
# before the arrival it may unblock, and administrative changes (DVFS)
# apply before any work scheduled at the same instant.
PRIORITY_ADMIN = -10
PRIORITY_COMPLETION = 0
PRIORITY_ARRIVAL = 10
PRIORITY_MONITOR = 20


# Event slab: a bounded free list of recycled Event objects for the
# hot-path schedules that are fired exactly once and never cancelled
# (client arrival ticks, wire deliveries). At hundreds of thousands of
# events per second, re-initialising a pooled object is measurably
# cheaper than allocating a fresh one and leaves far less garbage for
# the cyclic collector to crawl. The cap bounds memory when a burst
# schedules far ahead; beyond it, acquire falls back to plain
# construction, so the pool can never change behaviour — only
# allocation traffic.
_FREE_EVENTS: list = []
_FREE_CAP = 4096


def acquire_event(
    time: float,
    fn: Callable[..., Any],
    args: tuple,
    priority: int,
) -> Event:
    """Take a recycled :class:`Event` (or build one) marked ``transient``.

    Only :meth:`Simulator.schedule_transient
    <repro.engine.simulator.Simulator.schedule_transient>` should call
    this; the run loops hand the event back via :func:`release_event`
    right after it fires.
    """
    free = _FREE_EVENTS
    if free:
        event = free.pop()
        event.time = float(time)
        event.priority = priority
        event.fn = fn
        event.args = args
        event.cancelled = False
    else:
        event = Event(time, fn, args, priority)
        event.transient = True
    return event


def release_event(event: Event) -> None:
    """Return a fired transient event to the free list.

    Clears the payload and heap key so the pool retains no references
    to model objects (jobs, closures) between uses.
    """
    event.fn = None
    event.args = ()
    event._key = None
    event._queue = None
    free = _FREE_EVENTS
    if len(free) < _FREE_CAP:
        free.append(event)
