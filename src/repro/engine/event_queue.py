"""The simulator's central priority queue of pending events.

Paper SSIII-A: "all events are stored in increasing time order in a
priority queue. In every simulation cycle, the simulation queue manager
queries the priority queue for the earliest event."

Implemented as a binary heap (:mod:`heapq`) of :class:`~repro.engine.event.Event`
objects with lazy deletion for cancelled events.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterator, Optional

from .event import Event


class EventQueue:
    """Min-heap of events ordered by ``(time, priority, seq)``."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._live = 0  # number of non-cancelled events in the heap

    def push(self, event: Event) -> Event:
        """Insert *event* and return it (handy for chaining/cancelling)."""
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest live event, or ``None`` if empty.

        Cancelled events encountered on the way are discarded silently —
        this is the lazy-deletion half of :meth:`Event.cancel`.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._live -= 1
            return event
        return None

    def peek_time(self) -> Optional[float]:
        """Timestamp of the earliest live event without removing it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def cancel(self, event: Event) -> None:
        """Cancel *event* (it stays in the heap until popped)."""
        if not event.cancelled:
            event.cancelled = True
            self._live -= 1

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def __iter__(self) -> Iterator[Event]:  # pragma: no cover - debug aid
        return iter(sorted(e for e in self._heap if not e.cancelled))

    def clear(self) -> None:
        """Drop every pending event."""
        self._heap.clear()
        self._live = 0

    def drain_until(self, time: float, sink: Callable[[Event], None]) -> None:
        """Pop every live event with ``event.time <= time`` into *sink*.

        Used by batch post-processing utilities and tests; the main loop
        in :class:`~repro.engine.simulator.Simulator` pops one event at a
        time so handlers may schedule new earlier work.
        """
        while True:
            next_time = self.peek_time()
            if next_time is None or next_time > time:
                return
            event = self.pop()
            assert event is not None
            sink(event)
