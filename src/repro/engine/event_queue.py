"""The simulator's central priority queue of pending events.

Paper SSIII-A: "all events are stored in increasing time order in a
priority queue. In every simulation cycle, the simulation queue manager
queries the priority queue for the earliest event."

Implemented as a binary heap (:mod:`heapq`) of precomputed
``(time, priority, seq, event)`` tuples — heap comparisons stay in C —
with lazy deletion for cancelled events and periodic compaction when
cancelled entries dominate the heap (mass cancellation is routine now
that timeouts, hedges, and circuit breakers cancel events in bulk).
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Callable, Iterator, Optional, Sequence

import numpy as np

from .event import Event

#: Compaction trigger: rebuild the heap when it holds more than this
#: many cancelled entries AND they outnumber the live ones. The floor
#: keeps small queues from churning; the ratio bounds wasted memory and
#: pop-side skip work to O(live).
_COMPACT_MIN_DEAD = 64


class EventQueue:
    """Min-heap of events ordered by ``(time, priority, seq)``."""

    def __init__(self) -> None:
        self._heap: list[tuple] = []  # (time, priority, seq, event)
        self._live = 0  # number of non-cancelled events in the heap
        self._seq = 0  # per-queue FIFO tie-breaker (see Event.seq)

    def push(self, event: Event) -> Event:
        """Insert *event* and return it (handy for chaining/cancelling).

        Assigns the event's queue-local ``seq`` and precomputes its heap
        key here — one tuple per push instead of two per comparison.
        """
        seq = self._seq
        self._seq = seq + 1
        event.seq = seq
        event._queue = self
        event._key = key = (event.time, event.priority, seq, event)
        heappush(self._heap, key)
        self._live += 1
        return event

    def push_batch(self, events: Sequence[Event]) -> None:
        """Insert many events at once with vectorised key construction.

        The hot caller is :meth:`repro.shard.sync.ShardHost.advance`,
        which receives a whole window's worth of inbound mailbox
        messages in one call.  Times and priorities are normalised
        through one ``float64`` array pass (``tolist`` round-trips
        every float bit-exactly, so ordering is identical to repeated
        :meth:`push` calls), then either heap-pushed individually or —
        when the batch rivals the existing heap — appended and
        re-heapified in one O(n) pass.  The single-event :meth:`push`
        is deliberately untouched: per-event pushes from the simulator
        core must not pay any array overhead.
        """
        n = len(events)
        if n == 0:
            return
        times = np.fromiter(
            (event.time for event in events), dtype=np.float64, count=n,
        ).tolist()
        seq = self._seq
        self._seq = seq + n
        heap = self._heap
        keys = []
        append = keys.append
        for i, event in enumerate(events):
            event.seq = seq + i
            event._queue = self
            event.time = time = times[i]
            event._key = key = (time, event.priority, seq + i, event)
            append(key)
        if n * 4 >= len(heap):
            # Batch is a sizeable fraction of the heap: one O(n)
            # heapify beats n × O(log n) sift-ups.
            heap.extend(keys)
            heapify(heap)
        else:
            for key in keys:
                heappush(heap, key)
        self._live += n

    def _purge_cancelled_head(self) -> None:
        """Drop cancelled entries off the top of the heap.

        The single skip loop shared by :meth:`pop` and
        :meth:`peek_time` — the lazy-deletion half of
        :meth:`Event.cancel`.
        """
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heappop(heap)

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest live event, or ``None`` if empty."""
        self._purge_cancelled_head()
        heap = self._heap
        if not heap:
            return None
        event = heappop(heap)[3]
        event._queue = None
        self._live -= 1
        return event

    def peek_time(self) -> Optional[float]:
        """Timestamp of the earliest live event without removing it."""
        self._purge_cancelled_head()
        heap = self._heap
        return heap[0][0] if heap else None

    def cancel(self, event: Event) -> None:
        """Cancel *event* (it stays in the heap until popped/compacted).

        The one accounting point for cancellation: ``Event.cancel()``
        delegates here whenever the event is pending, so ``len(queue)``
        never drifts no matter which handle handler code cancels
        through. Cancelling an event that already ran (or was never
        pushed) only marks it and touches no counters.
        """
        if event.cancelled:
            return
        owner = event._queue
        if owner is not self:
            # Popped/never-pushed events just get flagged; an event
            # pending in another queue is routed to its owner so that
            # queue's live count stays right.
            if owner is None:
                event.cancelled = True
            else:
                owner.cancel(event)
            return
        event.cancelled = True
        self._live -= 1
        # Compact once cancelled entries dominate: with timeouts/hedging
        # cancelling en masse, lazy deletion alone lets dead events
        # outnumber live ones at saturation and every push/pop pays
        # log(dead) instead of log(live).
        dead = len(self._heap) - self._live
        if dead > _COMPACT_MIN_DEAD and dead > self._live:
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without cancelled entries.

        O(n); keys are untouched, so the ``(time, priority, seq)`` order
        of the surviving events is exactly preserved.
        """
        self._heap = [entry for entry in self._heap if not entry[3].cancelled]
        heapify(self._heap)

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def __iter__(self) -> Iterator[Event]:  # pragma: no cover - debug aid
        return iter(sorted(
            entry[3] for entry in self._heap if not entry[3].cancelled
        ))

    def clear(self) -> None:
        """Drop every pending event."""
        for entry in self._heap:
            entry[3]._queue = None
        self._heap.clear()
        self._live = 0

    def drain_until(self, time: float, sink: Callable[[Event], None]) -> None:
        """Pop every live event with ``event.time <= time`` into *sink*.

        Used by batch post-processing utilities and tests; the main loop
        in :class:`~repro.engine.simulator.Simulator` pops one event at a
        time so handlers may schedule new earlier work.
        """
        while True:
            next_time = self.peek_time()
            if next_time is None or next_time > time:
                return
            event = self.pop()
            assert event is not None
            sink(event)
