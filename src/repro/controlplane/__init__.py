"""A Kubernetes-style control plane running inside the simulation.

The missing platform layer: :mod:`repro.faults` breaks instances and
machines, :mod:`repro.resilience` masks failures per-request, and this
package *heals* the deployment — declared replica specs
(:class:`ReplicaSpec`), deterministic placement over failure domains
(:class:`Scheduler`), a reconcile loop that reschedules dead replicas
onto surviving machines with cold-start delay (:class:`ControlPlane`),
SLO-gated deploys (:class:`RollingUpdate`, :class:`CanaryRollout`),
and a horizontal autoscaler that requests capacity through the
controller (:class:`HorizontalAutoscaler`).

Everything here is opt-in: a world that never constructs a
:class:`ControlPlane` behaves bit-identically to one built before this
package existed.
"""

from .controller import ControlPlane
from .hpa import HorizontalAutoscaler
from .rollout import (
    IN_PROGRESS,
    ROLLED_BACK,
    ROLLED_OUT,
    CanaryRollout,
    RollingUpdate,
    RolloutResult,
)
from .scheduler import Scheduler
from .spec import (
    DOMAIN_LEVELS,
    PACK,
    SPREAD,
    PlacementPolicy,
    ReplicaSpec,
)

__all__ = [
    "CanaryRollout",
    "ControlPlane",
    "DOMAIN_LEVELS",
    "HorizontalAutoscaler",
    "IN_PROGRESS",
    "PACK",
    "PlacementPolicy",
    "ROLLED_BACK",
    "ROLLED_OUT",
    "ReplicaSpec",
    "RollingUpdate",
    "RolloutResult",
    "SPREAD",
    "Scheduler",
]
