"""Declarative replica specs: what the control plane keeps true.

A :class:`ReplicaSpec` is the simulated analogue of a Kubernetes
Deployment object: a desired replica count, the resources each replica
pins, a placement policy over the cluster's failure domains, and a
factory that materialises one replica. The control plane
(:class:`~repro.controlplane.ControlPlane`) owns the reconciliation
that keeps the live deployment matching the spec.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..errors import ConfigError

#: Placement strategies.
SPREAD = "spread"
PACK = "pack"

#: Failure-domain levels, innermost first.
DOMAIN_LEVELS = ("machine", "rack", "zone")


@dataclass(frozen=True)
class PlacementPolicy:
    """How replicas of one service distribute over the cluster.

    ``spread`` balances replicas across failure domains at *domain*
    granularity (fewest same-service replicas in the candidate's
    domain wins — machine kills then take out at most
    ``ceil(replicas / domains)`` of a tier). ``pack`` bin-packs onto
    the fullest machine that still fits, minimising the number of
    machines in use.
    """

    strategy: str = SPREAD
    domain: str = "machine"

    def __post_init__(self) -> None:
        if self.strategy not in (SPREAD, PACK):
            raise ConfigError(
                f"unknown placement strategy {self.strategy!r}; "
                f"expected {SPREAD!r} or {PACK!r}"
            )
        if self.domain not in DOMAIN_LEVELS:
            raise ConfigError(
                f"unknown failure-domain level {self.domain!r}; "
                f"expected one of {DOMAIN_LEVELS}"
            )


#: Builds one replica. Called as ``factory(name, machine, cores,
#: version)`` once the scheduler has reserved *cores* on *machine*;
#: must return a :class:`~repro.service.Microservice` constructed with
#: that exact core set, ``machine_name=machine.name``, and
#: ``tier=spec.service`` (the control plane registers it with the
#: deployment afterwards).
ReplicaFactory = Callable[..., object]


@dataclass
class ReplicaSpec:
    """Desired state for one service tier."""

    service: str
    replicas: int
    cores_per_replica: int
    factory: ReplicaFactory
    placement: PlacementPolicy = field(default_factory=PlacementPolicy)
    version: str = "v1"

    def __post_init__(self) -> None:
        if self.replicas < 1:
            raise ConfigError(
                f"spec {self.service!r}: replicas must be >= 1, "
                f"got {self.replicas}"
            )
        if self.cores_per_replica < 1:
            raise ConfigError(
                f"spec {self.service!r}: cores_per_replica must be >= 1, "
                f"got {self.cores_per_replica}"
            )
