"""The reconciling controller: desired state vs. live deployment.

A :class:`ControlPlane` runs *inside* the simulation on its own event
stream (monitor priority, like the SLO alerter), the way a Kubernetes
controller watches the API server rather than the packets. Each
reconcile cycle it compares every applied :class:`ReplicaSpec` against
the live deployment and closes the gap:

* **dead replicas** (state ``down`` — an instance crash or a machine
  fault) are retired, their cores released, and replacements scheduled
  onto surviving machines through the :class:`Scheduler`, paying a
  configurable **cold-start delay** before the new replica serves;
* **version drift** (a rollout changed ``spec.version``) is closed one
  replica at a time: surge a replacement running the new version, and
  once it is ready drain one stale replica — a rolling update with
  max-surge 1 / max-unavailable 0;
* **scale changes** (``set_replicas``, e.g. from the
  :class:`~repro.controlplane.HorizontalAutoscaler`) add replicas
  through the same cold-start path or gracefully drain the newest
  ones, which retire only once idle — no request is abandoned by a
  scale-down;
* **canary cohorts** (surge replicas added by a
  :class:`~repro.controlplane.CanaryRollout`) live outside the desired
  count until promoted or rolled back.

Every action lands in :attr:`ControlPlane.events` as a
:class:`~repro.telemetry.tracing.SpanEvent` and, when a
:class:`~repro.telemetry.metrics.MetricsRegistry` is attached, in
labelled counters/gauges. The controller draws no randomness — ties
break on deterministic ordering — so control-plane runs reproduce
exactly, and a world without a control plane never touches this module.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..engine import PRIORITY_MONITOR, Simulator
from ..errors import ConfigError, SchedulingError, TopologyError
from ..hardware import Cluster
from ..service.microservice import STATE_DOWN, STATE_DRAINING, STATE_UP
from ..telemetry.metrics import MetricsRegistry
from ..telemetry.tracing import SpanEvent
from ..topology import Deployment
from .scheduler import Scheduler
from .spec import ReplicaSpec


class _Pending:
    """One replica between placement decision and cold-start finish."""

    __slots__ = ("name", "service", "machine", "cores", "version",
                 "factory", "surge", "event")

    def __init__(self, name, service, machine, cores, version, factory,
                 surge, event=None):
        self.name = name
        self.service = service
        self.machine = machine
        self.cores = cores
        self.version = version
        self.factory = factory
        self.surge = surge
        self.event = event


class ControlPlane:
    """Keeps the live deployment converged on the applied specs."""

    def __init__(
        self,
        sim: Simulator,
        cluster: Cluster,
        deployment: Deployment,
        reconcile_interval: float = 0.05,
        cold_start: float = 0.1,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if reconcile_interval <= 0:
            raise ConfigError(
                f"reconcile_interval must be > 0, got {reconcile_interval!r}"
            )
        if cold_start < 0:
            raise ConfigError(f"cold_start must be >= 0, got {cold_start!r}")
        self.sim = sim
        self.cluster = cluster
        self.deployment = deployment
        self.reconcile_interval = reconcile_interval
        self.cold_start = cold_start
        self.metrics = metrics
        self.scheduler = Scheduler(cluster)

        self._specs: Dict[str, ReplicaSpec] = {}
        self._desired: Dict[str, int] = {}
        self._ordinals: Dict[str, int] = {}
        self._versions: Dict[str, str] = {}  # instance name -> version
        self._pending: Dict[str, List[_Pending]] = {}
        self._surge: Dict[str, Set[str]] = {}  # canary cohort names
        self._draining: Set[str] = set()
        self._replacements_owed: Dict[str, int] = {}

        #: Controller action log (SpanEvents on the simulated timeline).
        self.events: List[SpanEvent] = []
        self.reconciles = 0
        self.placements = 0
        self.reschedules = 0
        self.retirements = 0
        self.pending_placements = 0  # scheduling failures (retried)
        self._started = False
        self.stop_at: Optional[float] = None

    # Event/metric plumbing ----------------------------------------------

    def _event(self, name: str, **attrs) -> None:
        self.events.append(SpanEvent(self.sim.now, name, attrs))

    def _count(self, metric: str, **labels) -> None:
        if self.metrics is not None:
            self.metrics.counter(metric, **labels).inc()

    def _gauge(self, metric: str, value: float, **labels) -> None:
        if self.metrics is not None:
            self.metrics.gauge(metric, **labels).set(value)

    # Spec management ----------------------------------------------------

    def apply(self, spec: ReplicaSpec) -> List[str]:
        """Register *spec* and place its replicas immediately (initial
        deploys happen before traffic, so no cold-start delay). Returns
        the created replica names."""
        if spec.service in self._specs:
            raise ConfigError(
                f"service {spec.service!r} already has a spec; "
                "use set_replicas/set_version to change it"
            )
        self._specs[spec.service] = spec
        self._desired[spec.service] = spec.replicas
        self._pending[spec.service] = []
        self._surge[spec.service] = set()
        names = []
        for _ in range(spec.replicas):
            names.append(self._create_now(spec))
        self._event(
            "apply", service=spec.service, replicas=spec.replicas,
            version=spec.version, placement=spec.placement.strategy,
        )
        return names

    def spec(self, service: str) -> ReplicaSpec:
        try:
            return self._specs[service]
        except KeyError:
            raise ConfigError(
                f"no spec applied for service {service!r}; "
                f"applied: {sorted(self._specs)}"
            ) from None

    def set_replicas(self, service: str, count: int) -> None:
        """Change the desired replica count (the HPA's entry point);
        the next reconcile closes the gap."""
        spec = self.spec(service)
        if count < 1:
            raise ConfigError(f"replicas must be >= 1, got {count}")
        if count == self._desired[service]:
            return
        self._event(
            "scale", service=service,
            from_replicas=self._desired[service], to_replicas=count,
        )
        self._count("controlplane_scale_events_total", service=service)
        self._desired[service] = count

    def set_version(self, service: str, version: str, factory=None) -> None:
        """Declare a new target version (rolling update): the
        reconciler replaces stale replicas one at a time."""
        spec = self.spec(service)
        if factory is not None:
            spec.factory = factory
        if version == spec.version:
            return
        self._event(
            "rollout", service=service,
            from_version=spec.version, to_version=version,
        )
        self._count("controlplane_rollouts_total", service=service)
        spec.version = version

    # Introspection ------------------------------------------------------

    def desired(self, service: str) -> int:
        return self._desired[service]

    def _live(self, service: str) -> List:
        """Registered replicas, or [] before the first one lands."""
        try:
            return list(self.deployment.instances(service))
        except TopologyError:
            return []

    def managed_replicas(self, service: str) -> List:
        """Live (registered) replicas of *service*, canaries included."""
        return self._live(service)

    def ready_replicas(self, service: str) -> List:
        """Live replicas in state ``up``, excluding the canary cohort."""
        surge = self._surge.get(service, set())
        return [
            r
            for r in self._live(service)
            if r.state == STATE_UP and r.name not in surge
        ]

    def versions(self, service: str) -> Dict[str, str]:
        """Version of every live replica (canaries included)."""
        return {
            r.name: self._versions.get(r.name, "")
            for r in self._live(service)
        }

    def version_of(self, name: str) -> str:
        return self._versions.get(name, "")

    # Canary cohort (used by CanaryRollout) ------------------------------

    def add_canaries(
        self, service: str, version: str, factory, count: int = 1
    ) -> List[str]:
        """Surge *count* replicas of a candidate *version* next to the
        stable set (cold-start applies). They take their traffic share
        through the tier's balancer but never count against the desired
        replicas until promoted."""
        spec = self.spec(service)
        names = []
        for _ in range(count):
            pending = self._begin_start(
                spec, version=version, factory=factory, surge=True
            )
            if pending is not None:
                names.append(pending.name)
        return names

    def canary_names(self, service: str) -> Set[str]:
        return set(self._surge.get(service, set()))

    def canary_instances(self, service: str) -> List:
        surge = self._surge.get(service, set())
        return [
            r for r in self._live(service) if r.name in surge
        ]

    def remove_canaries(self, service: str) -> None:
        """Roll the canary cohort back: cancel the ones still cold-
        starting, drain the live ones (they retire once idle)."""
        surge = self._surge.get(service, set())
        for pending in list(self._pending.get(service, [])):
            if pending.surge:
                self._cancel_pending(pending)
        for inst in self.canary_instances(service):
            if inst.state == STATE_UP:
                inst.start_draining()
                self._draining.add(inst.name)
                self._event("drain", service=service, replica=inst.name,
                            reason="canary_rollback")
        self._count("controlplane_rollbacks_total", service=service)

    def promote_canaries(self, service: str) -> None:
        """Fold the canary cohort into the stable set: its replicas now
        count toward desired, and the reconciler's rolling step replaces
        the remaining stale-version replicas."""
        self._surge.get(service, set()).clear()

    # Replica lifecycle ---------------------------------------------------

    def _next_name(self, service: str) -> str:
        ordinal = self._ordinals.get(service, 0)
        self._ordinals[service] = ordinal + 1
        return f"{service}-{ordinal}"

    def _occupied_machines(self, service: str) -> List[str]:
        """Machines hosting live or pending replicas of *service*."""
        occupied = [
            r.machine_name
            for r in self._live(service)
            if r.state != STATE_DOWN
        ]
        occupied.extend(p.machine.name for p in self._pending[service])
        return occupied

    def _create_now(self, spec: ReplicaSpec) -> str:
        """Place and materialise one replica synchronously (initial
        deploy)."""
        name = self._next_name(spec.service)
        machine = self.scheduler.place(
            spec, self._occupied_machines(spec.service)
        )
        cores = machine.allocate(name, spec.cores_per_replica)
        instance = spec.factory(name, machine, cores, spec.version)
        self.deployment.add_instance(instance)
        self._versions[name] = spec.version
        self.placements += 1
        self._count("controlplane_placements_total", service=spec.service)
        self._event(
            "place", service=spec.service, replica=name,
            machine=machine.name, version=spec.version,
        )
        return name

    def _begin_start(
        self, spec: ReplicaSpec, version: str, factory, surge: bool
    ) -> Optional[_Pending]:
        """Reserve cores now, materialise after the cold-start delay.
        Returns ``None`` when nothing schedulable fits (retried next
        reconcile)."""
        try:
            machine = self.scheduler.place(
                spec, self._occupied_machines(spec.service)
            )
        except SchedulingError as exc:
            self.pending_placements += 1
            self._count(
                "controlplane_unschedulable_total", service=spec.service
            )
            self._event(
                "unschedulable", service=spec.service, reason=str(exc)
            )
            return None
        name = self._next_name(spec.service)
        cores = machine.allocate(name, spec.cores_per_replica)
        pending = _Pending(
            name, spec.service, machine, cores, version, factory, surge
        )
        pending.event = self.sim.schedule(
            self.cold_start, self._finish_start, pending,
            priority=PRIORITY_MONITOR,
        )
        self._pending[spec.service].append(pending)
        self.placements += 1
        owed = self._replacements_owed.get(spec.service, 0)
        if owed > 0 and not surge:
            self._replacements_owed[spec.service] = owed - 1
            self.reschedules += 1
            self._count(
                "controlplane_reschedules_total", service=spec.service
            )
        self._count("controlplane_placements_total", service=spec.service)
        self._event(
            "place", service=spec.service, replica=name,
            machine=machine.name, version=version, surge=surge,
            cold_start=self.cold_start,
        )
        return pending

    def _finish_start(self, pending: _Pending) -> None:
        """Cold start over: build and register the replica — unless its
        machine failed while it was starting."""
        self._pending[pending.service].remove(pending)
        if not pending.machine.up:
            pending.machine.release(pending.name)
            self._event(
                "start_aborted", service=pending.service,
                replica=pending.name, machine=pending.machine.name,
            )
            return
        instance = pending.factory(
            pending.name, pending.machine, pending.cores, pending.version
        )
        self.deployment.add_instance(instance)
        self._versions[pending.name] = pending.version
        if pending.surge:
            self._surge[pending.service].add(pending.name)
        self._event(
            "ready", service=pending.service, replica=pending.name,
            machine=pending.machine.name, version=pending.version,
            surge=pending.surge,
        )

    def _cancel_pending(self, pending: _Pending) -> None:
        self._pending[pending.service].remove(pending)
        self.sim.cancel(pending.event)
        pending.machine.release(pending.name)
        self._event(
            "start_cancelled", service=pending.service, replica=pending.name
        )

    def _retire(self, instance, reason: str) -> None:
        self.deployment.remove_instance(instance.name)
        self._draining.discard(instance.name)
        for surge in self._surge.values():
            surge.discard(instance.name)
        machine = self.cluster.machine(instance.machine_name)
        machine.release(instance.name)
        self.retirements += 1
        self._count(
            "controlplane_retirements_total", service=instance.tier
        )
        self._event(
            "retire", service=instance.tier, replica=instance.name,
            machine=instance.machine_name, reason=reason,
        )

    # Reconciliation ------------------------------------------------------

    def start(self, stop_at: Optional[float] = None) -> "ControlPlane":
        """Schedule the reconcile loop (monitor priority — the
        controller sees each timestamp's completions and faults, like
        the SLO alerter)."""
        if self._started:
            raise ConfigError("ControlPlane already started")
        self._started = True
        self.stop_at = stop_at
        self.sim.schedule(
            self.reconcile_interval, self._cycle, priority=PRIORITY_MONITOR
        )
        return self

    def _cycle(self) -> None:
        if self.stop_at is not None and self.sim.now > self.stop_at:
            return
        self.sim.schedule(
            self.reconcile_interval, self._cycle, priority=PRIORITY_MONITOR
        )
        self.reconciles += 1
        for service in sorted(self._specs):
            self._reconcile_service(service)

    def _reconcile_service(self, service: str) -> None:
        spec = self._specs[service]
        desired = self._desired[service]
        surge_names = self._surge[service]

        # 1. Dead replicas: retire and release, but never empty the tier
        #    (the balancer needs >= 1 registered instance to fast-fail
        #    against) — the last corpse waits for its replacement.
        replicas = self._live(service)
        for inst in [r for r in replicas if r.state == STATE_DOWN]:
            if inst.name not in self._draining:
                # Newly-observed death -> owe a replacement (canaries
                # excluded: their cohort is managed by the rollout).
                if inst.name not in surge_names:
                    self._replacements_owed[service] = (
                        self._replacements_owed.get(service, 0) + 1
                    )
                self._draining.add(inst.name)  # counted once
            if len(self._live(service)) > 1:
                self._retire(inst, reason="dead")

        live = self._live(service)
        ready = [
            r
            for r in live
            if r.state == STATE_UP and r.name not in surge_names
        ]
        pending_regular = [p for p in self._pending[service] if not p.surge]

        # 2. Missing replicas: schedule cold starts on surviving
        #    machines.
        missing = desired - len(ready) - len(pending_regular)
        # Stale replicas still serve while their replacement starts, so
        # they soften the gap — but dead/draining ones do not.
        for _ in range(missing):
            if self._begin_start(
                spec, spec.version, spec.factory, surge=False
            ) is None:
                break  # unschedulable now; retry next cycle

        # 3. Rolling update: when at strength, surge one replacement for
        #    one stale replica at a time.
        stale = [
            r for r in ready if self._versions.get(r.name) != spec.version
        ]
        if stale and missing <= 0 and not pending_regular:
            if len(ready) - desired <= 0:  # no surge in flight yet
                self._begin_start(
                    spec, spec.version, spec.factory, surge=False
                )

        # 4. Surplus: drain stale versions first, then newest ordinals.
        surplus = len(ready) - desired
        if surplus > 0:
            def drain_rank(inst):
                is_current = self._versions.get(inst.name) == spec.version
                return (is_current, -self._ordinal_of(inst.name))

            for inst in sorted(ready, key=drain_rank)[:surplus]:
                inst.start_draining()
                self._draining.add(inst.name)
                self._event(
                    "drain", service=service, replica=inst.name,
                    reason="stale_version"
                    if self._versions.get(inst.name) != spec.version
                    else "scale_down",
                )

        # 5. Draining replicas retire once idle (no queued, running, or
        #    dispatcher-tracked in-flight work); same never-empty guard
        #    as the dead path.
        for inst in [r for r in live if r.state == STATE_DRAINING]:
            if (
                inst.pending_dispatch == 0
                and inst.queued_jobs == 0
                and not inst._running
                and len(self._live(service)) > 1
            ):
                self._retire(inst, reason="drained")

        self._gauge(
            "controlplane_desired_replicas", desired, service=service
        )
        self._gauge(
            "controlplane_ready_replicas",
            len(self.ready_replicas(service)),
            service=service,
        )

    def _ordinal_of(self, name: str) -> int:
        try:
            return int(name.rsplit("-", 1)[1])
        except (IndexError, ValueError):
            return -1

    def __repr__(self) -> str:
        return (
            f"<ControlPlane services={sorted(self._specs)} "
            f"reconciles={self.reconciles} placements={self.placements}>"
        )
