"""The horizontal autoscaler: registry metrics in, replica counts out.

The original :class:`~repro.scaling.AutoScaler` flips an active set
inside a fixed replica pool — capacity exists either way, only routing
changes. This HPA is the control-plane recast: it measures the managed
cohort's core utilisation over each decision window, publishes the
observation to the metrics registry, and requests a replica count
*through* :meth:`~repro.controlplane.ControlPlane.set_replicas` — so
scale-ups pay placement + cold start and scale-downs drain gracefully,
exactly like an operator-driven ``kubectl scale``.

Scaling follows the Kubernetes HPA formula::

    desired = ceil(current_ready * observed_utilisation / target)

clamped to ``[min_replicas, max_replicas]``, with an optional SLO
override: while an attached monitor is in breach, the HPA adds one
replica per cycle and never scales down (the same
breach-outranks-utilisation rule the active-set scaler uses).
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from ..engine import PRIORITY_MONITOR, Simulator
from ..errors import ConfigError
from ..telemetry.slo import SLOMonitor
from .controller import ControlPlane


class HorizontalAutoscaler:
    """Scales one service's replica count through the control plane."""

    def __init__(
        self,
        control_plane: ControlPlane,
        service: str,
        target_utilization: float = 0.6,
        min_replicas: int = 1,
        max_replicas: int = 8,
        decision_interval: float = 0.5,
        tolerance: float = 0.1,
        slo_monitor: Optional[SLOMonitor] = None,
    ) -> None:
        """*tolerance* is the HPA's deadband: no scaling while
        ``observed / target`` is within ``1 ± tolerance`` (Kubernetes
        defaults to 10%), which keeps the loop from flapping around the
        setpoint."""
        if not 0.0 < target_utilization <= 1.0:
            raise ConfigError(
                f"target_utilization must be in (0, 1], "
                f"got {target_utilization!r}"
            )
        if min_replicas < 1 or max_replicas < min_replicas:
            raise ConfigError(
                f"need 1 <= min_replicas <= max_replicas, got "
                f"{min_replicas}..{max_replicas}"
            )
        if decision_interval <= 0:
            raise ConfigError(
                f"decision_interval must be > 0, got {decision_interval!r}"
            )
        self.cp = control_plane
        self.sim: Simulator = control_plane.sim
        self.service = service
        self.target_utilization = target_utilization
        self.min_replicas = min_replicas
        self.max_replicas = max_replicas
        self.decision_interval = decision_interval
        self.tolerance = tolerance
        self.slo_monitor = slo_monitor

        self.decisions = 0
        self.scale_ups = 0
        self.scale_downs = 0
        self.slo_scale_ups = 0
        self._last_time: Optional[float] = None
        self._last_busy: Dict[str, float] = {}
        self._started = False

    def start(self, stop_at: Optional[float] = None) -> "HorizontalAutoscaler":
        if self._started:
            raise ConfigError("HorizontalAutoscaler already started")
        self._started = True
        self.stop_at = stop_at
        self._last_time = self.sim.now
        self._snapshot_busy()
        self.sim.schedule(
            self.decision_interval, self._cycle, priority=PRIORITY_MONITOR
        )
        return self

    # Measurement ---------------------------------------------------------

    def _busy_of(self, replica) -> float:
        now = self.sim.now
        busy = 0.0
        for core in replica.cores.cores:
            busy += core.busy_time
            if core.busy and core._busy_since is not None:
                busy += now - core._busy_since
        return busy

    def _snapshot_busy(self) -> None:
        for replica in self.cp.ready_replicas(self.service):
            self._last_busy[replica.name] = self._busy_of(replica)

    def observed_utilization(self) -> float:
        """Mean core utilisation of the ready cohort over the window
        just ended (replicas that appeared mid-window count from their
        first sighting)."""
        now = self.sim.now
        since = self._last_time if self._last_time is not None else now
        window = now - since
        if window <= 0:
            return 0.0
        utils = []
        for replica in self.cp.ready_replicas(self.service):
            busy = self._busy_of(replica)
            previous = self._last_busy.get(replica.name)
            if previous is not None:
                utils.append(
                    (busy - previous) / (window * len(replica.cores))
                )
        return float(sum(utils) / len(utils)) if utils else 0.0

    # Decision loop -------------------------------------------------------

    def _cycle(self) -> None:
        if self.stop_at is not None and self.sim.now > self.stop_at:
            return
        self.sim.schedule(
            self.decision_interval, self._cycle, priority=PRIORITY_MONITOR
        )
        self.decisions += 1
        observed = self.observed_utilization()
        current = max(1, len(self.cp.ready_replicas(self.service)))
        self._snapshot_busy()
        self._last_time = self.sim.now

        if self.cp.metrics is not None:
            self.cp.metrics.gauge(
                "hpa_observed_utilization", service=self.service
            ).set(observed)

        slo_burning = self.slo_monitor is not None and any(
            state.breached for state in self.slo_monitor.states
        )
        desired = self.cp.desired(self.service)
        if slo_burning:
            proposed = min(self.max_replicas, desired + 1)
            if proposed > desired:
                self.slo_scale_ups += 1
        else:
            ratio = observed / self.target_utilization
            if abs(ratio - 1.0) <= self.tolerance:
                proposed = desired
            else:
                proposed = min(
                    self.max_replicas,
                    max(self.min_replicas, math.ceil(current * ratio)),
                )
        if proposed != desired:
            if proposed > desired:
                self.scale_ups += 1
            else:
                self.scale_downs += 1
            self.cp.set_replicas(self.service, proposed)
        if self.cp.metrics is not None:
            self.cp.metrics.gauge(
                "hpa_desired_replicas", service=self.service
            ).set(self.cp.desired(self.service))

    def __repr__(self) -> str:
        return (
            f"<HorizontalAutoscaler {self.service} "
            f"decisions={self.decisions} ups={self.scale_ups} "
            f"downs={self.scale_downs}>"
        )
