"""Deploy strategies: rolling updates and SLO-gated canaries.

Both strategies drive the :class:`~repro.controlplane.ControlPlane`
rather than mutating the deployment directly, so every replica they
touch pays real placement and cold-start costs and lands in the
controller's action log.

:class:`RollingUpdate` declares the new version and watches the
reconciler replace stale replicas one at a time (max-surge 1).

:class:`CanaryRollout` is the risk-managed path: surge a canary cohort
running the candidate version, point a dedicated
:class:`~repro.telemetry.slo.SLOMonitor` at *only* the canary cohort's
completions, and gate on its burn rate — a breach rolls the cohort
back automatically (the stable version never changed), while a clean
observation window promotes the candidate into a rolling update of the
remaining replicas.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..engine import PRIORITY_MONITOR, Simulator
from ..errors import ConfigError
from ..service.microservice import STATE_UP
from ..telemetry.slo import ALERT_BREACH, SLO, SLOAlert, SLOMonitor
from .controller import ControlPlane

#: Terminal rollout states.
ROLLED_OUT = "rolled_out"
ROLLED_BACK = "rolled_back"
IN_PROGRESS = "in_progress"


@dataclass
class RolloutResult:
    """What a deploy strategy did, for manifests and assertions."""

    strategy: str
    service: str
    from_version: str
    to_version: str
    state: str = IN_PROGRESS
    decided_at: Optional[float] = None
    breaches: int = 0
    #: replica name -> version at the end of the rollout.
    final_versions: Dict[str, str] = field(default_factory=dict)

    @property
    def rolled_back(self) -> bool:
        return self.state == ROLLED_BACK

    @property
    def succeeded(self) -> bool:
        return self.state == ROLLED_OUT


class RollingUpdate:
    """Replace every replica of a service with a new version, one
    surge replacement at a time, with no SLO gate."""

    def __init__(
        self,
        control_plane: ControlPlane,
        service: str,
        version: str,
        factory=None,
        check_interval: float = 0.05,
    ) -> None:
        self.cp = control_plane
        self.service = service
        self.version = version
        self.factory = factory
        self.check_interval = check_interval
        self.result = RolloutResult(
            strategy="rolling",
            service=service,
            from_version=control_plane.spec(service).version,
            to_version=version,
        )
        self._started = False

    def start(self) -> "RollingUpdate":
        if self._started:
            raise ConfigError("rollout already started")
        self._started = True
        self.cp.set_version(self.service, self.version, factory=self.factory)
        self.cp.sim.schedule(
            self.check_interval, self._check, priority=PRIORITY_MONITOR
        )
        return self

    def _check(self) -> None:
        versions = self.cp.versions(self.service)
        ready = self.cp.ready_replicas(self.service)
        done = (
            len(ready) >= self.cp.desired(self.service)
            and all(
                versions.get(r.name) == self.version for r in ready
            )
            and len(versions) == len(ready)  # nothing still draining
        )
        if done:
            self.result.state = ROLLED_OUT
            self.result.decided_at = self.cp.sim.now
            self.result.final_versions = versions
            return
        self.cp.sim.schedule(
            self.check_interval, self._check, priority=PRIORITY_MONITOR
        )


class CanaryRollout:
    """Surge a canary cohort, gate on its SLO burn rate, then promote
    or roll back.

    Phases (all on the simulated timeline):

    1. **surge** — ``canary_replicas`` replicas of the candidate
       version join the tier through the control plane (placement +
       cold start), taking their proportional traffic share;
    2. **observe** — a dedicated :class:`SLOMonitor` sees only the
       canary cohort's completions (per-instance ``on_job_complete``
       hooks feed service latencies). An
       :data:`~repro.telemetry.slo.ALERT_BREACH` transition triggers
       **rollback**: the cohort drains out and the stable version keeps
       serving, untouched;
    3. **promote** — a clean ``observe_for`` window promotes the
       candidate: the cohort folds into the stable set and the
       reconciler rolls the remaining replicas to the new version.
    """

    def __init__(
        self,
        control_plane: ControlPlane,
        service: str,
        version: str,
        factory,
        slos: Sequence[SLO],
        canary_replicas: int = 1,
        observe_for: float = 1.0,
        check_interval: float = 0.05,
        min_samples: int = 20,
    ) -> None:
        if canary_replicas < 1:
            raise ConfigError(
                f"canary_replicas must be >= 1, got {canary_replicas}"
            )
        if observe_for <= 0:
            raise ConfigError(
                f"observe_for must be > 0, got {observe_for!r}"
            )
        self.cp = control_plane
        self.sim: Simulator = control_plane.sim
        self.service = service
        self.version = version
        self.factory = factory
        self.canary_replicas = canary_replicas
        self.observe_for = observe_for
        self.check_interval = check_interval
        self.monitor = SLOMonitor(
            self.sim,
            list(slos),
            registry=control_plane.metrics,
            interval=check_interval,
            min_samples=min_samples,
        )
        self.monitor.listeners.append(self._on_alert)
        self.result = RolloutResult(
            strategy="canary",
            service=service,
            from_version=control_plane.spec(service).version,
            to_version=version,
        )
        self._started = False
        self._observing_since: Optional[float] = None
        self._hooked: set = set()

    # Lifecycle -----------------------------------------------------------

    def start(self) -> "CanaryRollout":
        if self._started:
            raise ConfigError("rollout already started")
        self._started = True
        self.cp._event(
            "canary_start", service=self.service, version=self.version,
            replicas=self.canary_replicas,
        )
        self.cp.add_canaries(
            self.service, self.version, self.factory, self.canary_replicas
        )
        self.sim.schedule(
            self.check_interval, self._check, priority=PRIORITY_MONITOR
        )
        return self

    def _hook_cohort(self) -> List:
        """Feed each live canary's completions into the monitor (once
        per replica)."""
        cohort = self.cp.canary_instances(self.service)
        for inst in cohort:
            if inst.name in self._hooked:
                continue
            self._hooked.add(inst.name)
            inst.on_job_complete(
                lambda job: self.monitor.observe(
                    self.sim.now, job.service_latency, ok=True
                )
            )
        return cohort

    def _check(self) -> None:
        if self.result.state != IN_PROGRESS:
            return
        cohort = self._hook_cohort()
        live = [r for r in cohort if r.state == STATE_UP]
        if self._observing_since is None:
            if len(live) >= self.canary_replicas:
                # Cohort fully up: the observation clock starts.
                self._observing_since = self.sim.now
                self.monitor.start(stop_at=None)
                self.cp._event(
                    "canary_observing", service=self.service,
                    version=self.version, cohort=sorted(self._hooked),
                )
        elif self.sim.now - self._observing_since >= self.observe_for:
            self._promote()
            return
        self.sim.schedule(
            self.check_interval, self._check, priority=PRIORITY_MONITOR
        )

    # Verdicts ------------------------------------------------------------

    def _on_alert(self, alert: SLOAlert) -> None:
        if alert.kind != ALERT_BREACH:
            return
        self.result.breaches += 1
        if self.result.state == IN_PROGRESS:
            self._rollback(alert)

    def _rollback(self, alert: SLOAlert) -> None:
        self.result.state = ROLLED_BACK
        self.result.decided_at = self.sim.now
        self.cp._event(
            "canary_rollback", service=self.service, version=self.version,
            slo=alert.slo, burn_rate=alert.burn_rate,
            severity=alert.severity,
        )
        self.cp.remove_canaries(self.service)
        # Snapshot the versions still serving (the draining cohort is
        # on its way out and does not count).
        self._snapshot_final()

    def _promote(self) -> None:
        self.result.state = ROLLED_OUT
        self.result.decided_at = self.sim.now
        self.cp._event(
            "canary_promote", service=self.service, version=self.version
        )
        self.cp.promote_canaries(self.service)
        self.cp.set_version(self.service, self.version, factory=self.factory)
        # The reconciler still has to roll the stale stable replicas;
        # keep refreshing the snapshot until the fleet converges so
        # final_versions reports what actually survived.
        self._snapshot_final()
        self.sim.schedule(
            self.check_interval, self._watch_roll, priority=PRIORITY_MONITOR
        )

    def _snapshot_final(self) -> None:
        self.result.final_versions = {
            r.name: self.cp.version_of(r.name)
            for r in self.cp.ready_replicas(self.service)
        }

    def _watch_roll(self) -> None:
        self._snapshot_final()
        versions = set(self.result.final_versions.values())
        done = (
            versions == {self.version}
            and len(self.result.final_versions)
            >= self.cp.desired(self.service)
        )
        if not done:
            self.sim.schedule(
                self.check_interval, self._watch_roll,
                priority=PRIORITY_MONITOR,
            )
