"""Placement: choosing a machine for each replica.

The scheduler is a deterministic bin-packer over the cluster's
schedulable machines (failed machines are skipped). Feasibility is
free-core driven — a candidate must hold ``cores_per_replica``
unallocated cores — and the placement policy ranks the feasible set:

* ``spread``: fewest same-service replicas in the candidate's failure
  domain (machine / rack / zone), ties broken by most free cores, then
  cluster insertion order;
* ``pack``: fewest free cores that still fit (fullest-first), ties
  broken by cluster insertion order.

No randomness anywhere: identical cluster state always yields the
identical placement, which is what keeps control-plane runs
reproducible across seeds.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..errors import SchedulingError
from ..hardware import Cluster, Machine
from .spec import PACK, ReplicaSpec


class Scheduler:
    """Deterministic replica placement over a :class:`Cluster`."""

    def __init__(self, cluster: Cluster) -> None:
        self.cluster = cluster

    def place(
        self, spec: ReplicaSpec, occupied_machines: Sequence[str]
    ) -> Machine:
        """Choose the machine for one new replica of *spec*.

        *occupied_machines* lists the machine of every live or pending
        replica of the service (repeats allowed) — the spread policy
        counts them per failure domain.

        Raises :class:`~repro.errors.SchedulingError` when no
        schedulable machine fits; the reconciler treats that replica as
        *pending* and retries next cycle.
        """
        candidates = [
            m
            for m in self.cluster.up_machines
            if m.unallocated_cores >= spec.cores_per_replica
        ]
        if not candidates:
            raise SchedulingError(
                f"no schedulable machine has {spec.cores_per_replica} free "
                f"core(s) for service {spec.service!r} "
                f"({len(self.cluster.up_machines)} of {len(self.cluster)} "
                f"machines up)"
            )
        if spec.placement.strategy == PACK:
            return min(candidates, key=lambda m: m.unallocated_cores)

        # Spread: count existing replicas per failure domain.
        level = spec.placement.domain
        load: Dict[str, int] = {}
        for name in occupied_machines:
            domain = self.cluster.domain_of(self.cluster.machine(name), level)
            load[domain] = load.get(domain, 0) + 1

        def rank(machine: Machine):
            domain = self.cluster.domain_of(machine, level)
            return (load.get(domain, 0), -machine.unallocated_cores)

        return min(candidates, key=rank)

    def feasible_replicas(self, spec: ReplicaSpec) -> int:
        """How many more replicas of *spec* the cluster could hold right
        now (capacity planning / test introspection)."""
        return sum(
            m.unallocated_cores // spec.cores_per_replica
            for m in self.cluster.up_machines
        )
