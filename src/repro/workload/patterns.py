"""Load patterns: offered load (QPS) as a function of time.

``client.json`` (paper Table I) describes the "input load pattern". The
power-management study drives the 2-tier application "with a diurnal
input load" (Fig 15) — :class:`DiurnalPattern` reproduces that shape;
:class:`ConstantLoad` serves the load-latency sweeps, and
:class:`StepPattern` expresses arbitrary piecewise-constant traces.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from ..errors import WorkloadError


class LoadPattern:
    """Interface: offered load in requests/second at time *t*."""

    def rate(self, t: float) -> float:  # pragma: no cover - interface
        raise NotImplementedError

    def max_rate(self) -> float:  # pragma: no cover - interface
        """Upper bound on the rate (used to size warmup and buffers)."""
        raise NotImplementedError


class ConstantLoad(LoadPattern):
    """Fixed offered load — the paper's load-latency sweep points."""

    def __init__(self, qps: float) -> None:
        if qps <= 0:
            raise WorkloadError(f"load must be > 0 QPS, got {qps!r}")
        self.qps = float(qps)

    def rate(self, t: float) -> float:
        return self.qps

    def max_rate(self) -> float:
        return self.qps

    def __repr__(self) -> str:
        return f"ConstantLoad({self.qps:g} QPS)"


class DiurnalPattern(LoadPattern):
    """Smooth day/night fluctuation (paper Fig 15).

    A raised-cosine between *low* and *high* QPS with the given
    *period*: rate(0) = low, rate(period/2) = high. *phase* shifts the
    trough (seconds).
    """

    def __init__(
        self,
        low: float,
        high: float,
        period: float,
        phase: float = 0.0,
    ) -> None:
        if low <= 0 or high <= 0:
            raise WorkloadError("diurnal rates must be positive")
        if high < low:
            raise WorkloadError(f"high ({high!r}) must be >= low ({low!r})")
        if period <= 0:
            raise WorkloadError(f"period must be > 0, got {period!r}")
        self.low = float(low)
        self.high = float(high)
        self.period = float(period)
        self.phase = float(phase)

    def rate(self, t: float) -> float:
        cycle = 2.0 * math.pi * (t - self.phase) / self.period
        return self.low + (self.high - self.low) * 0.5 * (1.0 - math.cos(cycle))

    def max_rate(self) -> float:
        return self.high

    def __repr__(self) -> str:
        return (
            f"DiurnalPattern({self.low:g}-{self.high:g} QPS, "
            f"period={self.period:g}s)"
        )


class StepPattern(LoadPattern):
    """Piecewise-constant load from (start_time, qps) breakpoints."""

    def __init__(self, steps: Sequence[Tuple[float, float]]) -> None:
        if not steps:
            raise WorkloadError("StepPattern needs at least one step")
        ordered: List[Tuple[float, float]] = sorted(
            (float(t), float(q)) for t, q in steps
        )
        if ordered[0][0] > 0:
            raise WorkloadError(
                f"first step must start at t<=0, got {ordered[0][0]!r}"
            )
        if any(q <= 0 for _, q in ordered):
            raise WorkloadError("step rates must be positive")
        self.steps = ordered

    def rate(self, t: float) -> float:
        current = self.steps[0][1]
        for start, qps in self.steps:
            if t >= start:
                current = qps
            else:
                break
        return current

    def max_rate(self) -> float:
        return max(q for _, q in self.steps)

    def __repr__(self) -> str:
        return f"StepPattern({len(self.steps)} steps, peak={self.max_rate():g})"
