"""Request-type mixes and payload sizes.

The 2-tier validation sends requests whose "value sizes are
exponentially distributed" (paper SSIV-A); memcached distinguishes read
and write paths; the social network serves different RPC types. A
:class:`RequestMix` couples type names, their probabilities, and a
per-type payload-size distribution.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple, Union

import numpy as np

from ..distributions import Deterministic, Distribution
from ..errors import WorkloadError


class RequestType:
    """One request class: name, weight, and payload size distribution."""

    def __init__(
        self,
        name: str,
        weight: float,
        size: Union[float, Distribution, None] = None,
    ) -> None:
        if not name:
            raise WorkloadError("request type needs a name")
        if weight < 0:
            raise WorkloadError(f"weight must be >= 0, got {weight!r}")
        self.name = name
        self.weight = float(weight)
        if size is None:
            self.size: Distribution = Deterministic(0.0)
        elif isinstance(size, Distribution):
            self.size = size
        else:
            self.size = Deterministic(float(size))

    def __repr__(self) -> str:
        return f"RequestType({self.name!r}, w={self.weight:g})"


class RequestMix:
    """Weighted mix of request types."""

    def __init__(self, types: Sequence[RequestType]) -> None:
        if not types:
            raise WorkloadError("request mix needs at least one type")
        names = [t.name for t in types]
        if len(set(names)) != len(names):
            raise WorkloadError(f"duplicate request type names in {names}")
        total = sum(t.weight for t in types)
        if not total > 0:
            raise WorkloadError("request mix weights must sum to > 0")
        self.types = list(types)
        self._probs = np.array([t.weight / total for t in types])

    @classmethod
    def single(
        cls, name: str = "default", size: Union[float, Distribution, None] = None
    ) -> "RequestMix":
        """A mix with just one request type."""
        return cls([RequestType(name, 1.0, size)])

    @classmethod
    def from_weights(
        cls,
        weights: Dict[str, float],
        sizes: Optional[Dict[str, Union[float, Distribution]]] = None,
    ) -> "RequestMix":
        """Build from ``{name: weight}`` (+ optional per-type sizes)."""
        sizes = sizes or {}
        return cls(
            [RequestType(n, w, sizes.get(n)) for n, w in sorted(weights.items())]
        )

    def sample(self, rng: np.random.Generator) -> Tuple[str, float]:
        """Draw (type name, payload bytes) for the next request."""
        idx = int(rng.choice(len(self.types), p=self._probs))
        rtype = self.types[idx]
        return rtype.name, max(0.0, rtype.size.sample(rng))

    @property
    def probabilities(self) -> Dict[str, float]:
        return {t.name: float(p) for t, p in zip(self.types, self._probs)}

    def __repr__(self) -> str:
        parts = ", ".join(f"{t.name}:{p:.2f}" for t, p in zip(self.types, self._probs))
        return f"RequestMix({parts})"
