"""Workload generation: clients, arrival processes, load patterns,
request mixes (the ``client.json`` surface of paper Table I)."""

from .arrival import (
    ArrivalProcess,
    DeterministicArrivals,
    MMPPArrivals,
    PoissonArrivals,
    TraceArrivals,
)
from .client import OpenLoopClient
from .closed_loop import ClosedLoopClient
from .patterns import ConstantLoad, DiurnalPattern, LoadPattern, StepPattern
from .request_mix import RequestMix, RequestType

__all__ = [
    "ArrivalProcess",
    "ClosedLoopClient",
    "ConstantLoad",
    "DeterministicArrivals",
    "DiurnalPattern",
    "LoadPattern",
    "MMPPArrivals",
    "OpenLoopClient",
    "PoissonArrivals",
    "RequestMix",
    "RequestType",
    "StepPattern",
    "TraceArrivals",
]
