"""Closed-loop workload generation.

The paper's validation is strictly open-loop (the correct methodology
for tail-latency measurement), but a closed-loop client — N logical
users, each issuing the next request only after receiving the previous
response, with optional think time — is the standard counterpart for
capacity planning and for demonstrating coordinated-omission effects.
Provided as a library extension; no paper figure depends on it.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..distributions import Deterministic, Distribution
from ..engine import PRIORITY_ARRIVAL, Simulator
from ..errors import WorkloadError
from ..service import Request
from ..telemetry import LatencyRecorder
from ..topology import Dispatcher
from .request_mix import RequestMix


class ClosedLoopClient:
    """*concurrency* users in a request -> response -> think loop."""

    def __init__(
        self,
        sim: Simulator,
        dispatcher: Dispatcher,
        concurrency: int,
        think_time: Optional[Distribution] = None,
        mix: Optional[RequestMix] = None,
        name: str = "closed-client",
        machine: str = "client",
        max_requests: Optional[int] = None,
        stop_at: Optional[float] = None,
        on_complete: Optional[Callable[[Request], None]] = None,
    ) -> None:
        if concurrency < 1:
            raise WorkloadError(f"concurrency must be >= 1, got {concurrency}")
        if max_requests is None and stop_at is None:
            raise WorkloadError(
                "closed-loop client needs max_requests and/or stop_at"
            )
        self.sim = sim
        self.dispatcher = dispatcher
        self.concurrency = concurrency
        self.think_time = think_time or Deterministic(0.0)
        self.mix = mix or RequestMix.single()
        self.name = name
        self.machine = machine
        self.max_requests = max_requests
        self.stop_at = stop_at
        self._extra_on_complete = on_complete
        self._rng = sim.random.stream(f"client/{name}")
        self._started = False

        self.latencies = LatencyRecorder(f"{name}/e2e")
        self.requests_sent = 0
        self.requests_completed = 0

    def start(self) -> "ClosedLoopClient":
        if self._started:
            raise WorkloadError(f"client {self.name!r} started twice")
        self._started = True
        for _ in range(self.concurrency):
            self._issue()
        return self

    def _budget_left(self) -> bool:
        if self.stop_at is not None and self.sim.now >= self.stop_at:
            return False
        if self.max_requests is not None and self.requests_sent >= self.max_requests:
            return False
        return True

    def _issue(self) -> None:
        if not self._budget_left():
            return
        rtype, size = self.mix.sample(self._rng)
        request = Request(
            created_at=self.sim.now, request_type=rtype, size_bytes=size
        )
        self.requests_sent += 1
        self.dispatcher.submit(
            request,
            on_complete=self._on_complete,
            client_name=self.name,
            client_machine=self.machine,
        )

    def _on_complete(self, request: Request) -> None:
        self.requests_completed += 1
        assert request.latency is not None
        self.latencies.record(request.completed_at, request.latency)
        if self._extra_on_complete is not None:
            self._extra_on_complete(request)
        think = self.think_time.sample(self._rng)
        self.sim.schedule(think, self._issue, priority=PRIORITY_ARRIVAL)

    @property
    def outstanding(self) -> int:
        return self.requests_sent - self.requests_completed

    def __repr__(self) -> str:
        return (
            f"<ClosedLoopClient {self.name} users={self.concurrency} "
            f"sent={self.requests_sent}>"
        )
