"""Arrival processes.

The paper's validation uses an open-loop generator (modified wrk2) with
exponentially distributed inter-arrival times — a Poisson process. The
non-homogeneous variant follows a :class:`~repro.workload.patterns.LoadPattern`
(diurnal load for the power-management study) via per-step rate
resampling, which is accurate when the pattern varies slowly relative
to the arrival rate (hours vs milliseconds here).
"""

from __future__ import annotations

import abc
from typing import Callable

import numpy as np

from ..distributions import DEFAULT_BLOCK, BufferedSampler, Exponential
from ..errors import WorkloadError
from .patterns import ConstantLoad, LoadPattern


class ArrivalProcess(abc.ABC):
    """Generates the gap to the next arrival."""

    @abc.abstractmethod
    def next_interarrival(self, now: float, rng: np.random.Generator) -> float:
        """Seconds until the next request, given the current time."""

    def make_sampler(
        self,
        rng: np.random.Generator,
        block: int = DEFAULT_BLOCK,
    ) -> Callable[[float], float]:
        """A ``gap(now) -> seconds`` callable bound to *rng*.

        The open-loop client draws every inter-arrival gap through this
        — one call per generated request — so processes whose draws can
        be block-buffered override it (see :class:`PoissonArrivals`).
        *rng* must be dedicated to the returned sampler (the buffering
        determinism contract). The default is the plain scalar path.
        """
        return lambda now: self.next_interarrival(now, rng)


class PoissonArrivals(ArrivalProcess):
    """(Non-)homogeneous Poisson arrivals driven by a load pattern."""

    def __init__(self, pattern: LoadPattern) -> None:
        self.pattern = pattern

    @classmethod
    def at_rate(cls, qps: float) -> "PoissonArrivals":
        return cls(ConstantLoad(qps))

    def next_interarrival(self, now: float, rng: np.random.Generator) -> float:
        rate = self.pattern.rate(now)
        if rate <= 0:
            raise WorkloadError(f"pattern returned rate {rate!r} at t={now!r}")
        return float(rng.exponential(1.0 / rate))

    def make_sampler(
        self,
        rng: np.random.Generator,
        block: int = DEFAULT_BLOCK,
    ) -> Callable[[float], float]:
        """Buffer *unit* exponentials and scale by ``1/rate(now)`` per
        gap — numpy's ``exponential(scale)`` is ``scale *
        standard_exponential()``, so this serves the bitwise-identical
        gap sequence while staying exact for time-varying patterns
        (the current rate is applied at serve time, never buffered).
        """
        buffer = BufferedSampler(Exponential(1.0), rng, block)
        buffered_unit = buffer.sample
        rate_at = self.pattern.rate

        def gap(now: float) -> float:
            rate = rate_at(now)
            if rate <= 0:
                raise WorkloadError(
                    f"pattern returned rate {rate!r} at t={now!r}"
                )
            return buffered_unit() * (1.0 / rate)

        return gap

    def __repr__(self) -> str:
        return f"PoissonArrivals({self.pattern!r})"


class DeterministicArrivals(ArrivalProcess):
    """Perfectly paced arrivals (closed-form 1/rate gaps).

    Useful to isolate queueing effects caused by service-time variance
    from those caused by arrival burstiness.
    """

    def __init__(self, pattern: LoadPattern) -> None:
        self.pattern = pattern

    @classmethod
    def at_rate(cls, qps: float) -> "DeterministicArrivals":
        return cls(ConstantLoad(qps))

    def next_interarrival(self, now: float, rng: np.random.Generator) -> float:
        rate = self.pattern.rate(now)
        if rate <= 0:
            raise WorkloadError(f"pattern returned rate {rate!r} at t={now!r}")
        return 1.0 / rate

    def __repr__(self) -> str:
        return f"DeterministicArrivals({self.pattern!r})"


class TraceArrivals(ArrivalProcess):
    """Replay recorded arrival timestamps.

    The substitution hook for production traces (which this repository
    cannot ship): feed absolute arrival times — from a CSV, a prior
    simulation, or a generator — and the client reproduces them
    exactly. Raises when the trace is exhausted unless *cycle* is set,
    in which case the trace repeats, shifted to stay monotonic.
    """

    def __init__(self, timestamps, cycle: bool = False) -> None:
        times = [float(t) for t in timestamps]
        if not times:
            raise WorkloadError("trace needs at least one timestamp")
        if any(b < a for a, b in zip(times, times[1:])):
            raise WorkloadError("trace timestamps must be non-decreasing")
        if times[0] < 0:
            raise WorkloadError("trace timestamps must be >= 0")
        self._times = times
        self.cycle = cycle
        self._idx = 0
        self._offset = 0.0

    def next_interarrival(self, now: float, rng: np.random.Generator) -> float:
        if self._idx >= len(self._times):
            if not self.cycle:
                raise WorkloadError(
                    f"trace exhausted after {len(self._times)} arrivals; "
                    f"set cycle=True to repeat"
                )
            # Shift the next cycle so it continues after the last event.
            self._offset += self._times[-1]
            self._idx = 0
        target = self._offset + self._times[self._idx]
        self._idx += 1
        return max(0.0, target - now)

    @property
    def remaining(self) -> int:
        """Arrivals left in the current cycle."""
        return len(self._times) - self._idx

    def __repr__(self) -> str:
        return (
            f"TraceArrivals(n={len(self._times)}, cycle={self.cycle})"
        )


class MMPPArrivals(ArrivalProcess):
    """Two-state Markov-modulated Poisson process (bursty arrivals).

    Alternates between a low-rate and a high-rate state with
    exponentially distributed dwell times; a simple model of bursty
    front-end traffic for stress experiments beyond the paper's
    exponential baseline.
    """

    def __init__(
        self,
        low_qps: float,
        high_qps: float,
        mean_dwell: float,
    ) -> None:
        if low_qps <= 0 or high_qps <= 0:
            raise WorkloadError("MMPP rates must be positive")
        if mean_dwell <= 0:
            raise WorkloadError(f"mean_dwell must be > 0, got {mean_dwell!r}")
        self.low_qps = float(low_qps)
        self.high_qps = float(high_qps)
        self.mean_dwell = float(mean_dwell)
        self._in_high = False
        self._state_until = 0.0

    def next_interarrival(self, now: float, rng: np.random.Generator) -> float:
        while now >= self._state_until:
            self._in_high = not self._in_high
            self._state_until = now + float(rng.exponential(self.mean_dwell))
        rate = self.high_qps if self._in_high else self.low_qps
        return float(rng.exponential(1.0 / rate))

    def __repr__(self) -> str:
        return (
            f"MMPPArrivals({self.low_qps:g}/{self.high_qps:g} QPS, "
            f"dwell={self.mean_dwell:g}s)"
        )
