"""The open-loop workload generator.

Models the paper's modified wrk2 client (SSIV-A): open-loop arrivals
(the next request is sent on schedule regardless of outstanding
responses — the correct way to measure tail latency), a configurable
connection count, request-type mix, and payload-size distribution. The
client records end-to-end latencies into a
:class:`~repro.telemetry.latency.LatencyRecorder`.

Outcome accounting: only requests that resolve ``ok`` are recorded
into the latency recorder, so :meth:`OpenLoopClient.throughput`
reports *goodput*. Timed-out / shed / failed resolutions are tallied
separately in :attr:`OpenLoopClient.outcomes`.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Union

from ..engine import PRIORITY_ARRIVAL, Simulator
from ..errors import WorkloadError
from ..service import Request
from ..service.job import (
    OUTCOME_FAILED,
    OUTCOME_OK,
    OUTCOME_SHED,
    OUTCOME_TIMEOUT,
)
from ..telemetry import LatencyRecorder
from ..topology import Dispatcher
from .arrival import ArrivalProcess, PoissonArrivals
from .patterns import LoadPattern
from .request_mix import RequestMix


class OpenLoopClient:
    """Generates requests into a dispatcher at a scheduled rate."""

    def __init__(
        self,
        sim: Simulator,
        dispatcher: Dispatcher,
        arrivals: Union[ArrivalProcess, LoadPattern, float],
        mix: Optional[RequestMix] = None,
        name: str = "client",
        machine: str = "client",
        max_requests: Optional[int] = None,
        stop_at: Optional[float] = None,
        on_complete: Optional[Callable[[Request], None]] = None,
        realism=None,
        resilience=None,
    ) -> None:
        """
        *arrivals* may be an :class:`ArrivalProcess`, a
        :class:`LoadPattern` (wrapped in Poisson arrivals — the wrk2
        behaviour), or a plain QPS number. Generation stops after
        *max_requests* and/or at time *stop_at*, whichever comes first.

        *realism* (a :class:`~repro.testbed.RealismConfig`) makes the
        client record *observed* latencies — including the real-system
        timeout/reconnection overhead past saturation — instead of raw
        simulated latencies.

        *resilience* (a :class:`~repro.resilience.ResiliencePolicy`)
        is attached to every submitted request; the dispatcher enforces
        it (timeouts, retries, hedging, breaker, shedding).
        """
        if isinstance(arrivals, (int, float)):
            arrivals = PoissonArrivals.at_rate(float(arrivals))
        elif isinstance(arrivals, LoadPattern):
            arrivals = PoissonArrivals(arrivals)
        if max_requests is None and stop_at is None:
            raise WorkloadError(
                "open-loop client needs max_requests and/or stop_at, "
                "otherwise generation never terminates"
            )
        if max_requests is not None and max_requests < 1:
            raise WorkloadError(f"max_requests must be >= 1, got {max_requests}")
        self.sim = sim
        self.dispatcher = dispatcher
        self.arrivals = arrivals
        self.mix = mix or RequestMix.single()
        self.name = name
        self.machine = machine
        self.max_requests = max_requests
        self.stop_at = stop_at
        self._extra_on_complete = on_complete
        self.realism = realism
        self.resilience = resilience
        self._rng = sim.random.stream(f"client/{name}")
        # Inter-arrival gaps draw from their own stream through the
        # arrival process's (possibly block-buffered) sampler; the
        # dedicated stream gives the buffer sole generator ownership,
        # which is what makes buffering draw-for-draw exact.
        self._next_gap = arrivals.make_sampler(
            sim.random.stream(f"client/{name}/arrivals")
        )
        self._started = False

        self.latencies = LatencyRecorder(f"{name}/e2e")
        self.requests_sent = 0
        self.requests_completed = 0
        self.outcomes = {
            OUTCOME_OK: 0,
            OUTCOME_TIMEOUT: 0,
            OUTCOME_SHED: 0,
            OUTCOME_FAILED: 0,
        }
        self.completed_requests: List[Request] = []

    # Lifecycle ----------------------------------------------------------

    def start(self, at: Optional[float] = None) -> "OpenLoopClient":
        """Schedule the first arrival (defaults to one gap from now)."""
        if self._started:
            raise WorkloadError(f"client {self.name!r} started twice")
        self._started = True
        start_time = self.sim.now if at is None else at
        gap = self._next_gap(start_time)
        self.sim.schedule_at(
            start_time + gap, self._fire, priority=PRIORITY_ARRIVAL
        )
        return self

    def _fire(self) -> None:
        now = self.sim.now
        if self.stop_at is not None and now > self.stop_at:
            return
        rtype, size = self.mix.sample(self._rng)
        request = Request(created_at=now, request_type=rtype, size_bytes=size)
        self.requests_sent += 1
        self.dispatcher.submit(
            request,
            on_complete=self._on_complete,
            client_name=self.name,
            client_machine=self.machine,
            policy=self.resilience,
        )
        if self.max_requests is not None and self.requests_sent >= self.max_requests:
            return
        gap = self._next_gap(now)
        # Arrival ticks are the single hottest schedule in any load
        # test and are never cancelled (stop_at/max_requests are
        # checked at fire time), so they qualify for the event slab.
        self.sim.schedule_transient(gap, self._fire, priority=PRIORITY_ARRIVAL)

    def _on_complete(self, request: Request) -> None:
        self.requests_completed += 1
        outcome = request.outcome or OUTCOME_OK
        self.outcomes[outcome] = self.outcomes.get(outcome, 0) + 1
        self.completed_requests.append(request)
        if outcome == OUTCOME_OK:
            assert request.latency is not None
            latency = request.latency
            if self.realism is not None:
                latency = self.realism.observed_latency(latency, self._rng)
            self.latencies.record(request.completed_at, latency)
        if self._extra_on_complete is not None:
            self._extra_on_complete(request)

    # Reporting ----------------------------------------------------------

    @property
    def outstanding(self) -> int:
        return self.requests_sent - self.requests_completed

    @property
    def requests_ok(self) -> int:
        """Requests that resolved with outcome ``ok``."""
        return self.outcomes.get(OUTCOME_OK, 0)

    @property
    def requests_errored(self) -> int:
        """Requests that resolved timeout/shed/failed."""
        return self.requests_completed - self.requests_ok

    def throughput(self, since: float, until: float) -> float:
        """Goodput: completed-*ok* requests per second over a window
        (only ok resolutions enter the latency recorder)."""
        return self.latencies.throughput(since, until)

    def __repr__(self) -> str:
        return (
            f"<OpenLoopClient {self.name} sent={self.requests_sent} "
            f"done={self.requests_completed}>"
        )
