"""Resilience policies enforced inside the simulation.

Timeouts with real cancellation, budgeted retries, hedged requests,
circuit breaking, and admission-control load shedding — the mechanisms
every production microservice stack layers over the raw RPC path, made
first-class simulator citizens so their emergent behaviours (retry
storms, metastable failures, hedging's tail cut) can be studied with
the same fidelity as the paper's queueing effects. The
:class:`~repro.topology.dispatcher.Dispatcher` consumes these policies;
:mod:`repro.faults` provides the failures they respond to.
"""

from .circuit_breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from .policy import (
    AdmissionPolicy,
    BreakerPolicy,
    HedgePolicy,
    ResiliencePolicy,
    RetryBudget,
    RetryPolicy,
)

__all__ = [
    "AdmissionPolicy",
    "BreakerPolicy",
    "CLOSED",
    "CircuitBreaker",
    "HALF_OPEN",
    "HedgePolicy",
    "OPEN",
    "ResiliencePolicy",
    "RetryBudget",
    "RetryPolicy",
]
