"""Resilience policies: what a client/edge does when things go wrong.

A :class:`ResiliencePolicy` bundles the per-request mechanisms the
dispatcher enforces *inside* the simulation:

* **timeout** — cancel the request after a deadline, reclaiming every
  queue slot, connection, and block it holds;
* **retry** (:class:`RetryPolicy`) — re-issue failed/timed-out requests
  with capped exponential backoff + jitter, gated by a per-client
  :class:`RetryBudget` so retry storms cannot melt the service;
* **hedge** (:class:`HedgePolicy`) — issue a clone of a slow request
  and keep whichever answer arrives first (tail-at-scale hedging);
* **breaker** (:class:`BreakerPolicy`) — a count-based circuit breaker
  per (upstream, service) edge, failing fast while a dependency burns;
* **admission** (:class:`AdmissionPolicy`) — queue-length/deadline load
  shedding at entry, with an optional graceful-degradation fallback
  tree (serve the cheap path instead of an error).

Policies are plain parameter objects; the runtime state they need
(budget tokens, breaker counters) lives in :class:`RetryBudget` and
:class:`~repro.resilience.circuit_breaker.CircuitBreaker` instances the
dispatcher owns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..errors import ConfigError


class RetryBudget:
    """Token budget bounding retries to a fraction of primary traffic.

    The classic anti-retry-storm guard (gRPC/Finagle style): a client
    may only retry while its retry volume stays under ``ratio`` x the
    number of primary requests it issued. ``min_tokens`` lets a cold
    client retry at all before it has history.
    """

    def __init__(self, ratio: float = 0.1, min_tokens: int = 10) -> None:
        if ratio < 0:
            raise ConfigError(f"retry budget ratio must be >= 0, got {ratio!r}")
        if min_tokens < 0:
            raise ConfigError(
                f"retry budget min_tokens must be >= 0, got {min_tokens!r}"
            )
        self.ratio = float(ratio)
        self.min_tokens = int(min_tokens)
        self.primaries = 0
        self.retries = 0

    def note_primary(self) -> None:
        """Record one primary (first-attempt) request."""
        self.primaries += 1

    def try_spend(self) -> bool:
        """Consume one retry token if the budget allows; False if spent."""
        allowance = max(self.min_tokens, self.ratio * self.primaries)
        if self.retries + 1 > allowance:
            return False
        self.retries += 1
        return True

    def __repr__(self) -> str:
        return (
            f"<RetryBudget {self.retries}/{self.ratio:.0%} of "
            f"{self.primaries} primaries>"
        )


@dataclass
class RetryPolicy:
    """Retry failed/timed-out requests with capped exponential backoff.

    Attempt *n* (n >= 2) waits ``min(base * multiplier**(n-2), cap)``
    plus uniform jitter in ``[0, jitter]`` before re-entering the
    dispatcher. ``budget=None`` disables the budget — the configuration
    that produces the metastable retry storm.
    """

    max_attempts: int = 3
    backoff_base: float = 1e-3
    backoff_multiplier: float = 2.0
    backoff_cap: float = 0.1
    jitter: float = 1e-4
    budget: Optional[RetryBudget] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_base < 0 or self.backoff_cap < 0 or self.jitter < 0:
            raise ConfigError("backoff terms must be >= 0")
        if self.backoff_multiplier < 1.0:
            raise ConfigError(
                f"backoff_multiplier must be >= 1, got {self.backoff_multiplier!r}"
            )

    def backoff(self, attempt: int, rng: np.random.Generator) -> float:
        """Delay before re-issuing *attempt* (2 = first retry)."""
        exponent = max(0, attempt - 2)
        delay = min(
            self.backoff_base * self.backoff_multiplier ** exponent,
            self.backoff_cap,
        )
        if self.jitter > 0:
            delay += float(rng.uniform(0.0, self.jitter))
        return delay

    def allows(self, attempts_so_far: int) -> bool:
        """True while another attempt is permitted (budget aside)."""
        return attempts_so_far < self.max_attempts


@dataclass
class HedgePolicy:
    """Hedged (cloned) requests: issue a second copy after
    ``delay`` seconds without a response and keep the first answer.

    ``delay`` should sit near the baseline tail (p95+) so only the
    slowest few percent of requests hedge — the tail-at-scale recipe
    that buys a large p99 cut for a few percent extra load.
    """

    delay: float = 10e-3
    max_hedges: int = 1

    def __post_init__(self) -> None:
        if self.delay <= 0:
            raise ConfigError(f"hedge delay must be > 0, got {self.delay!r}")
        if self.max_hedges < 1:
            raise ConfigError(
                f"max_hedges must be >= 1, got {self.max_hedges}"
            )


@dataclass
class BreakerPolicy:
    """Parameters of the per-(upstream, service) circuit breaker.

    ``failure_threshold`` consecutive failures open the circuit; after
    ``reset_timeout`` seconds one probe request is let through
    (half-open) and its outcome closes or re-opens the breaker.
    """

    failure_threshold: int = 5
    reset_timeout: float = 1.0

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ConfigError(
                f"failure_threshold must be >= 1, got {self.failure_threshold}"
            )
        if self.reset_timeout <= 0:
            raise ConfigError(
                f"reset_timeout must be > 0, got {self.reset_timeout!r}"
            )


@dataclass
class AdmissionPolicy:
    """Load shedding at request entry.

    A request is shed when the least-loaded healthy replica of its
    entry service already has more than ``max_queue`` jobs pending, or
    when the estimated wait (pending x ``service_time_estimate``)
    exceeds ``deadline``. With ``fallback_tree`` set, shed requests are
    served through that (cheaper) registered path tree instead of being
    rejected — graceful degradation.
    """

    max_queue: Optional[int] = None
    deadline: Optional[float] = None
    service_time_estimate: Optional[float] = None
    fallback_tree: Optional[str] = None

    def __post_init__(self) -> None:
        if self.max_queue is not None and self.max_queue < 0:
            raise ConfigError(f"max_queue must be >= 0, got {self.max_queue}")
        if self.deadline is not None:
            if self.service_time_estimate is None:
                raise ConfigError(
                    "deadline-based admission needs service_time_estimate"
                )
            if self.deadline <= 0 or self.service_time_estimate <= 0:
                raise ConfigError(
                    "deadline and service_time_estimate must be > 0"
                )

    def sheds(self, pending: int) -> bool:
        """Decide from the entry tier's backlog (*pending* jobs)."""
        if self.max_queue is not None and pending > self.max_queue:
            return True
        if self.deadline is not None:
            return pending * self.service_time_estimate > self.deadline
        return False


@dataclass
class ResiliencePolicy:
    """The full per-client resilience configuration.

    Any subset of the mechanisms may be enabled; the default instance
    is completely inert (no timeout, no retries, no hedging, no
    breaker, no shedding), so plumbing a policy through costs nothing
    until something is switched on.
    """

    timeout: Optional[float] = None
    retry: Optional[RetryPolicy] = None
    hedge: Optional[HedgePolicy] = None
    breaker: Optional[BreakerPolicy] = None
    admission: Optional[AdmissionPolicy] = None

    def __post_init__(self) -> None:
        if self.timeout is not None and self.timeout <= 0:
            raise ConfigError(f"timeout must be > 0, got {self.timeout!r}")
