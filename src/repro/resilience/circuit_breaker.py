"""The count-based circuit breaker state machine.

Classic three-state breaker (closed -> open -> half-open) guarding one
(upstream, service) edge: ``failure_threshold`` consecutive failures
trip it open, requests then fail fast for ``reset_timeout`` seconds,
after which a single probe is admitted; the probe's outcome closes the
breaker or slams it open again. All transitions are driven by the
simulation clock passed into :meth:`allow` / :meth:`record_failure`.
"""

from __future__ import annotations

from .policy import BreakerPolicy

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Runtime state of one (upstream, service) edge's breaker."""

    def __init__(self, policy: BreakerPolicy) -> None:
        self.policy = policy
        self.state = CLOSED
        self.consecutive_failures = 0
        self.opened_at: float = 0.0
        self.opens = 0  # telemetry: how often the circuit tripped
        self._probe_in_flight = False

    def allow(self, now: float) -> bool:
        """May a request cross this edge at simulation time *now*?

        While open, returns False until ``reset_timeout`` elapsed, then
        transitions to half-open and admits exactly one probe at a
        time.
        """
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if now - self.opened_at < self.policy.reset_timeout:
                return False
            self.state = HALF_OPEN
            self._probe_in_flight = False
        # Half-open: one probe at a time.
        if self._probe_in_flight:
            return False
        self._probe_in_flight = True
        return True

    def record_success(self) -> None:
        """Note a completed hop over this edge (closes a half-open
        breaker, resets the consecutive-failure count)."""
        self.consecutive_failures = 0
        self._probe_in_flight = False
        self.state = CLOSED

    def record_failure(self, now: float) -> None:
        """Note a failed hop; may trip the breaker open."""
        self.consecutive_failures += 1
        self._probe_in_flight = False
        if self.state == HALF_OPEN or (
            self.state == CLOSED
            and self.consecutive_failures >= self.policy.failure_threshold
        ):
            self.state = OPEN
            self.opened_at = now
            self.opens += 1

    def __repr__(self) -> str:
        return (
            f"<CircuitBreaker {self.state} "
            f"failures={self.consecutive_failures}>"
        )
