"""Requests and jobs.

The paper's terminology (SSIII-A): an end-to-end *request* enters the
system at the client and traverses a tree of inter-microservice path
nodes; inside each microservice the unit of work is a *job* ("a request
in a microservice"). When a path node fans out, uqSim "makes a copy of
the job for each child node" — here, each copy is a fresh :class:`Job`
belonging to the same :class:`Request`.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Callable, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from .connections import Connection
    from .microservice import Microservice
    from .paths import ExecutionPath

# Terminal request outcomes. ``None`` means still in flight; every
# resolved request carries exactly one of these.
OUTCOME_OK = "ok"
OUTCOME_TIMEOUT = "timeout"
OUTCOME_SHED = "shed"
OUTCOME_FAILED = "failed"
OUTCOMES = (OUTCOME_OK, OUTCOME_TIMEOUT, OUTCOME_SHED, OUTCOME_FAILED)


class Request:
    """One end-to-end user request.

    Latency is measured from :attr:`created_at` (client send) to
    :attr:`completed_at` (response received by the client), the quantity
    the paper's load-latency validation curves report. A resolved
    request additionally carries a terminal :attr:`outcome` (one of
    :data:`OUTCOMES`) and the number of :attr:`attempts` the resilience
    layer spent on it (1 without retries/hedges).
    """

    __slots__ = (
        "request_id",
        "request_type",
        "created_at",
        "completed_at",
        "size_bytes",
        "outcome",
        "attempts",
        "metadata",
    )

    _id_counter = itertools.count()

    def __init__(
        self,
        created_at: float,
        request_type: str = "default",
        size_bytes: float = 0.0,
    ) -> None:
        self.request_id = next(Request._id_counter)
        self.request_type = request_type
        self.created_at = created_at
        self.completed_at: Optional[float] = None
        self.size_bytes = size_bytes
        self.outcome: Optional[str] = None
        self.attempts = 0
        self.metadata: dict = {}

    @property
    def latency(self) -> Optional[float]:
        """End-to-end latency in seconds, or ``None`` while in flight."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.created_at

    @property
    def ok(self) -> bool:
        """True once the request resolved successfully."""
        return self.outcome == OUTCOME_OK

    def raise_for_outcome(self) -> None:
        """Raise the matching :class:`~repro.errors.RequestOutcomeError`
        if this request resolved with a non-``ok`` outcome (no-op while
        in flight or on success)."""
        from ..errors import RequestFailed, RequestShed, RequestTimeout

        if self.outcome in (None, OUTCOME_OK):
            return
        exc_type = {
            OUTCOME_TIMEOUT: RequestTimeout,
            OUTCOME_SHED: RequestShed,
            OUTCOME_FAILED: RequestFailed,
        }[self.outcome]
        raise exc_type(self)

    def __repr__(self) -> str:
        state = (
            f"done@{self.completed_at:.6f}" if self.completed_at is not None
            else "in-flight"
        )
        return f"<Request {self.request_id} {self.request_type} {state}>"


class Job:
    """One microservice's share of a request.

    A job is born when the dispatcher sends the request into a path
    node's microservice, walks that service's execution path stage by
    stage, and fires :attr:`on_complete` after its last stage, at which
    point the dispatcher advances the request through the path tree.
    """

    __slots__ = (
        "job_id",
        "request",
        "size_bytes",
        "connection",
        "service",
        "path",
        "stage_pos",
        "on_complete",
        "on_fail",
        "on_discard",
        "cancelled",
        "created_at",
        "first_dispatch_at",
        "completed_at",
    )

    _id_counter = itertools.count()

    def __init__(
        self,
        request: Request,
        size_bytes: float = 0.0,
        connection: Optional["Connection"] = None,
    ) -> None:
        self.job_id = next(Job._id_counter)
        self.request = request
        self.size_bytes = size_bytes
        self.connection = connection
        self.service: Optional["Microservice"] = None
        self.path: Optional["ExecutionPath"] = None
        self.stage_pos = 0
        self.on_complete: Optional[Callable[["Job"], None]] = None
        # Fired when the owning instance crashes with this job in
        # flight or refuses it while down (resilience failure path).
        self.on_fail: Optional[Callable[["Job"], None]] = None
        # Fired on ANY job loss, including silent crash dispositions
        # that suppress on_fail. Internal resource reclamation (the
        # dispatcher frees a lost message's in-order delivery slot
        # here), never application-visible failure handling.
        self.on_discard: Optional[Callable[["Job"], None]] = None
        # Set by request cancellation (timeout / hedge loser): the job
        # may still be executing, but its completion must not propagate.
        self.cancelled = False
        self.created_at: Optional[float] = None
        self.first_dispatch_at: Optional[float] = None
        self.completed_at: Optional[float] = None

    @property
    def current_stage_id(self) -> int:
        """The stage id this job is queued at / executing in."""
        assert self.path is not None, "job has not been accepted by a service"
        return self.path.stage_ids[self.stage_pos]

    @property
    def remaining_stages(self) -> int:
        assert self.path is not None
        return len(self.path.stage_ids) - self.stage_pos

    @property
    def service_latency(self) -> Optional[float]:
        """Time spent inside the owning microservice (queueing + service)."""
        if self.completed_at is None or self.created_at is None:
            return None
        return self.completed_at - self.created_at

    def __repr__(self) -> str:
        where = self.service.name if self.service is not None else "?"
        return f"<Job {self.job_id} req={self.request.request_id} at {where}>"
