"""Execution models: simple and multi-threaded.

Paper SSIII-B: "Currently uqSim supports two models: simple and
multi-threaded. A simple model directly dispatches jobs onto hardware
resources like CPU, and is mainly used for simple (single stage)
services. Multi-threaded models add the abstraction of a thread or
process ... a job will be first dispatched to a thread, and the
microservice will search for adequate resources to execute the job, or
stall if no resources are available. The multi-threaded model captures
context switching and I/O blocking overheads."

The model hands out *workers*: a :class:`SimpleModel` has an unlimited
supply (the CPU cores are the only constraint), a
:class:`MultiThreadedModel` has a fixed — or dynamically grown —
complement of threads. A worker is held for the whole stage execution
including any I/O phase; the CPU core is held only for the compute
phase.
"""

from __future__ import annotations

import abc
import itertools
from typing import List, Optional

from ..errors import ConfigError, ResourceError


class Worker:
    """A thread/process context executing one stage batch at a time."""

    __slots__ = ("worker_id", "name", "busy", "blocked")

    _id_counter = itertools.count()

    def __init__(self, name: str) -> None:
        self.worker_id = next(Worker._id_counter)
        self.name = name
        self.busy = False
        self.blocked = False  # in an I/O phase (holds thread, not core)

    def __repr__(self) -> str:
        state = "blocked" if self.blocked else ("busy" if self.busy else "idle")
        return f"<Worker {self.name} {state}>"


class ExecutionModel(abc.ABC):
    """Concurrency policy of one microservice instance."""

    @abc.abstractmethod
    def acquire_worker(self) -> Optional[Worker]:
        """Claim an idle worker, or ``None`` if the service must stall."""

    @abc.abstractmethod
    def release_worker(self, worker: Worker) -> None:
        """Return a worker after its stage (and any I/O) completed."""

    @abc.abstractmethod
    def dispatch_overhead(self, worker: Worker, core) -> float:
        """Extra CPU seconds charged when *worker* starts on *core*
        (context-switch cost in the multi-threaded model)."""

    @property
    @abc.abstractmethod
    def concurrency(self) -> Optional[int]:
        """Max simultaneous stage executions (``None`` = unbounded)."""


class SimpleModel(ExecutionModel):
    """Jobs dispatch straight onto cores; no thread abstraction.

    Used for single-stage services (the network-processing service, the
    tail-at-scale leaf servers) where thread management adds nothing.
    """

    def __init__(self) -> None:
        self._pool: List[Worker] = []
        self._spawned = 0

    def acquire_worker(self) -> Optional[Worker]:
        if self._pool:
            worker = self._pool.pop()
        else:
            worker = Worker(f"simple-{self._spawned}")
            self._spawned += 1
        worker.busy = True
        return worker

    def release_worker(self, worker: Worker) -> None:
        worker.busy = False
        worker.blocked = False
        self._pool.append(worker)

    def dispatch_overhead(self, worker: Worker, core) -> float:
        return 0.0

    @property
    def concurrency(self) -> Optional[int]:
        return None

    def __repr__(self) -> str:
        return "SimpleModel()"


class MultiThreadedModel(ExecutionModel):
    """A static (or dynamically grown) pool of threads.

    ``context_switch`` seconds are charged whenever a core picks up a
    different thread than it ran last — the oversubscription penalty the
    paper attributes to the multi-threaded model. Dynamic spawning
    (``dynamic=True``) grows the pool up to ``max_threads`` when every
    existing thread is occupied, mimicking thread-per-request servers.
    """

    def __init__(
        self,
        num_threads: int,
        context_switch: float = 2e-6,
        dynamic: bool = False,
        max_threads: Optional[int] = None,
    ) -> None:
        if num_threads < 1:
            raise ConfigError(f"num_threads must be >= 1, got {num_threads}")
        if context_switch < 0:
            raise ConfigError(f"context_switch must be >= 0, got {context_switch}")
        if dynamic:
            if max_threads is None or max_threads < num_threads:
                raise ConfigError(
                    "dynamic spawning needs max_threads >= num_threads"
                )
        elif max_threads is not None and max_threads != num_threads:
            raise ConfigError("max_threads without dynamic=True is meaningless")
        self.num_threads = num_threads
        self.context_switch = context_switch
        self.dynamic = dynamic
        self.max_threads = max_threads if dynamic else num_threads
        self._idle: List[Worker] = [
            Worker(f"thread-{i}") for i in range(num_threads)
        ]
        self._total = num_threads
        self.spawned_dynamically = 0

    def acquire_worker(self) -> Optional[Worker]:
        if self._idle:
            worker = self._idle.pop(0)
            worker.busy = True
            return worker
        if self.dynamic and self._total < self.max_threads:
            worker = Worker(f"thread-{self._total}")
            self._total += 1
            self.spawned_dynamically += 1
            worker.busy = True
            return worker
        return None

    def release_worker(self, worker: Worker) -> None:
        if not worker.busy:
            raise ResourceError(f"{worker!r} released while idle")
        worker.busy = False
        worker.blocked = False
        self._idle.append(worker)

    def dispatch_overhead(self, worker: Worker, core) -> float:
        # Charge a context switch when the core last ran someone else.
        last = getattr(core, "last_worker_id", None)
        core.last_worker_id = worker.worker_id
        if last is None or last == worker.worker_id:
            return 0.0
        return self.context_switch

    @property
    def concurrency(self) -> Optional[int]:
        return self.max_threads

    @property
    def idle_threads(self) -> int:
        return len(self._idle)

    def __repr__(self) -> str:
        grow = f"->{self.max_threads}" if self.dynamic else ""
        return (
            f"MultiThreadedModel({self.num_threads}{grow}, "
            f"cs={self.context_switch*1e6:.1f}us)"
        )
