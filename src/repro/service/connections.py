"""Connections and connection pools.

Paper SSIII-C: the deployment file "specifies the size of the
connection pool of each microservice, if applicable", and path nodes
can "trigger blocking or unblocking events on a specific connection"
— the http/1.1 semantics where "only one outstanding request is
allowed per connection", realised by blocking the *receiving side* of
the incoming connection while a request is being served.

A blocked connection's jobs stay invisible to the receiving service's
epoll/socket queues (the kernel would not mark the socket readable
while the application is not reading it); unblocking re-exposes them
and kicks the service's dispatcher.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Callable, List, Optional

from ..errors import TopologyError

if TYPE_CHECKING:  # pragma: no cover
    pass


class Connection:
    """One (upstream -> downstream) transport connection."""

    __slots__ = (
        "conn_id",
        "name",
        "outstanding",
        "_holder",
        "_waiters",
        "_on_unblock",
        "_send_seq",
        "_deliver_seq",
        "_parked",
    )

    _id_counter = itertools.count()

    def __init__(self, name: str = "") -> None:
        self.conn_id = next(Connection._id_counter)
        self.name = name or f"conn{self.conn_id}"
        self.outstanding = 0  # requests sent and not yet answered
        self._holder: Optional[int] = None  # request id holding the block
        self._waiters: List[int] = []  # later requests queued for the block
        self._on_unblock: List[Callable[[], None]] = []
        # TCP in-order delivery, per direction (keyed by receiver):
        # sequence numbers stamped at send, deliveries released in order.
        self._send_seq: dict = {}
        self._deliver_seq: dict = {}
        self._parked: dict = {}

    @property
    def blocked(self) -> bool:
        return self._holder is not None

    @property
    def holder(self) -> Optional[int]:
        """The request id currently holding the receive-side block."""
        return self._holder

    def on_unblock(self, callback: Callable[[], None]) -> None:
        """Subscribe to visibility changes (receiving services kick their
        dispatch loop from here)."""
        self._on_unblock.append(callback)

    def block(self, request_id: int) -> None:
        """Block the receiving side on behalf of *request_id*.

        http/1.1 allows one outstanding request per connection; later
        requests on the same connection queue behind the holder and
        acquire the block in FIFO order as earlier ones release it. uqSim
        "searches the list of job ids for the one matching the request
        that initiated the blocking behavior, in order to unblock the
        connection upon completion of the current request" — the holder
        id plays that role here.
        """
        if self._holder == request_id or request_id in self._waiters:
            raise TopologyError(
                f"{self.name}: request {request_id} blocked twice"
            )
        if self._holder is None:
            self._holder = request_id
        else:
            self._waiters.append(request_id)

    def unblock(self, request_id: int) -> None:
        """Release the block held by *request_id* (no-op otherwise)."""
        if self._holder != request_id:
            return  # a different in-flight request holds the block
        self._holder = self._waiters.pop(0) if self._waiters else None
        # Visibility changed either way: the next holder's job (or, with
        # no waiters, every queued job) becomes eligible.
        for callback in list(self._on_unblock):
            callback()

    def waiting(self, request_id: int) -> bool:
        """True if *request_id* is queued behind the current holder."""
        return request_id in self._waiters

    def abandon(self, request_id: int) -> None:
        """Withdraw *request_id* from the block entirely (cancellation).

        Unlike :meth:`unblock`, this also removes the request from the
        waiter queue, so a cancelled request can never acquire (and then
        leak) the block later. Releasing the holder passes the block on
        exactly as :meth:`unblock` does.
        """
        if request_id in self._waiters:
            self._waiters.remove(request_id)
            return
        self.unblock(request_id)

    # In-order delivery ------------------------------------------------

    def next_seq(self, direction: str) -> int:
        """Stamp an outgoing message towards *direction* (receiver name).

        TCP delivers each direction of a connection in send order; the
        simulator's network may complete hops out of order, so messages
        carry a sequence number and are released by
        :meth:`deliver_in_order`. Without this, a later request could be
        processed (and block the connection) before an earlier one
        arrives — an ordering real transports make impossible.
        """
        seq = self._send_seq.get(direction, 0) + 1
        self._send_seq[direction] = seq
        return seq

    def deliver_in_order(
        self, direction: str, seq: int, deliver: Callable[[], None]
    ) -> None:
        """Run *deliver* once every earlier message in this direction
        has been delivered (parking it until then)."""
        expected = self._deliver_seq.get(direction, 0) + 1
        if seq != expected:
            self._parked.setdefault(direction, {})[seq] = deliver
            return
        self._deliver_seq[direction] = seq
        deliver()
        parked = self._parked.get(direction)
        while parked:
            nxt = self._deliver_seq[direction] + 1
            release = parked.pop(nxt, None)
            if release is None:
                break
            self._deliver_seq[direction] = nxt
            release()

    def __repr__(self) -> str:
        state = (
            f"blocked(by={self._holder}, +{len(self._waiters)} waiting)"
            if self.blocked
            else "open"
        )
        return f"<Connection {self.name} {state} outstanding={self.outstanding}>"


class ConnectionPool:
    """A fixed-size pool of connections from one upstream to one
    downstream instance.

    ``checkout`` picks the connection for the next request. Round-robin
    mirrors how wrk2 and RPC client pools spread requests across their
    connections; ``least_outstanding`` is available for pools fronting
    blocking protocols where picking an idle connection matters.
    """

    POLICIES = ("round_robin", "least_outstanding")

    def __init__(
        self,
        name: str,
        size: int,
        policy: str = "round_robin",
    ) -> None:
        if size < 1:
            raise TopologyError(f"connection pool {name!r} needs size >= 1")
        if policy not in self.POLICIES:
            raise TopologyError(
                f"unknown pool policy {policy!r}; expected one of {self.POLICIES}"
            )
        self.name = name
        self.policy = policy
        self.connections = [Connection(f"{name}#{i}") for i in range(size)]
        self._next = 0

    def __len__(self) -> int:
        return len(self.connections)

    def checkout(self) -> Connection:
        """Pick the connection to carry the next request."""
        if self.policy == "round_robin":
            conn = self.connections[self._next]
            self._next = (self._next + 1) % len(self.connections)
            return conn
        # least_outstanding: fall back to pool order on ties for
        # determinism.
        return min(self.connections, key=lambda c: (c.outstanding, c.conn_id))

    def __repr__(self) -> str:
        return f"<ConnectionPool {self.name} size={len(self)} {self.policy}>"
