"""Stage queues: single, socket, and epoll.

Paper SSIII-B, with memcached (Listing 1) as the canonical example:

* ``single`` — "queues simply store all jobs in one queue"; no
  per-connection structure, used by processing/send stages.
* ``socket`` — per-connection subqueues; a batch returns "the first N
  jobs from a single ready connection at a time" (a ``read()`` on one
  socket).
* ``epoll`` — per-connection subqueues; a batch "returns the first N
  jobs of each active subqueue" (one ``epoll_wait`` covering every
  readable connection).

Jobs whose connection is *blocked* (http/1.1 receive-side blocking, see
:mod:`repro.service.connections`) are invisible: their subqueue is not
"ready" and does not contribute to batches until unblocked.
"""

from __future__ import annotations

import abc
from collections import OrderedDict, deque
from typing import Deque, List, Optional

from ..errors import ConfigError
from .job import Job

_NO_CONNECTION_KEY = -1


def _conn_key(job: Job) -> int:
    return job.connection.conn_id if job.connection is not None else _NO_CONNECTION_KEY


def _is_blocked(job: Job) -> bool:
    """A job is hidden while its connection is blocked by a *different*
    request. The block holder's own jobs stay visible — they must keep
    flowing so the request can complete and lift the block."""
    if job.connection is None or not job.connection.blocked:
        return False
    return job.connection.holder != job.request.request_id


class StageQueue(abc.ABC):
    """Interface every stage queue implements."""

    @abc.abstractmethod
    def push(self, job: Job) -> None:
        """Enqueue a job."""

    @abc.abstractmethod
    def next_batch(self) -> List[Job]:
        """Pop and return the next batch of ready jobs ([] if none)."""

    @abc.abstractmethod
    def __len__(self) -> int:
        """Total queued jobs, including ones hidden by blocking."""

    @abc.abstractmethod
    def ready_count(self) -> int:
        """Jobs currently eligible to be batched."""

    @abc.abstractmethod
    def remove(self, job: Job) -> bool:
        """Withdraw a queued job (request cancellation); True if found.

        A job already handed out by :meth:`next_batch` is executing and
        cannot be reclaimed — callers get ``False`` and must let it run
        to (suppressed) completion.
        """

    @abc.abstractmethod
    def drain(self) -> List[Job]:
        """Pop and return ALL queued jobs, blocked ones included.

        Used by instance crash handling: a dead process loses its whole
        backlog at once, visibility rules notwithstanding.
        """

    def has_ready(self) -> bool:
        return self.ready_count() > 0


class SingleQueue(StageQueue):
    """One FIFO for all jobs (no per-connection structure, no batching
    by default — ``batch_limit`` > 1 opts in).

    Blocked-connection jobs are skipped in place: ready jobs keep FIFO
    order among themselves, hidden ones retain their positions until
    their connection unblocks.
    """

    def __init__(self, batch_limit: int = 1) -> None:
        if batch_limit < 1:
            raise ConfigError(f"batch_limit must be >= 1, got {batch_limit}")
        self.batch_limit = batch_limit
        self._fifo: Deque[Job] = deque()

    def push(self, job: Job) -> None:
        self._fifo.append(job)

    def next_batch(self) -> List[Job]:
        batch: List[Job] = []
        skipped: List[Job] = []
        while self._fifo and len(batch) < self.batch_limit:
            job = self._fifo.popleft()
            if _is_blocked(job):
                skipped.append(job)
            else:
                batch.append(job)
        # Hidden jobs go back to the front, preserving their order.
        self._fifo.extendleft(reversed(skipped))
        return batch

    def __len__(self) -> int:
        return len(self._fifo)

    def ready_count(self) -> int:
        return sum(1 for job in self._fifo if not _is_blocked(job))

    def remove(self, job: Job) -> bool:
        try:
            self._fifo.remove(job)
        except ValueError:
            return False
        return True

    def drain(self) -> List[Job]:
        jobs = list(self._fifo)
        self._fifo.clear()
        return jobs

    def __repr__(self) -> str:
        return f"<SingleQueue depth={len(self)}>"


class _SubqueueMixin:
    """Shared per-connection subqueue bookkeeping for socket/epoll."""

    def __init__(self) -> None:
        # OrderedDict preserves arrival order of connections, which both
        # round-robin fairness and determinism rely on.
        self._subqueues: "OrderedDict[int, Deque[Job]]" = OrderedDict()

    def _push(self, job: Job) -> None:
        key = _conn_key(job)
        queue = self._subqueues.get(key)
        if queue is None:
            queue = deque()
            self._subqueues[key] = queue
        queue.append(job)

    def _total(self) -> int:
        return sum(len(q) for q in self._subqueues.values())

    def _ready_keys(self) -> List[int]:
        ready = []
        for key, queue in self._subqueues.items():
            if not queue:
                continue
            if _is_blocked(queue[0]):
                continue
            ready.append(key)
        return ready

    def _ready_total(self) -> int:
        return sum(
            len(self._subqueues[key]) for key in self._ready_keys()
        )

    def _gc(self, key: int) -> None:
        if not self._subqueues[key]:
            del self._subqueues[key]

    def _remove(self, job: Job) -> bool:
        key = _conn_key(job)
        queue = self._subqueues.get(key)
        if queue is None:
            return False
        try:
            queue.remove(job)
        except ValueError:
            return False
        self._gc(key)
        return True

    def _drain(self) -> List[Job]:
        jobs = [job for queue in self._subqueues.values() for job in queue]
        self._subqueues.clear()
        return jobs


class SocketQueue(StageQueue, _SubqueueMixin):
    """``socket_read``-style queue: batch from ONE ready connection.

    Connections are served round-robin so a hot connection cannot
    starve the others, mirroring a reactor looping over readable fds.
    """

    def __init__(self, batch_limit: int = 16) -> None:
        _SubqueueMixin.__init__(self)
        if batch_limit < 1:
            raise ConfigError(f"batch_limit must be >= 1, got {batch_limit}")
        self.batch_limit = batch_limit

    def push(self, job: Job) -> None:
        self._push(job)

    def next_batch(self) -> List[Job]:
        ready = self._ready_keys()
        if not ready:
            return []
        # Round-robin: serve the oldest ready connection, then rotate it
        # to the back so the next batch favours a different one.
        key = ready[0]
        queue = self._subqueues[key]
        batch: List[Job] = []
        while queue and len(batch) < self.batch_limit:
            batch.append(queue.popleft())
        if queue:
            self._subqueues.move_to_end(key)
        else:
            self._gc(key)
        return batch

    def __len__(self) -> int:
        return self._total()

    def ready_count(self) -> int:
        return self._ready_total()

    def remove(self, job: Job) -> bool:
        return self._remove(job)

    def drain(self) -> List[Job]:
        return self._drain()

    def __repr__(self) -> str:
        return f"<SocketQueue conns={len(self._subqueues)} depth={len(self)}>"


class EpollQueue(StageQueue, _SubqueueMixin):
    """``epoll``-style queue: batch takes jobs from EVERY active
    connection at once.

    One batch corresponds to one ``epoll_wait`` invocation, whose cost
    grows with the number of returned events (modelled by the stage's
    per-job cost term) but is *amortised* across all of them — the exact
    effect that lets uqSim track real saturation where single-queue
    simulators like BigHouse cannot (paper SSIV-E).
    """

    def __init__(self, per_connection_limit: Optional[int] = 16) -> None:
        _SubqueueMixin.__init__(self)
        if per_connection_limit is not None and per_connection_limit < 1:
            raise ConfigError(
                f"per_connection_limit must be >= 1 or None, "
                f"got {per_connection_limit}"
            )
        self.per_connection_limit = per_connection_limit

    def push(self, job: Job) -> None:
        self._push(job)

    def next_batch(self) -> List[Job]:
        batch: List[Job] = []
        for key in self._ready_keys():
            queue = self._subqueues[key]
            taken = 0
            while queue and (
                self.per_connection_limit is None
                or taken < self.per_connection_limit
            ):
                batch.append(queue.popleft())
                taken += 1
            self._gc(key)
        return batch

    def __len__(self) -> int:
        return self._total()

    def ready_count(self) -> int:
        return self._ready_total()

    def remove(self, job: Job) -> bool:
        return self._remove(job)

    def drain(self) -> List[Job]:
        return self._drain()

    def __repr__(self) -> str:
        return f"<EpollQueue conns={len(self._subqueues)} depth={len(self)}>"


QUEUE_TYPES = {
    "single": SingleQueue,
    "socket": SocketQueue,
    "epoll": EpollQueue,
}


def make_queue(queue_type: str, parameter=None) -> StageQueue:
    """Factory used by the JSON config layer (service.json
    ``queue_type`` / ``queue_parameter`` fields).

    ``parameter`` follows the paper's Listing 1 conventions: for
    ``epoll`` it is ``[null, N]`` or ``[N]`` (per-connection event
    limit), for ``socket`` ``[N]`` (read batch limit), for ``single``
    ``null``.
    """
    if queue_type not in QUEUE_TYPES:
        raise ConfigError(
            f"unknown queue_type {queue_type!r}; expected one of "
            f"{sorted(QUEUE_TYPES)}"
        )
    values = [v for v in (parameter or []) if v is not None]
    if queue_type == "single":
        return SingleQueue(*([values[0]] if values else []))
    if queue_type == "socket":
        return SocketQueue(*([values[0]] if values else []))
    return EpollQueue(values[0] if values else 16)
