"""Intra-microservice model (paper SSIII-B) — the first half of uqSim's
core contribution.

A microservice is application logic (stages with single/socket/epoll
queues, assembled into probabilistically selected execution paths) plus
an execution model (simple or multi-threaded), pinned to a core set and
optionally backed by an I/O device. Jobs flow through the stages fully
event-driven, with batching amortisation, per-connection blocking, and
runtime-dependent stage costs.
"""

from .connections import Connection, ConnectionPool
from .execution_models import (
    ExecutionModel,
    MultiThreadedModel,
    SimpleModel,
    Worker,
)
from .io import IoDevice
from .job import Job, Request
from .microservice import Microservice
from .paths import ExecutionPath, PathSelector
from .queues import (
    EpollQueue,
    SingleQueue,
    SocketQueue,
    StageQueue,
    make_queue,
)
from .stage import NOMINAL_FREQUENCY, Stage, as_frequency_table

__all__ = [
    "Connection",
    "ConnectionPool",
    "EpollQueue",
    "ExecutionModel",
    "ExecutionPath",
    "IoDevice",
    "Job",
    "Microservice",
    "MultiThreadedModel",
    "NOMINAL_FREQUENCY",
    "PathSelector",
    "Request",
    "SimpleModel",
    "SingleQueue",
    "SocketQueue",
    "Stage",
    "StageQueue",
    "Worker",
    "as_frequency_table",
    "make_queue",
]
