"""Execution stages: the queue-consumer pairs of the paper.

SSIII-B: "The basic element of the application logic is a stage, which
represents an execution phase within the microservice, and is
essentially a queue-consumer pair". A stage's processing time is
runtime-dependent: "epoll's execution time increases linearly with the
number of active events that are returned, and socket_read's
processing time is also proportional to the number of bytes read from
socket". This module captures that with a three-term cost model::

    cost(batch) = base + per_job * len(batch) + per_byte * sum(bytes)

each term sampled from a frequency-aware table, so DVFS slows all the
compute terms coherently. An optional *io* term models time the stage
spends blocked on a device (disk, for MongoDB misses): the CPU core is
released during I/O and the operation occupies the instance's
:class:`~repro.service.io.IoDevice`.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

from ..distributions import BufferedSampler, Distribution, FrequencyTable
from ..errors import ConfigError
from ..hardware.dvfs import GHZ
from .job import Job
from .queues import StageQueue

NOMINAL_FREQUENCY = 2.6 * GHZ

CostInput = Union[Distribution, FrequencyTable, None]


def as_frequency_table(
    cost: CostInput, nominal: float = NOMINAL_FREQUENCY
) -> Optional[FrequencyTable]:
    """Coerce a plain distribution into a single-point frequency table.

    A bare :class:`Distribution` is taken to be profiled at the nominal
    frequency and fully compute-bound (pure frequency-ratio scaling
    under DVFS); pass a :class:`FrequencyTable` for anything richer.
    """
    if cost is None:
        return None
    if isinstance(cost, FrequencyTable):
        return cost
    if isinstance(cost, Distribution):
        return FrequencyTable.single(cost, nominal)
    raise ConfigError(f"expected Distribution/FrequencyTable, got {cost!r}")


class Stage:
    """One execution phase of a microservice."""

    def __init__(
        self,
        name: str,
        stage_id: int,
        queue: StageQueue,
        base: CostInput = None,
        per_job: CostInput = None,
        per_byte: CostInput = None,
        io: Optional[Distribution] = None,
        batching: bool = False,
    ) -> None:
        if stage_id < 0:
            raise ConfigError(f"stage_id must be >= 0, got {stage_id}")
        if base is None and per_job is None and per_byte is None and io is None:
            raise ConfigError(
                f"stage {name!r} has no cost terms; give at least one of "
                f"base/per_job/per_byte/io"
            )
        self.name = name
        self.stage_id = stage_id
        self.queue = queue
        self.base = as_frequency_table(base)
        self.per_job = as_frequency_table(per_job)
        self.per_byte = as_frequency_table(per_byte)
        self.io = io
        self.batching = batching
        # Block-buffered samplers (attach_samplers): the fast path for
        # the per-batch cost draws. None until a microservice attaches
        # them; compute_cost falls back to scalar draws from the
        # caller's rng so standalone stages keep working.
        self._base_sampler = None
        self._per_job_sampler = None
        self._per_byte_sampler = None
        self._io_sampler = None
        # Telemetry.
        self.invocations = 0
        self.jobs_processed = 0
        self.busy_time = 0.0

    def attach_samplers(self, streams, prefix: str, block: int = 1024) -> None:
        """Serve this stage's cost draws from block-buffered samplers.

        *streams* is the simulation's :class:`~repro.engine.RandomStreams`;
        each cost term gets its own dedicated stream under *prefix* so
        the buffered draws have sole ownership of their generator (the
        :class:`~repro.distributions.BufferedSampler` determinism
        contract). Idempotent: re-attaching to the same streams factory
        reuses the same named streams and therefore the same sequence.
        """
        if self.base is not None:
            self._base_sampler = self.base.make_sampler(
                streams.stream(f"{prefix}/base"), block
            )
        if self.per_job is not None:
            self._per_job_sampler = self.per_job.make_sampler(
                streams.stream(f"{prefix}/per_job"), block
            )
        if self.per_byte is not None:
            self._per_byte_sampler = self.per_byte.make_sampler(
                streams.stream(f"{prefix}/per_byte"), block
            )
        if self.io is not None:
            self._io_sampler = BufferedSampler(
                self.io, streams.stream(f"{prefix}/io"), block
            )

    def compute_cost(
        self,
        batch: List[Job],
        frequency: float,
        rng: np.random.Generator,
    ) -> float:
        """CPU time (seconds) for executing *batch* at *frequency*."""
        if not batch:
            raise ConfigError(f"stage {self.name!r} asked to cost an empty batch")
        cost = 0.0
        if self.base is not None:
            sampler = self._base_sampler
            cost += (sampler.sample(frequency) if sampler is not None
                     else self.base.sample(rng, frequency))
        if self.per_job is not None:
            sampler = self._per_job_sampler
            n = len(batch)
            if sampler is not None:
                cost += sampler.sample(frequency) if n == 1 else sum(
                    sampler.take(n, frequency)
                )
            elif n == 1:
                cost += self.per_job.sample(rng, frequency)
            else:
                # Vectorised block draw; summing the Python floats keeps
                # the same left-fold as the scalar loop did.
                cost += sum(self.per_job.sample_many(rng, n, frequency).tolist())
        if self.per_byte is not None:
            total_bytes = sum(job.size_bytes for job in batch)
            if total_bytes > 0:
                sampler = self._per_byte_sampler
                draw = (sampler.sample(frequency) if sampler is not None
                        else self.per_byte.sample(rng, frequency))
                cost += draw * total_bytes
        return cost

    def io_cost(self, batch: List[Job], rng: np.random.Generator) -> float:
        """Device time the batch spends in I/O (0 when the stage has none)."""
        if self.io is None:
            return 0.0
        sampler = self._io_sampler
        n = len(batch)
        if sampler is not None:
            return sampler.sample() if n == 1 else sum(sampler.take(n))
        if n == 1:
            return self.io.sample(rng)
        return sum(self.io.sample_many(rng, n).tolist())

    def mean_cost(
        self,
        batch_size: int = 1,
        mean_bytes: float = 0.0,
        frequency: Optional[float] = None,
    ) -> float:
        """Expected per-invocation CPU cost — used by calibration and by
        the BigHouse folding (which charges the full, un-amortised stage
        cost to every request)."""
        cost = 0.0
        if self.base is not None:
            cost += self.base.mean(frequency)
        if self.per_job is not None:
            cost += batch_size * self.per_job.mean(frequency)
        if self.per_byte is not None:
            cost += batch_size * mean_bytes * self.per_byte.mean(frequency)
        return cost

    def record(self, batch_size: int, busy: float) -> None:
        """Telemetry hook called by the execution model."""
        self.invocations += 1
        self.jobs_processed += batch_size
        self.busy_time += busy

    def __repr__(self) -> str:
        return (
            f"<Stage {self.stage_id}:{self.name} queue={self.queue!r} "
            f"batching={self.batching}>"
        )
