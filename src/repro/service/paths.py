"""Execution paths and the probabilistic path-selection state machine.

Paper SSIII-B: "Multiple application logic stages are assembled to form
execution paths, corresponding to a microservice's different code
paths. Finally, the model of a microservice also includes a state
machine that specifies the probability that a microservice follows
different execution paths."

memcached's read/write paths are deterministic per request type;
MongoDB's hit/miss paths are probabilistic (a function of working-set
size vs allocated memory) — both use this module.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence

import numpy as np

from ..errors import ConfigError


class ExecutionPath:
    """An ordered walk through stage ids."""

    def __init__(self, path_id: int, name: str, stage_ids: Sequence[int]) -> None:
        if path_id < 0:
            raise ConfigError(f"path_id must be >= 0, got {path_id}")
        if not stage_ids:
            raise ConfigError(f"path {name!r} must contain at least one stage")
        self.path_id = path_id
        self.name = name
        self.stage_ids = list(int(s) for s in stage_ids)

    def __len__(self) -> int:
        return len(self.stage_ids)

    def __repr__(self) -> str:
        return f"<Path {self.path_id}:{self.name} stages={self.stage_ids}>"


class PathSelector:
    """Chooses the execution path for each incoming job.

    Selection precedence:

    1. an explicit ``path_id``/``path_name`` (the inter-microservice
       path node "specifies ... the execution path within the
       microservice"), else
    2. a draw from the configured probability distribution, else
    3. the only path, if there is exactly one.
    """

    def __init__(
        self,
        paths: Sequence[ExecutionPath],
        probabilities: Optional[Dict[int, float]] = None,
    ) -> None:
        if not paths:
            raise ConfigError("a microservice needs at least one execution path")
        self._by_id: Dict[int, ExecutionPath] = {}
        self._by_name: Dict[str, ExecutionPath] = {}
        for path in paths:
            if path.path_id in self._by_id:
                raise ConfigError(f"duplicate path_id {path.path_id}")
            if path.name in self._by_name:
                raise ConfigError(f"duplicate path name {path.name!r}")
            self._by_id[path.path_id] = path
            self._by_name[path.name] = path

        self._prob_ids: Optional[list] = None
        self._probs: Optional[np.ndarray] = None
        if probabilities is not None:
            unknown = set(probabilities) - set(self._by_id)
            if unknown:
                raise ConfigError(
                    f"probabilities reference unknown path ids {sorted(unknown)}"
                )
            total = sum(probabilities.values())
            if not math.isclose(total, 1.0, rel_tol=1e-9, abs_tol=1e-9):
                raise ConfigError(
                    f"path probabilities must sum to 1, got {total!r}"
                )
            if any(p < 0 for p in probabilities.values()):
                raise ConfigError("path probabilities must be non-negative")
            self._prob_ids = sorted(probabilities)
            self._probs = np.array(
                [probabilities[i] for i in self._prob_ids], dtype=float
            )

    @property
    def paths(self) -> list:
        return list(self._by_id.values())

    def get(self, path_id: int) -> ExecutionPath:
        try:
            return self._by_id[path_id]
        except KeyError:
            raise ConfigError(
                f"unknown path_id {path_id}; have {sorted(self._by_id)}"
            ) from None

    def get_by_name(self, name: str) -> ExecutionPath:
        try:
            return self._by_name[name]
        except KeyError:
            raise ConfigError(
                f"unknown path {name!r}; have {sorted(self._by_name)}"
            ) from None

    def select(
        self,
        rng: np.random.Generator,
        path_id: Optional[int] = None,
        path_name: Optional[str] = None,
    ) -> ExecutionPath:
        """Resolve the path for one job (see class docstring)."""
        if path_id is not None:
            return self.get(path_id)
        if path_name is not None:
            return self.get_by_name(path_name)
        if self._probs is not None:
            assert self._prob_ids is not None
            drawn = int(rng.choice(len(self._prob_ids), p=self._probs))
            return self._by_id[self._prob_ids[drawn]]
        if len(self._by_id) == 1:
            return next(iter(self._by_id.values()))
        raise ConfigError(
            "multiple paths but no probabilities configured and no "
            "explicit path requested"
        )

    def __repr__(self) -> str:
        return f"<PathSelector paths={sorted(self._by_id)}>"
