"""I/O devices (disks).

The paper's 3-tier validation is "primarily bottlenecked by the disk
I/O bandwidth of MongoDB" (SSIV-A), and blocking behaviour between
microservices includes "I/O accessing" (SSIII-C). An :class:`IoDevice`
is a k-channel FIFO server: operations queue when all channels are
busy, which is what makes the disk a saturating resource rather than a
fixed latency.

While a stage's batch is in I/O, the executing thread stays occupied
but the CPU core is released — see
:mod:`repro.service.execution_models`.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Tuple

from ..engine import PRIORITY_COMPLETION, Simulator
from ..errors import ConfigError


class IoDevice:
    """A shared device with *channels* parallel operations in flight."""

    def __init__(self, name: str, sim: Simulator, channels: int = 1) -> None:
        if channels < 1:
            raise ConfigError(f"io device {name!r} needs >= 1 channel")
        self.name = name
        self.sim = sim
        self.channels = channels
        self._busy = 0
        self._waiting: Deque[Tuple[float, Callable[[], None]]] = deque()
        # Telemetry.
        self.ops_completed = 0
        self.busy_time = 0.0

    @property
    def queue_depth(self) -> int:
        """Operations waiting for a channel."""
        return len(self._waiting)

    @property
    def in_flight(self) -> int:
        return self._busy

    def submit(self, duration: float, on_done: Callable[[], None]) -> None:
        """Request *duration* seconds of device time, then call *on_done*.

        Zero-duration submissions complete via the event queue too, so
        callers observe a consistent (asynchronous) completion order.
        """
        if duration < 0:
            raise ConfigError(f"negative io duration {duration!r}")
        self._waiting.append((duration, on_done))
        self._pump()

    def _pump(self) -> None:
        while self._busy < self.channels and self._waiting:
            duration, on_done = self._waiting.popleft()
            self._busy += 1
            self.busy_time += duration
            self.sim.schedule(
                duration,
                self._complete,
                on_done,
                priority=PRIORITY_COMPLETION,
            )

    def _complete(self, on_done: Callable[[], None]) -> None:
        self._busy -= 1
        self.ops_completed += 1
        on_done()
        self._pump()

    def utilization(self, now: float, since: float = 0.0) -> float:
        """Approximate device utilisation over ``[since, now]``."""
        if now <= since:
            return 0.0
        return min(1.0, self.busy_time / ((now - since) * self.channels))

    def __repr__(self) -> str:
        return (
            f"<IoDevice {self.name} busy={self._busy}/{self.channels} "
            f"waiting={self.queue_depth}>"
        )
