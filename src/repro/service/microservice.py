"""The microservice instance: application logic + execution model.

Paper SSIII-B: "uqSim models each individual microservice with two
orthogonal components: application logic and execution model." Here
they meet: a :class:`Microservice` owns the stages/paths (application
logic), an :class:`~repro.service.execution_models.ExecutionModel`
(threads), a pinned :class:`~repro.hardware.core.CoreSet`, and an
optional :class:`~repro.service.io.IoDevice`.

Dispatch is fully event-driven. Work starts when

* a job is accepted,
* a core is released,
* a worker finishes a stage (or returns from I/O), or
* a blocked connection is unblocked,

and each dispatch round greedily starts every (worker, core, batch)
triple it can find, draining later pipeline stages before earlier ones
so in-flight requests complete before new ones are admitted — the same
run-to-completion bias real event-driven servers exhibit.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Set

from ..engine import PRIORITY_COMPLETION, Simulator
from ..errors import ConfigError, FaultError
from ..hardware.core import CoreSet, CpuCore
from .connections import Connection
from .execution_models import ExecutionModel, SimpleModel, Worker
from .io import IoDevice
from .job import Job
from .paths import ExecutionPath, PathSelector
from .stage import Stage

# Instance lifecycle states (fault injection / resilience layer).
STATE_UP = "up"
STATE_DRAINING = "draining"
STATE_DOWN = "down"


class Microservice:
    """One deployed instance of a microservice model."""

    def __init__(
        self,
        name: str,
        sim: Simulator,
        stages: Sequence[Stage],
        selector: PathSelector,
        cores: CoreSet,
        model: Optional[ExecutionModel] = None,
        machine_name: str = "",
        tier: str = "",
        io_device: Optional[IoDevice] = None,
    ) -> None:
        if not stages:
            raise ConfigError(f"microservice {name!r} needs at least one stage")
        self.name = name
        self.sim = sim
        self.selector = selector
        self.cores = cores
        self.model = model or SimpleModel()
        self.machine_name = machine_name
        self.tier = tier or name
        self.io_device = io_device

        self._stages: Dict[int, Stage] = {}
        for stage in stages:
            if stage.stage_id in self._stages:
                raise ConfigError(
                    f"microservice {name!r}: duplicate stage_id {stage.stage_id}"
                )
            self._stages[stage.stage_id] = stage
        for path in selector.paths:
            missing = [s for s in path.stage_ids if s not in self._stages]
            if missing:
                raise ConfigError(
                    f"microservice {name!r}: path {path.name!r} references "
                    f"unknown stages {missing}"
                )
        # Dispatch scan order: later pipeline stages first (descending
        # stage id — stage ids are pipeline-ordered by convention).
        self._scan_order: List[Stage] = [
            self._stages[sid] for sid in sorted(self._stages, reverse=True)
        ]

        self._rng = sim.random.stream(f"service/{name}")
        # Stage cost draws come from block-buffered samplers on
        # dedicated per-stage streams — the hottest stochastic path in
        # the simulator (one to three draws per executed batch).
        for sid, stage in self._stages.items():
            stage.attach_samplers(sim.random, f"service/{name}/stage{sid}")
        self._subscribed_conns: Set[int] = set()
        self._in_dispatch = False
        self.cores.on_release(self._kick)

        # Lifecycle (fault injection): up -> draining/down -> up.
        self.state = STATE_UP
        # Straggler degradation: all stage costs are multiplied by this.
        self.slow_factor = 1.0
        # Batches currently on a core, keyed by their completion event,
        # so a crash can cancel them and reclaim cores/workers.
        self._running: Dict[object, tuple] = {}

        # Telemetry.
        self.jobs_accepted = 0
        self.jobs_completed = 0
        self.jobs_failed = 0
        self.crashes = 0
        # Optional MetricsRegistry (repro.telemetry.metrics): when set,
        # per-stage batch costs and job completions feed it. None keeps
        # the hot path at a single attribute check.
        self.metrics = None
        # In-flight node visits from the dispatcher's point of view:
        # incremented at instance selection (before the network hop),
        # decremented when the node's job completes. This is what
        # least-outstanding balancing must consult — accepted-minus-
        # completed lags by the network delay.
        self.pending_dispatch = 0
        self.latency_listeners: List[Callable[[Job], None]] = []

    # Introspection ------------------------------------------------------

    @property
    def stages(self) -> List[Stage]:
        return [self._stages[sid] for sid in sorted(self._stages)]

    def stage(self, stage_id: int) -> Stage:
        try:
            return self._stages[stage_id]
        except KeyError:
            raise ConfigError(
                f"microservice {self.name!r} has no stage {stage_id}"
            ) from None

    @property
    def queued_jobs(self) -> int:
        """Jobs waiting in any stage queue (not executing)."""
        return sum(len(stage.queue) for stage in self._stages.values())

    @property
    def frequency(self) -> float:
        return self.cores.frequency

    def set_frequency(self, frequency: float) -> float:
        """DVFS this instance's cores (power-management actuation)."""
        return self.cores.set_frequency(frequency)

    # Lifecycle (fault injection) ----------------------------------------

    @property
    def healthy(self) -> bool:
        """True when the instance may receive NEW work (state ``up``).

        Health-aware load balancers consult this to skip down and
        draining replicas.
        """
        return self.state == STATE_UP

    def crash(self, disposition: str = "fail") -> List[Job]:
        """Kill the instance: stop executing, lose the backlog.

        In-flight disposition: with ``"fail"`` every queued and
        executing job fires its ``on_fail`` callback (the upstream sees
        a reset connection and can retry); with ``"drop"`` jobs vanish
        silently (a network black hole — only a timeout surfaces it).
        Cores and workers held by executing batches are reclaimed
        immediately. Returns the killed jobs.
        """
        if disposition not in ("fail", "drop"):
            raise FaultError(
                f"unknown crash disposition {disposition!r}; "
                f"expected 'fail' or 'drop'"
            )
        if self.state == STATE_DOWN:
            return []
        self.state = STATE_DOWN
        self.crashes += 1
        killed: List[Job] = []
        for event, (_stage, batch, worker, core) in list(self._running.items()):
            self.sim.cancel(event)
            self.model.release_worker(worker)
            if core is not None:
                self.cores.release(core, self.sim.now)
            killed.extend(batch)
        self._running.clear()
        for stage in self._stages.values():
            killed.extend(stage.queue.drain())
        for job in killed:
            self._fail_job(job, notify=disposition == "fail")
        return killed

    def start_draining(self) -> None:
        """Stop taking new work (balancers skip this instance) while
        letting already-admitted jobs run to completion."""
        if self.state == STATE_DOWN:
            raise FaultError(f"{self.name!r} is down; recover before draining")
        self.state = STATE_DRAINING

    def recover(self) -> None:
        """Bring a down/draining instance back up and resume dispatch."""
        self.state = STATE_UP
        self._kick()

    def degrade(self, slow_factor: float) -> None:
        """Make the instance a straggler: multiply every stage cost by
        *slow_factor* (>= 1). ``1.0`` restores nominal speed."""
        if slow_factor < 1.0:
            raise FaultError(f"slow_factor must be >= 1, got {slow_factor!r}")
        self.slow_factor = float(slow_factor)

    def cancel_job(self, job: Job) -> bool:
        """Withdraw a queued *job* (request cancellation); True if the
        job was still queued and its slot has been reclaimed. Executing
        jobs cannot be reclaimed — their completion is suppressed via
        ``job.cancelled`` instead."""
        if job.path is None or job.stage_pos >= len(job.path.stage_ids):
            return False
        return self._stages[job.current_stage_id].queue.remove(job)

    def _fail_job(self, job: Job, notify: bool = True) -> None:
        self.jobs_failed += 1
        # Resource reclamation runs even for silent ("drop") losses;
        # only the application-visible failure callback is gated.
        if job.on_discard is not None and not job.cancelled:
            job.on_discard(job)
        if notify and job.on_fail is not None and not job.cancelled:
            job.on_fail(job)

    # Job intake ---------------------------------------------------------

    def accept(
        self,
        job: Job,
        path_id: Optional[int] = None,
        path_name: Optional[str] = None,
    ) -> None:
        """Admit *job*: select its execution path and queue stage 0.

        A down instance refuses the job outright (connection refused):
        the job fails without consuming any resources.
        """
        if self.state == STATE_DOWN:
            self._fail_job(job)
            return
        job.service = self
        job.path = self.selector.select(self._rng, path_id, path_name)
        job.stage_pos = 0
        job.created_at = self.sim.now
        self.jobs_accepted += 1
        if job.connection is not None and job.connection.conn_id not in self._subscribed_conns:
            self._subscribed_conns.add(job.connection.conn_id)
            job.connection.on_unblock(self._kick)
        self._enqueue(job)
        self._kick()

    def _enqueue(self, job: Job) -> None:
        self._stages[job.current_stage_id].queue.push(job)

    # Dispatch loop ------------------------------------------------------

    def _kick(self) -> None:
        """(Re)enter the dispatch loop unless already inside it."""
        if self._in_dispatch:
            return
        self._in_dispatch = True
        try:
            self._dispatch_all()
        finally:
            self._in_dispatch = False

    def _dispatch_all(self) -> None:
        if self.state == STATE_DOWN:
            return
        progress = True
        while progress:
            progress = False
            for stage in self._scan_order:
                if not stage.queue.has_ready():
                    continue
                if self._start_execution(stage):
                    progress = True
                    break  # rescan from the deepest stage

    def _start_execution(self, stage: Stage) -> bool:
        """Try to start one batch on *stage*; True if work began."""
        worker = self.model.acquire_worker()
        if worker is None:
            return False
        core = self.cores.try_acquire(self.sim.now)
        if core is None:
            self.model.release_worker(worker)
            return False
        batch = stage.queue.next_batch()
        if not batch:
            self.cores.release(core, self.sim.now)
            self.model.release_worker(worker)
            return False
        for job in batch:
            if job.first_dispatch_at is None:
                job.first_dispatch_at = self.sim.now
        cost = stage.compute_cost(batch, core.frequency, self._rng)
        cost += self.model.dispatch_overhead(worker, core)
        cost *= self.slow_factor
        stage.record(len(batch), cost)
        if self.metrics is not None:
            self.metrics.histogram(
                "stage_cost_seconds", service=self.name, stage=stage.name
            ).observe(cost)
        event = self.sim.schedule(
            cost,
            self._on_cpu_done,
            stage,
            batch,
            worker,
            core,
            priority=PRIORITY_COMPLETION,
        )
        self._running[event] = (stage, batch, worker, core)
        return True

    def _on_cpu_done(
        self,
        stage: Stage,
        batch: List[Job],
        worker: Worker,
        core: CpuCore,
    ) -> None:
        for event, (_s, running_batch, _w, _c) in self._running.items():
            if running_batch is batch:
                del self._running[event]
                break
        if stage.io is not None:
            if self.io_device is None:
                raise ConfigError(
                    f"stage {stage.name!r} of {self.name!r} has an io cost "
                    f"but the instance has no io_device"
                )
            # The core frees during I/O while the worker stays blocked.
            worker.blocked = True
            io_time = stage.io_cost(batch, self._rng)
            self.cores.release(core, self.sim.now)
            self.io_device.submit(
                io_time, lambda: self._finish_stage(stage, batch, worker)
            )
            return
        self._finish_stage(stage, batch, worker, core)

    def _finish_stage(
        self,
        stage: Stage,
        batch: List[Job],
        worker: Worker,
        core: Optional[CpuCore] = None,
    ) -> None:
        # Advance jobs BEFORE releasing the core: the release callback
        # re-enters dispatch, and the freshly finished jobs must already
        # sit in their next stage queue so the scan's later-stage-first
        # preference sees them (run-to-completion bias).
        self.model.release_worker(worker)
        if self.state == STATE_DOWN:
            # The instance crashed while this batch was blocked on I/O
            # (CPU batches are cancelled outright): the results are lost.
            for job in batch:
                self._fail_job(job)
            if core is not None:
                self.cores.release(core, self.sim.now)
            return
        for job in batch:
            job.stage_pos += 1
            if job.stage_pos < len(job.path.stage_ids):
                self._enqueue(job)
            else:
                self._complete_job(job)
        if core is not None:
            self.cores.release(core, self.sim.now)
        self._kick()

    def _complete_job(self, job: Job) -> None:
        job.completed_at = self.sim.now
        self.jobs_completed += 1
        if self.metrics is not None:
            self.metrics.counter("jobs_completed_total", service=self.name).inc()
            if job.service_latency is not None:
                self.metrics.histogram(
                    "job_latency_seconds", service=self.name
                ).observe(job.service_latency)
        if job.cancelled:
            # The owning request was cancelled (timeout / hedge loser)
            # after this job reached a core: the work is spent, but the
            # result must not propagate or pollute latency telemetry.
            return
        for listener in self.latency_listeners:
            listener(job)
        if job.on_complete is not None:
            job.on_complete(job)

    # Telemetry ----------------------------------------------------------

    def on_job_complete(self, listener: Callable[[Job], None]) -> None:
        """Register a per-job completion listener (latency recorders)."""
        self.latency_listeners.append(listener)

    def utilization(self, now: float, since: float = 0.0) -> float:
        return self.cores.utilization(now, since)

    def __repr__(self) -> str:
        return (
            f"<Microservice {self.name} stages={len(self._stages)} "
            f"cores={len(self.cores)} model={self.model!r}>"
        )
