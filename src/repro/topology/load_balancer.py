"""Load-balancing policies for picking among instances of a tier.

Paper SSIV-B constructs load balancing with an NGINX proxy that picks a
webserver "in a round-robin fashion"; the same policy object is used by
the dispatcher whenever a path node names a service with multiple
deployed instances.
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from ..errors import TopologyError
from ..service import Microservice


class NoHealthyInstance(TopologyError):
    """Every replica of the tier is down or draining.

    The dispatcher turns this into a fast request failure (outcome
    ``failed``) rather than letting it propagate.
    """


def healthy_subset(instances: Sequence[Microservice]) -> Sequence[Microservice]:
    """Filter to replicas currently accepting new work.

    Instances without a lifecycle ``healthy`` attribute (plain stubs in
    tests) are assumed up. Returns the original sequence when every
    instance is healthy, so the common fault-free path allocates
    nothing.
    """
    if all(getattr(inst, "healthy", True) for inst in instances):
        return instances
    return [inst for inst in instances if getattr(inst, "healthy", True)]


class LoadBalancer(abc.ABC):
    """Chooses which instance of a tier serves the next request.

    All policies are health-aware: down and draining replicas are
    skipped, and :class:`NoHealthyInstance` is raised when nothing is
    left to pick from.

    ``on_pick`` is an optional observability hook
    (:meth:`~repro.telemetry.metrics.MetricsRegistry.instrument_balancer`
    installs a per-instance pick counter); it is called with every
    chosen instance.
    """

    #: Optional callable(instance) fired on every pick (metrics hook).
    on_pick = None

    def _chose(self, instance: Microservice) -> Microservice:
        if self.on_pick is not None:
            self.on_pick(instance)
        return instance

    @abc.abstractmethod
    def pick(
        self,
        instances: Sequence[Microservice],
        rng: np.random.Generator,
    ) -> Microservice:
        """Select one healthy instance from a non-empty list."""

    def _eligible(
        self, instances: Sequence[Microservice]
    ) -> Sequence[Microservice]:
        if not instances:
            raise TopologyError("load balancer asked to pick from no instances")
        alive = healthy_subset(instances)
        if not alive:
            raise NoHealthyInstance(
                f"all {len(instances)} instances are down or draining"
            )
        return alive


class RoundRobin(LoadBalancer):
    """Strict rotation, the policy of the paper's LB validation.

    The rotation counter advances over the *healthy* subset, so a down
    replica's slots redistribute evenly instead of stalling every Nth
    request.
    """

    def __init__(self) -> None:
        self._next = 0

    def pick(
        self,
        instances: Sequence[Microservice],
        rng: np.random.Generator,
    ) -> Microservice:
        alive = self._eligible(instances)
        chosen = alive[self._next % len(alive)]
        self._next += 1
        return self._chose(chosen)


class RandomChoice(LoadBalancer):
    """Uniform random selection among healthy replicas."""

    def pick(
        self,
        instances: Sequence[Microservice],
        rng: np.random.Generator,
    ) -> Microservice:
        alive = self._eligible(instances)
        return self._chose(alive[int(rng.integers(len(alive)))])


class LeastOutstanding(LoadBalancer):
    """Pick the healthy instance with the fewest in-flight node visits
    (ties broken by deployment order for determinism).

    Uses the dispatcher-maintained ``pending_dispatch`` counter, which
    counts from instance *selection* — the accepted-minus-completed
    difference lags by the network delay and would let a burst pile
    onto one replica.
    """

    def pick(
        self,
        instances: Sequence[Microservice],
        rng: np.random.Generator,
    ) -> Microservice:
        alive = self._eligible(instances)

        def load(inst: Microservice) -> int:
            pending = getattr(inst, "pending_dispatch", None)
            if pending is not None:
                return pending
            return inst.jobs_accepted - inst.jobs_completed

        return self._chose(min(alive, key=load))


POLICIES = {
    "round_robin": RoundRobin,
    "random": RandomChoice,
    "least_outstanding": LeastOutstanding,
}


def make_load_balancer(policy: str) -> LoadBalancer:
    """Factory used by graph.json's per-service ``lb_policy`` field."""
    try:
        return POLICIES[policy]()
    except KeyError:
        raise TopologyError(
            f"unknown lb policy {policy!r}; expected one of {sorted(POLICIES)}"
        ) from None
