"""Load-balancing policies for picking among instances of a tier.

Paper SSIV-B constructs load balancing with an NGINX proxy that picks a
webserver "in a round-robin fashion"; the same policy object is used by
the dispatcher whenever a path node names a service with multiple
deployed instances.
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from ..errors import TopologyError
from ..service import Microservice


class LoadBalancer(abc.ABC):
    """Chooses which instance of a tier serves the next request."""

    @abc.abstractmethod
    def pick(
        self,
        instances: Sequence[Microservice],
        rng: np.random.Generator,
    ) -> Microservice:
        """Select one instance from a non-empty list."""

    def _require_instances(self, instances: Sequence[Microservice]) -> None:
        if not instances:
            raise TopologyError("load balancer asked to pick from no instances")


class RoundRobin(LoadBalancer):
    """Strict rotation, the policy of the paper's LB validation."""

    def __init__(self) -> None:
        self._next = 0

    def pick(
        self,
        instances: Sequence[Microservice],
        rng: np.random.Generator,
    ) -> Microservice:
        self._require_instances(instances)
        chosen = instances[self._next % len(instances)]
        self._next += 1
        return chosen


class RandomChoice(LoadBalancer):
    """Uniform random selection."""

    def pick(
        self,
        instances: Sequence[Microservice],
        rng: np.random.Generator,
    ) -> Microservice:
        self._require_instances(instances)
        return instances[int(rng.integers(len(instances)))]


class LeastOutstanding(LoadBalancer):
    """Pick the instance with the fewest in-flight node visits (ties
    broken by deployment order for determinism).

    Uses the dispatcher-maintained ``pending_dispatch`` counter, which
    counts from instance *selection* — the accepted-minus-completed
    difference lags by the network delay and would let a burst pile
    onto one replica.
    """

    def pick(
        self,
        instances: Sequence[Microservice],
        rng: np.random.Generator,
    ) -> Microservice:
        self._require_instances(instances)
        return min(
            instances,
            key=lambda inst: getattr(
                inst,
                "pending_dispatch",
                inst.jobs_accepted - inst.jobs_completed,
            ),
        )


POLICIES = {
    "round_robin": RoundRobin,
    "random": RandomChoice,
    "least_outstanding": LeastOutstanding,
}


def make_load_balancer(policy: str) -> LoadBalancer:
    """Factory used by graph.json's per-service ``lb_policy`` field."""
    try:
        return POLICIES[policy]()
    except KeyError:
        raise TopologyError(
            f"unknown lb policy {policy!r}; expected one of {sorted(POLICIES)}"
        ) from None
