"""Inter-microservice model (paper SSIII-C) — the second half of
uqSim's core contribution.

A :class:`PathTree` is the DAG of :class:`PathNode` visits a request
makes (fan-out copies, fan-in synchronisation, blocking ops); a
:class:`Deployment` maps tiers to deployed instances, balancers,
netprocs, and connection pools; the :class:`Dispatcher` is the central
scheduler walking requests through both.
"""

from .deployment import DEFAULT_POOL_SIZE, Deployment
from .dispatcher import Dispatcher
from .load_balancer import (
    LeastOutstanding,
    LoadBalancer,
    NoHealthyInstance,
    RandomChoice,
    RoundRobin,
    healthy_subset,
    make_load_balancer,
)
from .path_tree import NodeOp, PathNode, PathTree

__all__ = [
    "DEFAULT_POOL_SIZE",
    "Deployment",
    "Dispatcher",
    "LeastOutstanding",
    "LoadBalancer",
    "NodeOp",
    "NoHealthyInstance",
    "PathNode",
    "PathTree",
    "RandomChoice",
    "RoundRobin",
    "healthy_subset",
    "make_load_balancer",
]
