"""Inter-microservice paths: the path-node DAG.

Paper SSIII-C, the three roles of a path node:

* **Traversal** — "Specify the microservice, the execution path within
  the microservice, and the order of traversing individual
  microservices ... Each path node can have multiple children, and
  after execution on the current path node is complete, uqSim makes a
  copy of the job for each child node" (fan-out).
* **Synchronization** — "before entering a new path node, a job must
  wait until execution in all parent nodes is complete" (fan-in).
* **Blocking** — "each path node has two operation fields, one upon
  entering the node and another upon leaving the node, to trigger
  blocking or unblocking events on a specific connection".

The structure is a DAG: fan-out gives a node several children, fan-in
gives a node several parents. ``same_instance_as`` pins a node to the
instance the request already visited at an earlier node — the way a
response is composed by the *same* NGINX/Thrift process that accepted
the request.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from ..distributions import Distribution
from ..errors import TopologyError


class NodeOp:
    """A blocking/unblocking action attached to node entry or exit.

    ``connection_of`` names the path node whose *incoming* connection is
    targeted; ``None`` means the current node's own incoming connection.
    Unblocking matches the initiating request id, per the paper's
    job-id matching description.
    """

    BLOCK = "block"
    UNBLOCK = "unblock"
    _ACTIONS = (BLOCK, UNBLOCK)

    def __init__(self, action: str, connection_of: Optional[str] = None) -> None:
        if action not in self._ACTIONS:
            raise TopologyError(
                f"unknown op action {action!r}; expected one of {self._ACTIONS}"
            )
        self.action = action
        self.connection_of = connection_of

    @classmethod
    def block(cls, connection_of: Optional[str] = None) -> "NodeOp":
        return cls(cls.BLOCK, connection_of)

    @classmethod
    def unblock(cls, connection_of: Optional[str] = None) -> "NodeOp":
        return cls(cls.UNBLOCK, connection_of)

    def __repr__(self) -> str:
        target = self.connection_of or "<self>"
        return f"NodeOp({self.action}, conn_of={target})"


class PathNode:
    """One visit to a microservice along the request's journey."""

    def __init__(
        self,
        name: str,
        service: str,
        path_id: Optional[int] = None,
        path_name: Optional[str] = None,
        same_instance_as: Optional[str] = None,
        on_enter: Optional[NodeOp] = None,
        on_leave: Optional[NodeOp] = None,
        request_bytes: Union[float, Distribution, None] = None,
    ) -> None:
        """
        *service* is the tier (service name) to visit; *path_id* /
        *path_name* optionally pin the execution path inside it.
        *request_bytes* sets the message size carried into this node
        (float, a distribution, or ``None`` to inherit the request's
        size).
        """
        if not name:
            raise TopologyError("path node needs a non-empty name")
        if not service:
            raise TopologyError(f"path node {name!r} needs a service")
        self.name = name
        self.service = service
        self.path_id = path_id
        self.path_name = path_name
        self.same_instance_as = same_instance_as
        self.on_enter = on_enter
        self.on_leave = on_leave
        self.request_bytes = request_bytes

    def message_bytes(self, request_size: float, rng) -> float:
        """Resolve the message size carried into this node."""
        if self.request_bytes is None:
            return request_size
        if isinstance(self.request_bytes, Distribution):
            return self.request_bytes.sample(rng)
        return float(self.request_bytes)

    def __repr__(self) -> str:
        return f"<PathNode {self.name} -> {self.service}>"


class PathTree:
    """A named DAG of path nodes for one request type.

    Multiple trees (with selection probabilities) express control-flow
    variability across request types — see
    :class:`~repro.topology.dispatcher.Dispatcher`.
    """

    def __init__(
        self,
        name: str = "default",
        response_bytes: Union[float, Distribution, None] = None,
    ) -> None:
        """*response_bytes* sizes the final message back to the client
        (``None`` = inherit the request's payload size)."""
        self.name = name
        self.response_bytes = response_bytes
        self._nodes: Dict[str, PathNode] = {}
        self._children: Dict[str, List[str]] = {}
        self._parents: Dict[str, List[str]] = {}

    def response_size(self, request_size: float, rng) -> float:
        """Resolve the size of the response message to the client."""
        if self.response_bytes is None:
            return request_size
        if isinstance(self.response_bytes, Distribution):
            return self.response_bytes.sample(rng)
        return float(self.response_bytes)

    # Construction -------------------------------------------------------

    def add_node(self, node: PathNode) -> PathNode:
        if node.name in self._nodes:
            raise TopologyError(f"duplicate path node {node.name!r}")
        self._nodes[node.name] = node
        self._children[node.name] = []
        self._parents[node.name] = []
        return node

    def add_edge(self, parent: str, child: str) -> None:
        for name in (parent, child):
            if name not in self._nodes:
                raise TopologyError(f"edge references unknown node {name!r}")
        if child in self._children[parent]:
            raise TopologyError(f"duplicate edge {parent!r} -> {child!r}")
        self._children[parent].append(child)
        self._parents[child].append(parent)

    def chain(self, *nodes: PathNode) -> "PathTree":
        """Convenience: add nodes connected in a linear sequence."""
        previous = None
        for node in nodes:
            self.add_node(node)
            if previous is not None:
                self.add_edge(previous.name, node.name)
            previous = node
        return self

    # Queries ------------------------------------------------------------

    def node(self, name: str) -> PathNode:
        try:
            return self._nodes[name]
        except KeyError:
            raise TopologyError(
                f"unknown path node {name!r}; have {sorted(self._nodes)}"
            ) from None

    @property
    def nodes(self) -> List[PathNode]:
        return list(self._nodes.values())

    def children(self, name: str) -> List[PathNode]:
        return [self._nodes[c] for c in self._children[name]]

    def parents(self, name: str) -> List[PathNode]:
        return [self._nodes[p] for p in self._parents[name]]

    def fan_in(self, name: str) -> int:
        """Completions required before *name* may start (>= 1)."""
        return max(1, len(self._parents[name]))

    @property
    def roots(self) -> List[PathNode]:
        """Entry nodes (no parents) — where client requests land."""
        return [n for n in self._nodes.values() if not self._parents[n.name]]

    @property
    def sinks(self) -> List[PathNode]:
        """Terminal nodes; the request completes when all have run."""
        return [n for n in self._nodes.values() if not self._children[n.name]]

    def validate(self) -> None:
        """Check the DAG is non-empty, rooted, acyclic, and that
        ``same_instance_as``/op references point at real nodes."""
        if not self._nodes:
            raise TopologyError(f"path tree {self.name!r} has no nodes")
        if not self.roots:
            raise TopologyError(f"path tree {self.name!r} has no root (cycle?)")
        # Kahn's algorithm for cycle detection.
        in_degree = {n: len(p) for n, p in self._parents.items()}
        frontier = [n for n, d in in_degree.items() if d == 0]
        visited = 0
        while frontier:
            name = frontier.pop()
            visited += 1
            for child in self._children[name]:
                in_degree[child] -= 1
                if in_degree[child] == 0:
                    frontier.append(child)
        if visited != len(self._nodes):
            raise TopologyError(f"path tree {self.name!r} contains a cycle")
        for node in self._nodes.values():
            if node.same_instance_as is not None:
                if node.same_instance_as not in self._nodes:
                    raise TopologyError(
                        f"node {node.name!r}: same_instance_as references "
                        f"unknown node {node.same_instance_as!r}"
                    )
            for op in (node.on_enter, node.on_leave):
                if op is not None and op.connection_of is not None:
                    if op.connection_of not in self._nodes:
                        raise TopologyError(
                            f"node {node.name!r}: op references unknown "
                            f"node {op.connection_of!r}"
                        )

    def __len__(self) -> int:
        return len(self._nodes)

    def __repr__(self) -> str:
        return f"<PathTree {self.name} nodes={len(self)}>"
