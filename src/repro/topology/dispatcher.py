"""The central dispatcher.

Paper SSIII-A: "uqSim is an event-driven simulator, and uses a
centralized scheduler to dispatch requests to the appropriate
microservices instances."

The dispatcher walks each request through its path tree:

1. pick the tree for the request (by request type, or probabilistically
   when the application "exhibits control flow variability");
2. enter each root node: choose an instance (load balancer or
   ``same_instance_as`` affinity), check out a connection, apply
   enter-ops (http1.1-style blocking), route the message over the
   network — through the per-machine network-processing services for
   cross-machine hops — and hand the job to the instance;
3. on job completion apply leave-ops, then fan out copies to children,
   entering each child only once all of its parents completed (fan-in
   synchronisation);
4. when every sink node has completed, send the response back to the
   client and fire the completion callback.

On top of that request walk sits the resilience layer
(:mod:`repro.resilience`): a request submitted with a
:class:`~repro.resilience.ResiliencePolicy` may be shed at admission,
timed out mid-flight (with real cancellation — queue slots, blocks and
connections are reclaimed), retried with backoff under a retry budget,
hedged with cancel-on-first-response, or failed fast by a per
(upstream, service) circuit breaker. Every request resolves with a
terminal ``outcome`` (``ok``/``timeout``/``shed``/``failed``).
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from ..engine import PRIORITY_ARRIVAL, Simulator
from ..errors import TopologyError
from ..hardware import NetworkFabric
from ..resilience import CircuitBreaker, ResiliencePolicy
from ..service import Connection, Job, Microservice, Request
from ..service.job import (
    OUTCOME_FAILED,
    OUTCOME_OK,
    OUTCOME_SHED,
    OUTCOME_TIMEOUT,
)
from ..telemetry.metrics import MetricsRegistry
from ..telemetry.tracing import SPAN_CANCELLED, Span, TraceConfig, Tracer
from .deployment import Deployment
from .load_balancer import NoHealthyInstance
from .path_tree import NodeOp, PathNode, PathTree


class _RequestGroup:
    """Book-keeping for one logical request across all its attempts.

    The group owns the resilience decisions (shed / retry / hedge /
    resolve); each traversal of the path tree — primary, retry, or
    hedge — is a :class:`_RequestState`.
    """

    __slots__ = (
        "request",
        "policy",
        "on_complete",
        "client_name",
        "client_machine",
        "states",
        "resolved",
        "hedges",
        "hedge_event",
        "trace",
    )

    def __init__(
        self,
        request: Request,
        policy: Optional[ResiliencePolicy],
        on_complete: Optional[Callable[[Request], None]],
        client_name: str,
        client_machine: str,
    ) -> None:
        self.request = request
        self.policy = policy
        self.on_complete = on_complete
        self.client_name = client_name
        self.client_machine = client_machine
        self.states: List[_RequestState] = []
        self.resolved = False
        self.hedges = 0
        self.hedge_event = None
        # The request's Trace when it was sampled for tracing.
        self.trace = None

    def live_states(self) -> List["_RequestState"]:
        """Attempts still traversing the tree."""
        return [s for s in self.states if not s.cancelled and not s.finished]


class _RequestState:
    """Book-keeping for one in-flight traversal (attempt) of the tree."""

    __slots__ = (
        "group",
        "tree",
        "attempt",
        "node_instance",
        "node_conn",
        "node_job",
        "node_upstream",
        "entered",
        "left",
        "arrivals",
        "pending_sinks",
        "used_conns",
        "cancelled",
        "finished",
        "timeout_event",
        "spans",
    )

    def __init__(self, group: _RequestGroup, tree: PathTree) -> None:
        self.group = group
        self.tree = tree
        # Attempt id: 0 for the primary, 1.. for retries/hedges. Spans
        # are keyed (attempt, node) so re-visits never clobber earlier
        # attempts' timestamps.
        self.attempt = len(group.states)
        self.node_instance: Dict[str, Microservice] = {}
        self.node_conn: Dict[str, Optional[Connection]] = {}
        self.node_job: Dict[str, Job] = {}
        self.node_upstream: Dict[str, str] = {}
        self.entered: Dict[str, bool] = {}
        self.left: Dict[str, bool] = {}
        self.arrivals: Dict[str, int] = {}
        self.pending_sinks = len(tree.sinks)
        self.used_conns: List[Connection] = []
        self.cancelled = False
        self.finished = False
        self.timeout_event = None
        # This attempt's open/closed spans by node name (traced only).
        self.spans: Dict[str, Span] = {} if group.trace is not None else None

    @property
    def request(self) -> Request:
        return self.group.request


class Dispatcher:
    """Routes requests through path trees over a deployment."""

    def __init__(
        self,
        sim: Simulator,
        deployment: Deployment,
        network: Optional[NetworkFabric] = None,
        trace: Union[bool, TraceConfig] = False,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        """With tracing on (``trace=True`` for defaults, or a
        :class:`~repro.telemetry.tracing.TraceConfig` for sampling /
        breakdown control), every sampled request carries a
        :class:`~repro.telemetry.tracing.Trace` of attempt-aware spans
        in ``request.metadata["trace"]`` — the raw material for
        critical-path analysis and the Perfetto/OTLP exporters. With a
        :class:`~repro.telemetry.metrics.MetricsRegistry` attached via
        *metrics*, the dispatcher additionally feeds aggregate
        counters/histograms (outcomes, retries, hedges, per-edge
        traffic, end-to-end latency)."""
        self.sim = sim
        self.deployment = deployment
        self.network = network or NetworkFabric()
        self._tracer: Optional[Tracer] = None
        self.trace = trace
        self.metrics = metrics
        self._rng = sim.random.stream("dispatcher")
        # Wire-delay jitter draws, block-buffered on a dedicated stream
        # (two draws per request hop — a hot path under heavy traffic).
        self._net_delay = self.network.delay_sampler(
            sim.random.stream("dispatcher/network")
        )
        self._trees: List[Tuple[PathTree, float]] = []
        self._trees_by_type: Dict[str, PathTree] = {}
        self._trees_by_name: Dict[str, PathTree] = {}
        self._breakers: Dict[Tuple[str, str], CircuitBreaker] = {}
        # Telemetry.
        self.requests_submitted = 0
        self.requests_completed = 0
        self.requests_timed_out = 0
        self.requests_failed = 0
        self.requests_shed = 0
        self.attempts_launched = 0
        self.retries_issued = 0
        self.hedges_issued = 0
        self.fallbacks_served = 0
        self.messages_dropped = 0
        self._outcome_listeners: List[Callable[[Request], None]] = []

    # Tracing --------------------------------------------------------------

    @property
    def trace(self) -> Union[bool, TraceConfig]:
        """The active :class:`TraceConfig`, or ``False`` when tracing
        is off — so ``if dispatcher.trace:`` keeps working."""
        return self._tracer.config if self._tracer is not None else False

    @trace.setter
    def trace(self, value: Union[bool, TraceConfig, None]) -> None:
        """Turn tracing on (``True`` / a :class:`TraceConfig`) or off
        (falsy). Sampling draws come from a dedicated seeded stream, so
        traced runs stay reproducible."""
        if not value:
            self._tracer = None
            return
        config = value if isinstance(value, TraceConfig) else TraceConfig()
        self._tracer = Tracer(
            config, rng=self.sim.random.stream("dispatcher/trace")
        )

    @property
    def tracer(self) -> Optional[Tracer]:
        """The live :class:`Tracer` (collected traces, sampling
        counters), or ``None`` when tracing is off."""
        return self._tracer

    # Tree registration ---------------------------------------------------

    def add_tree(
        self,
        tree: PathTree,
        probability: Optional[float] = None,
        request_type: Optional[str] = None,
    ) -> PathTree:
        """Register a path tree.

        With *request_type*, requests of that type always use this tree.
        With *probability*, untyped requests draw among the weighted
        trees. A single tree registered with neither serves everything.
        Every tree is additionally addressable by its name — admission
        control's graceful-degradation fallback refers to trees that
        way.
        """
        tree.validate()
        if request_type is not None:
            if request_type in self._trees_by_type:
                raise TopologyError(
                    f"request type {request_type!r} already has a tree"
                )
            self._trees_by_type[request_type] = tree
        else:
            self._trees.append((tree, 1.0 if probability is None else probability))
        self._trees_by_name.setdefault(tree.name, tree)
        return tree

    def add_fallback_tree(self, tree: PathTree) -> PathTree:
        """Register a tree reachable ONLY as a degradation fallback
        (never picked for regular traffic)."""
        tree.validate()
        if tree.name in self._trees_by_name:
            raise TopologyError(f"tree {tree.name!r} already registered")
        self._trees_by_name[tree.name] = tree
        return tree

    def _pick_tree(self, request: Request) -> PathTree:
        by_type = self._trees_by_type.get(request.request_type)
        if by_type is not None:
            return by_type
        if not self._trees:
            raise TopologyError(
                f"no path tree for request type {request.request_type!r} "
                f"and no default trees registered"
            )
        if len(self._trees) == 1:
            return self._trees[0][0]
        weights = np.array([w for _, w in self._trees], dtype=float)
        total = weights.sum()
        if not math.isclose(total, 1.0, rel_tol=1e-9):
            raise TopologyError(
                f"tree probabilities must sum to 1, got {total!r}"
            )
        idx = int(self._rng.choice(len(self._trees), p=weights))
        return self._trees[idx][0]

    # Outcome listeners ----------------------------------------------------

    def on_outcome(self, listener: Callable[[Request], None]) -> None:
        """Register a listener fired at every request resolution (any
        outcome) — availability monitors subscribe here."""
        self._outcome_listeners.append(listener)

    # Request lifecycle ----------------------------------------------------

    def submit(
        self,
        request: Request,
        on_complete: Optional[Callable[[Request], None]] = None,
        client_name: str = "client",
        client_machine: str = "client",
        policy: Optional[ResiliencePolicy] = None,
    ) -> None:
        """Inject *request* from a client located on *client_machine*.

        *policy* switches on the resilience layer for this request;
        without it the request traverses exactly as before (and still
        resolves with outcome ``ok``).
        """
        self.requests_submitted += 1
        group = _RequestGroup(
            request, policy, on_complete, client_name, client_machine
        )
        if self._tracer is not None:
            group.trace = self._tracer.start_trace(request)
            if group.trace is not None:
                request.metadata["trace"] = group.trace
        if policy is not None and policy.retry is not None:
            if policy.retry.budget is not None:
                policy.retry.budget.note_primary()
        if policy is not None and policy.hedge is not None:
            group.hedge_event = self.sim.schedule(
                policy.hedge.delay, self._on_hedge, group
            )
        self._launch_attempt(group)

    def _launch_attempt(self, group: _RequestGroup, hedge: bool = False) -> None:
        """Run one traversal of the path tree for *group*."""
        policy = group.policy
        tree = self._pick_tree(group.request)
        if not hedge and policy is not None and policy.admission is not None:
            shed_tree = self._admission_decision(policy, tree)
            if shed_tree is False:
                if group.trace is not None:
                    group.trace.add_event(self.sim.now, "shed")
                self._resolve(group, OUTCOME_SHED)
                return
            if shed_tree is not None:
                tree = shed_tree
                group.request.metadata["degraded"] = True
                self.fallbacks_served += 1
                if group.trace is not None:
                    group.trace.add_event(
                        self.sim.now, "degraded", tree=tree.name
                    )
        state = _RequestState(group, tree)
        group.states.append(state)
        group.request.attempts += 1
        self.attempts_launched += 1
        if policy is not None and policy.timeout is not None:
            state.timeout_event = self.sim.schedule(
                policy.timeout, self._on_timeout, state
            )
        for root in tree.roots:
            if state.cancelled or group.resolved:
                break
            self._enter_node(state, root, src_instance=None, parent_conn=None)

    def _admission_decision(self, policy, tree):
        """None = admit; False = shed; a PathTree = degrade onto it."""
        admission = policy.admission
        entry_service = tree.roots[0].service
        try:
            replicas = self.deployment.instances(entry_service)
        except TopologyError:
            return None
        alive = [r for r in replicas if getattr(r, "healthy", True)]
        if not alive:
            return None  # routing will fail properly downstream
        pending = min(inst.pending_dispatch for inst in alive)
        if not admission.sheds(pending):
            return None
        if admission.fallback_tree is not None:
            fallback = self._trees_by_name.get(admission.fallback_tree)
            if fallback is None:
                raise TopologyError(
                    f"admission fallback_tree {admission.fallback_tree!r} "
                    f"is not a registered tree"
                )
            return fallback
        return False

    # Resilience timers ----------------------------------------------------

    def _on_timeout(self, state: _RequestState) -> None:
        group = state.group
        if group.resolved or state.cancelled or state.finished:
            return
        if group.trace is not None:
            group.trace.add_event(
                self.sim.now, "timeout_fired", attempt=state.attempt
            )
        self._record_breaker_failures(state)
        self._attempt_failed(state, OUTCOME_TIMEOUT)

    def _on_hedge(self, group: _RequestGroup) -> None:
        group.hedge_event = None
        policy = group.policy
        if group.resolved or policy is None or policy.hedge is None:
            return
        if not group.live_states():
            return  # between retries; nothing to hedge against
        if group.hedges >= policy.hedge.max_hedges:
            return
        group.hedges += 1
        self.hedges_issued += 1
        if self.metrics is not None:
            self.metrics.counter("hedges_total").inc()
        if group.trace is not None:
            group.trace.add_event(
                self.sim.now, "hedge_launched", attempt=len(group.states)
            )
        self._launch_attempt(group, hedge=True)
        if group.hedges < policy.hedge.max_hedges:
            group.hedge_event = self.sim.schedule(
                policy.hedge.delay, self._on_hedge, group
            )

    # Failure / cancellation ----------------------------------------------

    def _attempt_failed(self, state: _RequestState, outcome: str) -> None:
        """One attempt died; retry, wait for a live hedge, or resolve."""
        group = state.group
        self._cancel_state(state)
        if group.resolved or group.live_states():
            return
        policy = group.policy
        if policy is not None and policy.retry is not None:
            retry = policy.retry
            if retry.allows(group.request.attempts) and (
                retry.budget is None or retry.budget.try_spend()
            ):
                self.retries_issued += 1
                if self.metrics is not None:
                    self.metrics.counter("retries_total").inc()
                delay = retry.backoff(group.request.attempts + 1, self._rng)
                if group.trace is not None:
                    group.trace.add_event(
                        self.sim.now, "retry_scheduled",
                        attempt=len(group.states), delay=delay,
                    )
                self.sim.schedule(delay, self._relaunch, group)
                return
        self._resolve(group, outcome)

    def _relaunch(self, group: _RequestGroup) -> None:
        if group.resolved:
            return
        self._launch_attempt(group)

    def _cancel_state(self, state: _RequestState) -> None:
        """Reclaim everything a traversal holds: queue slots, blocks,
        connections, and the per-instance in-flight counters."""
        if state.cancelled or state.finished:
            return
        state.cancelled = True
        if state.timeout_event is not None:
            self.sim.cancel(state.timeout_event)
            state.timeout_event = None
        trace = state.group.trace
        if trace is not None:
            # Close this attempt's open spans with ITS timestamps — a
            # losing hedge must never report the winner's timings.
            trace.add_event(
                self.sim.now, "attempt_cancelled", attempt=state.attempt
            )
            for span in state.spans.values():
                if not span.closed:
                    span.finish(
                        self.sim.now,
                        job=state.node_job.get(span.node),
                        status=SPAN_CANCELLED,
                        breakdown=trace.breakdown,
                    )
        request_id = state.request.request_id
        for name, job in state.node_job.items():
            job.cancelled = True
            if job.service is not None:
                job.service.cancel_job(job)
        for name, instance in state.node_instance.items():
            if state.entered.get(name) and not state.left.get(name):
                instance.pending_dispatch -= 1
                state.left[name] = True
        seen = set()
        for conn in state.node_conn.values():
            if conn is None or id(conn) in seen:
                continue
            seen.add(id(conn))
            conn.abandon(request_id)
        for conn in state.used_conns:
            conn.outstanding -= 1
        state.used_conns = []

    def _on_job_fail(self, state: _RequestState, node: PathNode, job: Job) -> None:
        """An instance crashed with (or refused) this attempt's job."""
        group = state.group
        if group.resolved or state.cancelled or state.finished:
            return
        breaker = self._breaker_for(state, node)
        if breaker is not None:
            breaker.record_failure(self.sim.now)
        self._attempt_failed(state, OUTCOME_FAILED)

    def _record_breaker_failures(self, state: _RequestState) -> None:
        """Attribute a timeout to every node entered but never left."""
        if state.group.policy is None or state.group.policy.breaker is None:
            return
        for name in state.node_instance:
            if state.entered.get(name) and not state.left.get(name):
                node = state.tree.node(name)
                breaker = self._breaker_for(state, node)
                if breaker is not None:
                    breaker.record_failure(self.sim.now)

    def _breaker_for(
        self, state: _RequestState, node: PathNode
    ) -> Optional[CircuitBreaker]:
        policy = state.group.policy
        if policy is None or policy.breaker is None:
            return None
        upstream = state.node_upstream.get(node.name, state.group.client_name)
        key = (upstream, node.service)
        breaker = self._breakers.get(key)
        if breaker is None:
            breaker = CircuitBreaker(policy.breaker)
            self._breakers[key] = breaker
        return breaker

    def breaker(self, upstream: str, service: str) -> Optional[CircuitBreaker]:
        """The circuit breaker guarding the (upstream, service) edge,
        if one has been created (introspection/telemetry)."""
        return self._breakers.get((upstream, service))

    # Resolution -----------------------------------------------------------

    def _resolve(self, group: _RequestGroup, outcome: str) -> None:
        """Terminal state: stamp the outcome and tell the client."""
        if group.resolved:
            return
        group.resolved = True
        if group.hedge_event is not None:
            self.sim.cancel(group.hedge_event)
            group.hedge_event = None
        for state in group.states:
            self._cancel_state(state)
        request = group.request
        request.completed_at = self.sim.now
        request.outcome = outcome
        if outcome == OUTCOME_OK:
            self.requests_completed += 1
        elif outcome == OUTCOME_TIMEOUT:
            self.requests_timed_out += 1
        elif outcome == OUTCOME_SHED:
            self.requests_shed += 1
        else:
            self.requests_failed += 1
        if group.trace is not None:
            group.trace.finish(self.sim.now, outcome)
        if self.metrics is not None:
            self.metrics.counter("requests_total", outcome=outcome).inc()
            if outcome == OUTCOME_OK:
                self.metrics.histogram("request_latency_seconds").observe(
                    request.latency
                )
        for listener in self._outcome_listeners:
            listener(request)
        if group.on_complete is not None:
            group.on_complete(request)

    # Tree traversal -------------------------------------------------------

    def _resolve_instance(
        self, state: _RequestState, node: PathNode
    ) -> Microservice:
        if node.same_instance_as is not None:
            instance = state.node_instance.get(node.same_instance_as)
            if instance is None:
                raise TopologyError(
                    f"node {node.name!r}: same_instance_as "
                    f"{node.same_instance_as!r} has not been visited yet"
                )
            return instance
        replicas = self.deployment.instances(node.service)
        return self.deployment.balancer(node.service).pick(replicas, self._rng)

    def _resolve_connection(
        self,
        state: _RequestState,
        node: PathNode,
        instance: Microservice,
        src_instance: Optional[Microservice],
        parent_conn: Optional[Connection],
    ) -> Optional[Connection]:
        if node.same_instance_as is not None:
            # A continuation: the message is a *response* riding back on
            # the connection the request went out on (the triggering
            # parent's incoming connection).
            return parent_conn
        upstream_key = (
            src_instance.name if src_instance is not None
            else state.group.client_name
        )
        conn = self.deployment.pool_between(upstream_key, instance).checkout()
        conn.outstanding += 1
        state.used_conns.append(conn)
        return conn

    def _apply_op(
        self, op: Optional[NodeOp], state: _RequestState, job: Job
    ) -> None:
        if op is None:
            return
        if op.connection_of is not None:
            target = state.node_conn.get(op.connection_of)
        else:
            target = job.connection
        if target is None:
            return  # nothing to (un)block: node had no connection
        request_id = state.request.request_id
        if op.action == NodeOp.BLOCK:
            # A hedge/retry attempt may hit the same connection its
            # sibling already blocked; the block is per-request, so a
            # second registration would be an error, not a state change.
            if target.holder != request_id and not target.waiting(request_id):
                target.block(request_id)
        else:
            target.unblock(request_id)

    def _enter_node(
        self,
        state: _RequestState,
        node: PathNode,
        src_instance: Optional[Microservice],
        parent_conn: Optional[Connection],
    ) -> None:
        upstream_key = (
            src_instance.name if src_instance is not None
            else state.group.client_name
        )
        state.node_upstream[node.name] = upstream_key
        breaker = self._breaker_for(state, node)
        if breaker is not None and node.same_instance_as is None:
            if not breaker.allow(self.sim.now):
                if state.group.trace is not None:
                    state.group.trace.add_event(
                        self.sim.now, "breaker_rejected",
                        attempt=state.attempt, node=node.name,
                        service=node.service,
                    )
                self._attempt_failed(state, OUTCOME_FAILED)
                return
        try:
            instance = self._resolve_instance(state, node)
        except NoHealthyInstance:
            if breaker is not None:
                breaker.record_failure(self.sim.now)
            self._attempt_failed(state, OUTCOME_FAILED)
            return
        instance.pending_dispatch += 1
        state.entered[node.name] = True
        conn = self._resolve_connection(
            state, node, instance, src_instance, parent_conn
        )
        state.node_instance[node.name] = instance
        state.node_conn[node.name] = conn

        size = node.message_bytes(state.request.size_bytes, self._rng)
        job = Job(state.request, size_bytes=size, connection=conn)
        state.node_job[node.name] = job
        job.on_complete = lambda j, _s=state, _n=node: self._leave_node(_s, _n, j)
        job.on_fail = lambda j, _s=state, _n=node: self._on_job_fail(_s, _n, j)
        self._apply_op(node.on_enter, state, job)
        trace = state.group.trace
        if trace is not None:
            state.spans[node.name] = trace.start_span(
                node.name, instance.name, node.service,
                state.attempt, self.sim.now, upstream=upstream_key,
            )
        if self.metrics is not None:
            self.metrics.counter(
                "edge_requests_total",
                upstream=upstream_key, service=node.service,
            ).inc()

        src_machine = (
            src_instance.machine_name
            if src_instance is not None
            else state.group.client_machine
        )
        accept = lambda: self._deliver_job(state, node, instance, job)
        if conn is not None:
            # Same-connection messages towards the same receiver are
            # delivered in send order (TCP semantics) even if the
            # simulated network completes their hops out of order.
            seq = conn.next_seq(instance.name)
            if self.network.is_partitioned(src_machine, instance.machine_name):
                # The message is lost, but its sequence slot must still
                # be consumed or every later message on this connection
                # towards the receiver would park forever.
                self.messages_dropped += 1
                conn.deliver_in_order(instance.name, seq, lambda: None)
                return
            deliver = lambda: conn.deliver_in_order(instance.name, seq, accept)
            # If the message dies en route (mid-flight partition, or a
            # down/crashing netproc relay), its sequence slot must still
            # be consumed — otherwise every later message on this
            # connection towards the receiver parks forever, wedging
            # the connection past the instance's own recovery.
            on_lost = lambda: conn.deliver_in_order(
                instance.name, seq, lambda: None
            )
        else:
            if self.network.is_partitioned(src_machine, instance.machine_name):
                self.messages_dropped += 1
                return
            deliver = accept
            on_lost = None
        self._hop(
            src_machine,
            instance.machine_name,
            size,
            state.request,
            deliver,
            on_lost,
        )

    def _deliver_job(
        self,
        state: _RequestState,
        node: PathNode,
        instance: Microservice,
        job: Job,
    ) -> None:
        """Hand the job to the instance — unless the attempt died while
        the message was in flight."""
        if state.cancelled or state.group.resolved:
            return
        instance.accept(job, node.path_id, node.path_name)

    def _leave_node(self, state: _RequestState, node: PathNode, job: Job) -> None:
        if state.cancelled or state.group.resolved:
            return  # resources were reclaimed at cancellation
        state.node_instance[node.name].pending_dispatch -= 1
        state.left[node.name] = True
        breaker = self._breaker_for(state, node)
        if breaker is not None:
            breaker.record_success()
        self._apply_op(node.on_leave, state, job)
        trace = state.group.trace
        if trace is not None:
            span = state.spans.get(node.name)
            if span is not None:
                span.finish(self.sim.now, job=job, breakdown=trace.breakdown)
        children = state.tree.children(node.name)
        if not children:
            state.pending_sinks -= 1
            if state.pending_sinks == 0:
                self._complete_request(state, node)
            return
        instance = state.node_instance[node.name]
        parent_conn = state.node_conn[node.name]
        for child in children:
            if state.cancelled or state.group.resolved:
                break  # a sibling hop tripped a breaker / failed fast
            arrived = state.arrivals.get(child.name, 0) + 1
            state.arrivals[child.name] = arrived
            if arrived == state.tree.fan_in(child.name):
                # Fan-in satisfied: the last arriving parent carries the
                # job onward (fan-out makes one copy per child).
                self._enter_node(
                    state,
                    child,
                    src_instance=instance,
                    parent_conn=parent_conn,
                )

    def _complete_request(self, state: _RequestState, last_node: PathNode) -> None:
        last_instance = state.node_instance[last_node.name]
        response_size = state.tree.response_size(
            state.request.size_bytes, self._rng
        )

        def finish() -> None:
            if state.cancelled or state.group.resolved:
                return  # lost the hedge race / timed out at the wire
            state.finished = True
            if state.timeout_event is not None:
                self.sim.cancel(state.timeout_event)
                state.timeout_event = None
            for conn in state.used_conns:
                conn.outstanding -= 1
            state.used_conns = []
            self._resolve(state.group, OUTCOME_OK)

        src_machine = last_instance.machine_name
        dst_machine = state.group.client_machine
        if self.network.is_partitioned(src_machine, dst_machine):
            self.messages_dropped += 1
            return  # response lost; only a timeout will surface it
        if state.group.trace is not None:
            state.group.trace.add_event(
                self.sim.now, "response_sent", attempt=state.attempt
            )
        self._hop(src_machine, dst_machine, response_size, state.request, finish)

    # Network routing -------------------------------------------------------

    def _hop(
        self,
        src_machine: str,
        dst_machine: str,
        size_bytes: float,
        request: Request,
        deliver: Callable[[], None],
        on_lost: Optional[Callable[[], None]] = None,
    ) -> None:
        """Route one message src -> dst.

        Cross-machine messages pass through the sender's and receiver's
        network-processing services (when deployed) around the wire
        delay; same-machine messages short-circuit through loopback.

        Exactly one of *deliver* / *on_lost* eventually runs: *on_lost*
        fires when the message is lost en route (mid-flight partition,
        or a netproc relay that is down or crashes with the message),
        so the sender can reclaim per-message resources such as the
        connection's in-order delivery slot.
        """

        def lost() -> None:
            self.messages_dropped += 1
            if on_lost is not None:
                on_lost()

        if src_machine == dst_machine:
            delay = self._net_delay.delay(src_machine, dst_machine, size_bytes)
            # Wire deliveries are fire-and-forget: cancellation happens
            # via request/attempt state checked at delivery time, never
            # by cancelling the event — so the slab applies.
            self.sim.schedule_transient(
                delay, deliver, priority=PRIORITY_ARRIVAL
            )
            return

        rx_proc = self.deployment.netproc(dst_machine)
        tx_proc = self.deployment.netproc(src_machine)

        def after_wire() -> None:
            if rx_proc is None:
                deliver()
                return
            rx_job = Job(request, size_bytes=size_bytes)
            rx_job.on_complete = lambda _j: deliver()
            rx_job.on_discard = lambda _j: lost()
            rx_proc.accept(rx_job)

        def over_wire() -> None:
            if self.network.is_partitioned(src_machine, dst_machine):
                lost()
                return  # lost on the severed link
            delay = self._net_delay.delay(src_machine, dst_machine, size_bytes)
            self.sim.schedule_transient(
                delay, after_wire, priority=PRIORITY_ARRIVAL
            )

        if tx_proc is None:
            over_wire()
            return
        tx_job = Job(request, size_bytes=size_bytes)
        tx_job.on_complete = lambda _j: over_wire()
        tx_job.on_discard = lambda _j: lost()
        tx_proc.accept(tx_job)

    def __repr__(self) -> str:
        return (
            f"<Dispatcher trees={len(self._trees) + len(self._trees_by_type)} "
            f"in-flight={self.requests_submitted - self.requests_completed - self.requests_timed_out - self.requests_failed - self.requests_shed}>"
        )
