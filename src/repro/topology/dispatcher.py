"""The central dispatcher.

Paper SSIII-A: "uqSim is an event-driven simulator, and uses a
centralized scheduler to dispatch requests to the appropriate
microservices instances."

The dispatcher walks each request through its path tree:

1. pick the tree for the request (by request type, or probabilistically
   when the application "exhibits control flow variability");
2. enter each root node: choose an instance (load balancer or
   ``same_instance_as`` affinity), check out a connection, apply
   enter-ops (http1.1-style blocking), route the message over the
   network — through the per-machine network-processing services for
   cross-machine hops — and hand the job to the instance;
3. on job completion apply leave-ops, then fan out copies to children,
   entering each child only once all of its parents completed (fan-in
   synchronisation);
4. when every sink node has completed, send the response back to the
   client and fire the completion callback.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..engine import PRIORITY_ARRIVAL, Simulator
from ..errors import TopologyError
from ..hardware import NetworkFabric
from ..service import Connection, Job, Microservice, Request
from .deployment import Deployment
from .path_tree import NodeOp, PathNode, PathTree


class _RequestState:
    """Book-keeping for one in-flight request."""

    __slots__ = (
        "request",
        "tree",
        "on_complete",
        "client_name",
        "client_machine",
        "node_instance",
        "node_conn",
        "arrivals",
        "pending_sinks",
        "used_conns",
    )

    def __init__(
        self,
        request: Request,
        tree: PathTree,
        on_complete: Optional[Callable[[Request], None]],
        client_name: str,
        client_machine: str,
    ) -> None:
        self.request = request
        self.tree = tree
        self.on_complete = on_complete
        self.client_name = client_name
        self.client_machine = client_machine
        self.node_instance: Dict[str, Microservice] = {}
        self.node_conn: Dict[str, Optional[Connection]] = {}
        self.arrivals: Dict[str, int] = {}
        self.pending_sinks = len(tree.sinks)
        self.used_conns: List[Connection] = []


class Dispatcher:
    """Routes requests through path trees over a deployment."""

    def __init__(
        self,
        sim: Simulator,
        deployment: Deployment,
        network: Optional[NetworkFabric] = None,
        trace: bool = False,
    ) -> None:
        """With ``trace=True`` every request carries a per-node timeline
        in ``request.metadata["trace"]``: (node, instance, enter, leave)
        tuples, in completion order — the raw material for critical-path
        analysis of multi-tier latency."""
        self.sim = sim
        self.deployment = deployment
        self.network = network or NetworkFabric()
        self.trace = trace
        self._rng = sim.random.stream("dispatcher")
        self._trees: List[Tuple[PathTree, float]] = []
        self._trees_by_type: Dict[str, PathTree] = {}
        # Telemetry.
        self.requests_submitted = 0
        self.requests_completed = 0

    # Tree registration ---------------------------------------------------

    def add_tree(
        self,
        tree: PathTree,
        probability: Optional[float] = None,
        request_type: Optional[str] = None,
    ) -> PathTree:
        """Register a path tree.

        With *request_type*, requests of that type always use this tree.
        With *probability*, untyped requests draw among the weighted
        trees. A single tree registered with neither serves everything.
        """
        tree.validate()
        if request_type is not None:
            if request_type in self._trees_by_type:
                raise TopologyError(
                    f"request type {request_type!r} already has a tree"
                )
            self._trees_by_type[request_type] = tree
        else:
            self._trees.append((tree, 1.0 if probability is None else probability))
        return tree

    def _pick_tree(self, request: Request) -> PathTree:
        by_type = self._trees_by_type.get(request.request_type)
        if by_type is not None:
            return by_type
        if not self._trees:
            raise TopologyError(
                f"no path tree for request type {request.request_type!r} "
                f"and no default trees registered"
            )
        if len(self._trees) == 1:
            return self._trees[0][0]
        weights = np.array([w for _, w in self._trees], dtype=float)
        total = weights.sum()
        if not math.isclose(total, 1.0, rel_tol=1e-9):
            raise TopologyError(
                f"tree probabilities must sum to 1, got {total!r}"
            )
        idx = int(self._rng.choice(len(self._trees), p=weights))
        return self._trees[idx][0]

    # Request lifecycle ----------------------------------------------------

    def submit(
        self,
        request: Request,
        on_complete: Optional[Callable[[Request], None]] = None,
        client_name: str = "client",
        client_machine: str = "client",
    ) -> None:
        """Inject *request* from a client located on *client_machine*."""
        tree = self._pick_tree(request)
        state = _RequestState(request, tree, on_complete, client_name, client_machine)
        self.requests_submitted += 1
        for root in tree.roots:
            self._enter_node(
                state,
                root,
                src_instance=None,
                parent_conn=None,
            )

    def _resolve_instance(
        self, state: _RequestState, node: PathNode
    ) -> Microservice:
        if node.same_instance_as is not None:
            instance = state.node_instance.get(node.same_instance_as)
            if instance is None:
                raise TopologyError(
                    f"node {node.name!r}: same_instance_as "
                    f"{node.same_instance_as!r} has not been visited yet"
                )
            return instance
        replicas = self.deployment.instances(node.service)
        return self.deployment.balancer(node.service).pick(replicas, self._rng)

    def _resolve_connection(
        self,
        state: _RequestState,
        node: PathNode,
        instance: Microservice,
        src_instance: Optional[Microservice],
        parent_conn: Optional[Connection],
    ) -> Optional[Connection]:
        if node.same_instance_as is not None:
            # A continuation: the message is a *response* riding back on
            # the connection the request went out on (the triggering
            # parent's incoming connection).
            return parent_conn
        upstream_key = (
            src_instance.name if src_instance is not None else state.client_name
        )
        conn = self.deployment.pool_between(upstream_key, instance).checkout()
        conn.outstanding += 1
        state.used_conns.append(conn)
        return conn

    def _apply_op(
        self,
        op: Optional[NodeOp],
        state: _RequestState,
        job: Job,
        node: PathNode,
    ) -> None:
        if op is None:
            return
        if op.connection_of is not None:
            target = state.node_conn.get(op.connection_of)
        else:
            target = job.connection
        if target is None:
            return  # nothing to (un)block: node had no connection
        if op.action == NodeOp.BLOCK:
            target.block(state.request.request_id)
        else:
            target.unblock(state.request.request_id)

    def _enter_node(
        self,
        state: _RequestState,
        node: PathNode,
        src_instance: Optional[Microservice],
        parent_conn: Optional[Connection],
    ) -> None:
        instance = self._resolve_instance(state, node)
        instance.pending_dispatch += 1
        conn = self._resolve_connection(
            state, node, instance, src_instance, parent_conn
        )
        state.node_instance[node.name] = instance
        state.node_conn[node.name] = conn

        size = node.message_bytes(state.request.size_bytes, self._rng)
        job = Job(state.request, size_bytes=size, connection=conn)
        job.on_complete = lambda j, _s=state, _n=node: self._leave_node(_s, _n, j)
        self._apply_op(node.on_enter, state, job, node)
        if self.trace:
            state.request.metadata.setdefault("trace_enter", {})[
                node.name
            ] = self.sim.now

        src_machine = (
            src_instance.machine_name
            if src_instance is not None
            else state.client_machine
        )
        accept = lambda: instance.accept(job, node.path_id, node.path_name)
        if conn is not None:
            # Same-connection messages towards the same receiver are
            # delivered in send order (TCP semantics) even if the
            # simulated network completes their hops out of order.
            seq = conn.next_seq(instance.name)
            deliver = lambda: conn.deliver_in_order(instance.name, seq, accept)
        else:
            deliver = accept
        self._hop(
            src_machine,
            instance.machine_name,
            size,
            state.request,
            deliver,
        )

    def _leave_node(self, state: _RequestState, node: PathNode, job: Job) -> None:
        state.node_instance[node.name].pending_dispatch -= 1
        self._apply_op(node.on_leave, state, job, node)
        if self.trace:
            enter = state.request.metadata.get("trace_enter", {}).get(node.name)
            state.request.metadata.setdefault("trace", []).append(
                (
                    node.name,
                    state.node_instance[node.name].name,
                    enter,
                    self.sim.now,
                )
            )
        children = state.tree.children(node.name)
        if not children:
            state.pending_sinks -= 1
            if state.pending_sinks == 0:
                self._complete_request(state, node)
            return
        instance = state.node_instance[node.name]
        parent_conn = state.node_conn[node.name]
        for child in children:
            arrived = state.arrivals.get(child.name, 0) + 1
            state.arrivals[child.name] = arrived
            if arrived == state.tree.fan_in(child.name):
                # Fan-in satisfied: the last arriving parent carries the
                # job onward (fan-out makes one copy per child).
                self._enter_node(
                    state,
                    child,
                    src_instance=instance,
                    parent_conn=parent_conn,
                )

    def _complete_request(self, state: _RequestState, last_node: PathNode) -> None:
        last_instance = state.node_instance[last_node.name]
        response_size = state.tree.response_size(
            state.request.size_bytes, self._rng
        )

        def finish() -> None:
            state.request.completed_at = self.sim.now
            self.requests_completed += 1
            for conn in state.used_conns:
                conn.outstanding -= 1
            if state.on_complete is not None:
                state.on_complete(state.request)

        self._hop(
            last_instance.machine_name,
            state.client_machine,
            response_size,
            state.request,
            finish,
        )

    # Network routing -------------------------------------------------------

    def _hop(
        self,
        src_machine: str,
        dst_machine: str,
        size_bytes: float,
        request: Request,
        deliver: Callable[[], None],
    ) -> None:
        """Route one message src -> dst.

        Cross-machine messages pass through the sender's and receiver's
        network-processing services (when deployed) around the wire
        delay; same-machine messages short-circuit through loopback.
        """
        if src_machine == dst_machine:
            delay = self.network.delay(src_machine, dst_machine, size_bytes, self._rng)
            self.sim.schedule(delay, deliver, priority=PRIORITY_ARRIVAL)
            return

        rx_proc = self.deployment.netproc(dst_machine)
        tx_proc = self.deployment.netproc(src_machine)

        def after_wire() -> None:
            if rx_proc is None:
                deliver()
                return
            rx_job = Job(request, size_bytes=size_bytes)
            rx_job.on_complete = lambda _j: deliver()
            rx_proc.accept(rx_job)

        def over_wire() -> None:
            delay = self.network.delay(src_machine, dst_machine, size_bytes, self._rng)
            self.sim.schedule(delay, after_wire, priority=PRIORITY_ARRIVAL)

        if tx_proc is None:
            over_wire()
            return
        tx_job = Job(request, size_bytes=size_bytes)
        tx_job.on_complete = lambda _j: over_wire()
        tx_proc.accept(tx_job)

    def __repr__(self) -> str:
        return (
            f"<Dispatcher trees={len(self._trees) + len(self._trees_by_type)} "
            f"in-flight={self.requests_submitted - self.requests_completed}>"
        )
