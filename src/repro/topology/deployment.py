"""Deployment: which instances exist, where, and how they connect.

The programmatic equivalent of ``graph.json`` (paper SSIII-C): "the
server on which a microservice is deployed, the resources assigned to
each microservice, and the execution model each microservice is
simulated with. The microservice deployment also specifies the size of
the connection pool of each microservice."

Instances themselves (stages, paths, cores) are built by the
application model library (:mod:`repro.apps`) or the JSON config layer;
the deployment registers them under their tier name, owns the
load-balancing policy per tier, tracks per-machine network-processing
services, and hands out connection pools between communicating
instances.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import TopologyError
from ..service import ConnectionPool, Microservice
from .load_balancer import LoadBalancer, RoundRobin, make_load_balancer

DEFAULT_POOL_SIZE = 8


class Deployment:
    """Registry of deployed instances, balancers, and connection pools."""

    def __init__(self) -> None:
        self._instances: Dict[str, List[Microservice]] = {}
        self._balancers: Dict[str, LoadBalancer] = {}
        self._pool_sizes: Dict[str, int] = {}
        self._pool_policies: Dict[str, str] = {}
        self._netproc: Dict[str, Microservice] = {}
        self._pools: Dict[Tuple[str, str], ConnectionPool] = {}
        self._retired: List[Microservice] = []

    # Registration -------------------------------------------------------

    def add_instance(self, instance: Microservice) -> Microservice:
        """Register *instance* under its tier (service) name."""
        service = instance.tier
        replicas = self._instances.setdefault(service, [])
        if any(existing.name == instance.name for existing in replicas):
            raise TopologyError(
                f"duplicate instance name {instance.name!r} in tier {service!r}"
            )
        replicas.append(instance)
        return instance

    def remove_instance(self, name: str) -> Microservice:
        """Retire a replica: take it out of its tier so balancers stop
        seeing it, while keeping it findable by name for audits and
        late-firing faults.

        The control plane retires dead replicas it has replaced (so a
        later ``machine_recover`` cannot resurrect them into a tier
        that is already back at strength) and drained replicas it has
        scaled down.
        """
        for service, replicas in self._instances.items():
            for i, inst in enumerate(replicas):
                if inst.name == name:
                    replicas.pop(i)
                    self._retired.append(inst)
                    return inst
        raise TopologyError(
            f"no removable instance named {name!r}; deployed: "
            f"{sorted(i.name for i in self.all_instances)}"
        )

    @property
    def retired_instances(self) -> List[Microservice]:
        """Replicas removed from their tiers, in retirement order."""
        return list(self._retired)

    def set_balancer(self, service: str, policy: str) -> None:
        """Set the load-balancing policy for *service* (default RR)."""
        self._balancers[service] = make_load_balancer(policy)

    def set_pool(self, service: str, size: int, policy: str = "round_robin") -> None:
        """Configure the connection-pool size used by upstreams of
        *service* (each upstream instance gets its own pool)."""
        if size < 1:
            raise TopologyError(f"pool size must be >= 1, got {size}")
        self._pool_sizes[service] = size
        self._pool_policies[service] = policy

    def set_netproc(self, machine_name: str, instance: Microservice) -> None:
        """Attach the network-processing (soft_irq) service of a machine.

        All cross-machine messages to or from that machine pass through
        it — "all microservices deployed on the same server share the
        process handling interrupts" (paper SSIII-B).
        """
        if machine_name in self._netproc:
            raise TopologyError(f"machine {machine_name!r} already has a netproc")
        self._netproc[machine_name] = instance

    # Lookup -------------------------------------------------------------

    def instances(self, service: str) -> List[Microservice]:
        try:
            return self._instances[service]
        except KeyError:
            raise TopologyError(
                f"no instances deployed for service {service!r}; "
                f"deployed: {sorted(self._instances)}"
            ) from None

    @property
    def services(self) -> List[str]:
        return sorted(self._instances)

    @property
    def all_instances(self) -> List[Microservice]:
        return [inst for tier in self._instances.values() for inst in tier]

    def find_instance(self, name: str) -> Microservice:
        """Look up a deployed instance (any tier, or a netproc) by its
        unique name — fault injection targets instances this way."""
        for tier in self._instances.values():
            for inst in tier:
                if inst.name == name:
                    return inst
        for inst in self._netproc.values():
            if inst.name == name:
                return inst
        for inst in self._retired:
            if inst.name == name:
                return inst
        raise TopologyError(f"no instance named {name!r} deployed")

    @property
    def pools(self) -> List[ConnectionPool]:
        """Every connection pool created so far (telemetry/invariants)."""
        return list(self._pools.values())

    def balancer(self, service: str) -> LoadBalancer:
        if service not in self._balancers:
            self._balancers[service] = RoundRobin()
        return self._balancers[service]

    def netproc(self, machine_name: str) -> Optional[Microservice]:
        return self._netproc.get(machine_name)

    @property
    def netprocs(self) -> Dict[str, Microservice]:
        return dict(self._netproc)

    def pool_between(self, upstream_key: str, downstream: Microservice) -> ConnectionPool:
        """The (lazily created) pool carrying upstream -> downstream
        traffic. *upstream_key* is an instance name or a client name."""
        key = (upstream_key, downstream.name)
        pool = self._pools.get(key)
        if pool is None:
            size = self._pool_sizes.get(downstream.tier, DEFAULT_POOL_SIZE)
            policy = self._pool_policies.get(downstream.tier, "round_robin")
            pool = ConnectionPool(
                f"{upstream_key}->{downstream.name}", size, policy
            )
            self._pools[key] = pool
        return pool

    def __repr__(self) -> str:
        tiers = {name: len(insts) for name, insts in self._instances.items()}
        return f"<Deployment tiers={tiers} netprocs={sorted(self._netproc)}>"
