"""machines.json — server machines & available resources (Table I).

::

    {
      "machines": [
        {"name": "server0", "cores": 40,
         "dvfs": {"min_ghz": 1.2, "max_ghz": 2.6, "step_ghz": 0.1}},
        {"name": "client", "cores": 16}
      ],
      "network": {"propagation_us": 20, "loopback_us": 5,
                  "bandwidth_gbps": 1}
    }
"""

from __future__ import annotations

import math

from ..distributions import Deterministic, Exponential
from ..errors import ConfigError
from ..hardware import Cluster, DvfsLadder, GHZ, Machine, NetworkFabric


def parse_dvfs(payload: dict, source: str) -> DvfsLadder:
    """Parse a dvfs object (min/max/step in GHz) into a ladder."""
    try:
        lo = float(payload["min_ghz"])
        hi = float(payload["max_ghz"])
    except KeyError as exc:
        raise ConfigError(f"dvfs needs {exc.args[0]!r}", source=source)
    step = float(payload.get("step_ghz", 0.1))
    if step <= 0:
        raise ConfigError(f"step_ghz must be > 0, got {step!r}", source=source)
    if hi < lo:
        raise ConfigError("max_ghz must be >= min_ghz", source=source)
    count = int(math.floor((hi - lo) / step + 1e-9)) + 1
    return DvfsLadder([round(lo + i * step, 6) * GHZ for i in range(count)])


def parse_network(payload: dict, source: str) -> NetworkFabric:
    """Parse the network object (propagation/loopback/bandwidth)."""
    propagation = Exponential(float(payload.get("propagation_us", 20)) * 1e-6)
    loopback = Deterministic(float(payload.get("loopback_us", 5)) * 1e-6)
    bandwidth = float(payload.get("bandwidth_gbps", 1.0)) * 125_000_000.0
    return NetworkFabric(propagation, loopback, bandwidth)


def parse_machines(payload: dict, source: str = "machines.json") -> Cluster:
    """Build the Cluster described by machines.json."""
    if not isinstance(payload, dict):
        raise ConfigError("machines config must be an object", source=source)
    machines = payload.get("machines")
    if not isinstance(machines, list) or not machines:
        raise ConfigError("'machines' must be a non-empty list", source=source)
    network = parse_network(payload.get("network", {}), source)
    cluster = Cluster(network)
    for spec in machines:
        try:
            name = spec["name"]
            cores = int(spec["cores"])
        except KeyError as exc:
            raise ConfigError(
                f"machine missing {exc.args[0]!r}: {spec!r}", source=source
            )
        ladder = None
        if "dvfs" in spec:
            ladder = parse_dvfs(spec["dvfs"], source)
        cluster.add_machine(Machine(name, cores, ladder))
    return cluster


def table2_payload() -> dict:
    """The paper's Table II server as a machines.json fragment."""
    return {
        "name": "server0",
        "cores": 40,
        "dvfs": {"min_ghz": 1.2, "max_ghz": 2.6, "step_ghz": 0.1},
    }
