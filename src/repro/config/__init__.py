"""The JSON configuration surface of paper Table I: service.json,
graph.json, path.json, machines.json, client.json, histograms."""

from .client_config import build_client, parse_arrivals, parse_mix, parse_pattern
from .distributions import parse_distribution
from .graph_config import build_deployment
from .loader import SimulationSpec
from .machine_config import parse_machines, table2_payload
from .path_config import parse_tree, register_trees
from .service_config import ServiceTemplate

__all__ = [
    "ServiceTemplate",
    "SimulationSpec",
    "build_client",
    "build_deployment",
    "parse_arrivals",
    "parse_distribution",
    "parse_machines",
    "parse_mix",
    "parse_pattern",
    "parse_tree",
    "register_trees",
    "table2_payload",
]
