"""Assembling a full simulation from the five JSON inputs of Table I.

A spec directory (or in-memory dict) provides::

    machines.json     server machines & network
    services/*.json   one service.json per microservice model
    graph.json        deployment of instances onto machines
    path.json         inter-microservice path trees
    client.json       input load pattern
    faults.json       optional fault schedule (crashes, stragglers,
                      link faults) armed automatically at build time

:func:`SimulationSpec.load` parses and cross-validates everything;
:meth:`SimulationSpec.build` returns a ready-to-run
(:class:`~repro.apps.base.World`, client) pair.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Union

from ..apps.base import World
from ..engine import Simulator
from ..errors import ConfigError
from ..faults import FaultInjector, parse_fault_plan
from ..topology import Dispatcher
from ..workload import OpenLoopClient
from .client_config import build_client
from .graph_config import build_deployment
from .machine_config import parse_machines
from .path_config import register_trees
from .service_config import ServiceTemplate


def _read_json(path: Path) -> dict:
    try:
        with open(path) as f:
            return json.load(f)
    except OSError as exc:
        raise ConfigError(f"cannot read {path}: {exc}", source=str(path)) from exc
    except json.JSONDecodeError as exc:
        raise ConfigError(f"invalid JSON: {exc}", source=str(path)) from exc


class SimulationSpec:
    """Parsed and validated Table I inputs."""

    def __init__(
        self,
        machines: dict,
        services: Dict[str, dict],
        graph: dict,
        paths: dict,
        client: Optional[dict] = None,
        base_dir: Optional[Path] = None,
        faults: Optional[dict] = None,
    ) -> None:
        self.machines_payload = machines
        self.graph_payload = graph
        self.paths_payload = paths
        self.client_payload = client
        self.faults_payload = faults
        self.base_dir = base_dir
        self.templates = {
            name: ServiceTemplate(payload, f"services/{name}", base_dir)
            for name, payload in services.items()
        }

    @classmethod
    def load(cls, directory: Union[str, Path]) -> "SimulationSpec":
        """Load a spec directory (see module docstring for layout)."""
        base = Path(directory)
        if not base.is_dir():
            raise ConfigError(f"spec directory {base} does not exist")
        services_dir = base / "services"
        if not services_dir.is_dir():
            raise ConfigError(
                f"{base} has no services/ directory", source=str(base)
            )
        services = {}
        for path in sorted(services_dir.glob("*.json")):
            payload = _read_json(path)
            name = payload.get("service_name", path.stem)
            services[name] = payload
        if not services:
            raise ConfigError(f"no service configs in {services_dir}")
        client_path = base / "client.json"
        faults_path = base / "faults.json"
        return cls(
            machines=_read_json(base / "machines.json"),
            services=services,
            graph=_read_json(base / "graph.json"),
            paths=_read_json(base / "path.json"),
            client=_read_json(client_path) if client_path.exists() else None,
            base_dir=base,
            faults=_read_json(faults_path) if faults_path.exists() else None,
        )

    def build(
        self, seed: int = 0, realism=None
    ) -> "tuple[World, Optional[OpenLoopClient]]":
        """Materialise the spec into a runnable world (+ client if
        client.json was provided)."""
        sim = Simulator(seed=seed)
        cluster = parse_machines(self.machines_payload)
        deployment = build_deployment(
            self.graph_payload, sim, cluster, self.templates
        )
        dispatcher = Dispatcher(sim, deployment, cluster.network)
        register_trees(self.paths_payload, dispatcher)
        world = World(sim, cluster, deployment, dispatcher, realism)
        if self.faults_payload is not None:
            plan = parse_fault_plan(self.faults_payload, "faults.json")
            world.fault_injector = FaultInjector(
                sim, deployment, cluster.network, plan, cluster=cluster
            ).arm()
        client = None
        if self.client_payload is not None:
            client = build_client(
                self.client_payload, sim, dispatcher, realism=realism
            )
        return world, client

    def __repr__(self) -> str:
        return (
            f"<SimulationSpec services={sorted(self.templates)} "
            f"machines={len(self.machines_payload.get('machines', []))}>"
        )
