"""service.json — a microservice's internal architecture (Listing 1).

The format extends the paper's Listing 1 with explicit cost terms
(the paper keeps them in separate histogram files keyed by stage)::

    {
      "service_name": "memcached",
      "stages": [
        {"stage_name": "epoll", "stage_id": 0,
         "queue_type": "epoll", "batching": true,
         "queue_parameter": [null, 16],
         "cost": {"base": {"dist": "deterministic", "value_us": 5},
                  "per_job": {"dist": "deterministic", "value_us": 1}}},
        ...
      ],
      "paths": [
        {"path_id": 0, "path_name": "memcached_read",
         "stages": [0, 1, 2, 3], "probability": 0.9},
        ...
      ]
    }

Path ``probability`` fields are optional; when present they must cover
every path and sum to 1 (the SSIII-B state machine).

A :class:`ServiceTemplate` is instantiated once per deployed instance —
stage queues are stateful, so each instance gets fresh ones, while the
(stateless) distributions are shared.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional

from ..errors import ConfigError
from ..service import ExecutionPath, PathSelector, Stage, make_queue
from .distributions import parse_distribution

_COST_KEYS = ("base", "per_job", "per_byte", "io")


class ServiceTemplate:
    """Parsed service.json, ready to stamp out instances."""

    def __init__(self, payload: dict, source: str = "service.json",
                 base_dir: Optional[Path] = None) -> None:
        if not isinstance(payload, dict):
            raise ConfigError("service config must be an object", source=source)
        self.source = source
        self._base_dir = base_dir
        try:
            self.service_name = payload["service_name"]
        except KeyError:
            raise ConfigError("missing 'service_name'", source=source)
        stages = payload.get("stages")
        if not isinstance(stages, list) or not stages:
            raise ConfigError("'stages' must be a non-empty list", source=source)
        paths = payload.get("paths")
        if not isinstance(paths, list) or not paths:
            raise ConfigError("'paths' must be a non-empty list", source=source)
        self._stage_specs = [self._check_stage(s) for s in stages]
        self._path_specs = [self._check_path(p) for p in paths]

    def _check_stage(self, spec: dict) -> dict:
        for key in ("stage_name", "stage_id", "queue_type"):
            if key not in spec:
                raise ConfigError(
                    f"stage missing {key!r}: {spec!r}", source=self.source
                )
        cost = spec.get("cost")
        if not isinstance(cost, dict) or not any(k in cost for k in _COST_KEYS):
            raise ConfigError(
                f"stage {spec['stage_name']!r} needs a 'cost' object with at "
                f"least one of {_COST_KEYS}",
                source=self.source,
            )
        unknown = set(cost) - set(_COST_KEYS)
        if unknown:
            raise ConfigError(
                f"stage {spec['stage_name']!r}: unknown cost keys {sorted(unknown)}",
                source=self.source,
            )
        return spec

    def _check_path(self, spec: dict) -> dict:
        for key in ("path_id", "path_name", "stages"):
            if key not in spec:
                raise ConfigError(
                    f"path missing {key!r}: {spec!r}", source=self.source
                )
        return spec

    # Instantiation -------------------------------------------------------

    def build_stages(self) -> List[Stage]:
        """Fresh Stage objects (with fresh queues) for one instance."""
        stages = []
        for spec in self._stage_specs:
            cost = spec["cost"]
            kwargs: Dict[str, object] = {}
            for key in _COST_KEYS:
                if key in cost:
                    kwargs[key] = parse_distribution(
                        cost[key],
                        f"{self.source}:{spec['stage_name']}",
                        self._base_dir,
                    )
            io_dist = kwargs.pop("io", None)
            stages.append(
                Stage(
                    spec["stage_name"],
                    int(spec["stage_id"]),
                    make_queue(spec["queue_type"], spec.get("queue_parameter")),
                    batching=bool(spec.get("batching", False)),
                    io=io_dist,  # type: ignore[arg-type]
                    **kwargs,  # type: ignore[arg-type]
                )
            )
        return stages

    def build_selector(self) -> PathSelector:
        paths = [
            ExecutionPath(int(p["path_id"]), p["path_name"], p["stages"])
            for p in self._path_specs
        ]
        probabilities = None
        with_prob = [p for p in self._path_specs if "probability" in p]
        if with_prob:
            if len(with_prob) != len(self._path_specs):
                raise ConfigError(
                    "either all paths or none must carry 'probability'",
                    source=self.source,
                )
            probabilities = {
                int(p["path_id"]): float(p["probability"])
                for p in self._path_specs
            }
        return PathSelector(paths, probabilities)

    def __repr__(self) -> str:
        return (
            f"<ServiceTemplate {self.service_name} "
            f"stages={len(self._stage_specs)} paths={len(self._path_specs)}>"
        )
