"""path.json — inter-microservice paths (Table I).

::

    {
      "trees": [
        {"name": "two_tier", "probability": 1.0, "response_bytes": 612,
         "request_type": null,
         "nodes": [
           {"name": "nginx", "service": "nginx", "path_name": "serve",
            "on_enter": {"action": "block"},
            "request_bytes": 128},
           {"name": "memcached", "service": "memcached",
            "path_name": "memcached_read"},
           {"name": "nginx_resp", "service": "nginx",
            "path_name": "respond", "same_instance_as": "nginx",
            "on_leave": {"action": "unblock", "connection_of": "nginx"}}
         ],
         "edges": [["nginx", "memcached"], ["memcached", "nginx_resp"]]}
      ]
    }
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import ConfigError
from ..topology import Dispatcher, NodeOp, PathNode, PathTree


def _parse_op(payload: Optional[dict], source: str) -> Optional[NodeOp]:
    if payload is None:
        return None
    action = payload.get("action")
    if action is None:
        raise ConfigError("op needs an 'action'", source=source)
    return NodeOp(action, payload.get("connection_of"))


def parse_tree(spec: dict, source: str = "path.json") -> PathTree:
    """Build one PathTree from its JSON spec."""
    name = spec.get("name", "default")
    tree = PathTree(name, response_bytes=spec.get("response_bytes"))
    nodes = spec.get("nodes")
    if not isinstance(nodes, list) or not nodes:
        raise ConfigError(
            f"tree {name!r}: 'nodes' must be a non-empty list", source=source
        )
    for node_spec in nodes:
        for key in ("name", "service"):
            if key not in node_spec:
                raise ConfigError(
                    f"tree {name!r}: node missing {key!r}: {node_spec!r}",
                    source=source,
                )
        tree.add_node(
            PathNode(
                node_spec["name"],
                node_spec["service"],
                path_id=node_spec.get("path_id"),
                path_name=node_spec.get("path_name"),
                same_instance_as=node_spec.get("same_instance_as"),
                on_enter=_parse_op(node_spec.get("on_enter"), source),
                on_leave=_parse_op(node_spec.get("on_leave"), source),
                request_bytes=node_spec.get("request_bytes"),
            )
        )
    for edge in spec.get("edges", []):
        if not isinstance(edge, (list, tuple)) or len(edge) != 2:
            raise ConfigError(
                f"tree {name!r}: edges must be [parent, child] pairs, "
                f"got {edge!r}",
                source=source,
            )
        tree.add_edge(edge[0], edge[1])
    tree.validate()
    return tree


def register_trees(
    payload: dict,
    dispatcher: Dispatcher,
    source: str = "path.json",
) -> List[PathTree]:
    """Parse path.json and register every tree with the dispatcher."""
    if not isinstance(payload, dict):
        raise ConfigError("path config must be an object", source=source)
    specs = payload.get("trees")
    if not isinstance(specs, list) or not specs:
        raise ConfigError("'trees' must be a non-empty list", source=source)
    trees = []
    for spec in specs:
        tree = parse_tree(spec, source)
        dispatcher.add_tree(
            tree,
            probability=spec.get("probability"),
            request_type=spec.get("request_type"),
        )
        trees.append(tree)
    return trees
