"""The ``resilience`` block of client.json.

::

    "resilience": {
      "timeout": 0.05,
      "retry": {"max_attempts": 3, "backoff_base": 0.001,
                "backoff_multiplier": 2.0, "backoff_cap": 0.1,
                "jitter": 0.0001,
                "budget": {"ratio": 0.1, "min_tokens": 10}},
      "hedge": {"delay": 0.01, "max_hedges": 1},
      "breaker": {"failure_threshold": 5, "reset_timeout": 1.0},
      "admission": {"max_queue": 64, "fallback_tree": "cheap_path"}
    }

Every sub-block is optional; an empty/absent block yields no policy at
all (the request path is untouched). See ``docs/resilience.md``.
"""

from __future__ import annotations

from typing import Optional

from ..errors import ConfigError
from ..resilience import (
    AdmissionPolicy,
    BreakerPolicy,
    HedgePolicy,
    ResiliencePolicy,
    RetryBudget,
    RetryPolicy,
)


def _check_fields(payload: dict, allowed: tuple, source: str, block: str) -> None:
    unknown = set(payload) - set(allowed)
    if unknown:
        raise ConfigError(
            f"unknown {block} fields {sorted(unknown)}", source=source
        )


def _parse_retry(payload: dict, source: str) -> RetryPolicy:
    _check_fields(
        payload,
        (
            "max_attempts",
            "backoff_base",
            "backoff_multiplier",
            "backoff_cap",
            "jitter",
            "budget",
        ),
        source,
        "retry",
    )
    budget = None
    budget_spec = payload.get("budget")
    if budget_spec is not None:
        _check_fields(budget_spec, ("ratio", "min_tokens"), source, "retry budget")
        budget = RetryBudget(
            ratio=float(budget_spec.get("ratio", 0.1)),
            min_tokens=int(budget_spec.get("min_tokens", 10)),
        )
    return RetryPolicy(
        max_attempts=int(payload.get("max_attempts", 3)),
        backoff_base=float(payload.get("backoff_base", 1e-3)),
        backoff_multiplier=float(payload.get("backoff_multiplier", 2.0)),
        backoff_cap=float(payload.get("backoff_cap", 0.1)),
        jitter=float(payload.get("jitter", 1e-4)),
        budget=budget,
    )


def parse_resilience(
    payload: Optional[dict], source: str = "client.json"
) -> Optional[ResiliencePolicy]:
    """Parse a ``resilience`` block; None/empty means no policy."""
    if payload is None:
        return None
    if not isinstance(payload, dict):
        raise ConfigError("resilience must be an object", source=source)
    if not payload:
        return None
    _check_fields(
        payload,
        ("timeout", "retry", "hedge", "breaker", "admission"),
        source,
        "resilience",
    )
    retry = None
    if payload.get("retry") is not None:
        retry = _parse_retry(payload["retry"], source)
    hedge = None
    if payload.get("hedge") is not None:
        spec = payload["hedge"]
        _check_fields(spec, ("delay", "max_hedges"), source, "hedge")
        hedge = HedgePolicy(
            delay=float(spec.get("delay", 10e-3)),
            max_hedges=int(spec.get("max_hedges", 1)),
        )
    breaker = None
    if payload.get("breaker") is not None:
        spec = payload["breaker"]
        _check_fields(spec, ("failure_threshold", "reset_timeout"), source, "breaker")
        breaker = BreakerPolicy(
            failure_threshold=int(spec.get("failure_threshold", 5)),
            reset_timeout=float(spec.get("reset_timeout", 1.0)),
        )
    admission = None
    if payload.get("admission") is not None:
        spec = payload["admission"]
        _check_fields(
            spec,
            ("max_queue", "deadline", "service_time_estimate", "fallback_tree"),
            source,
            "admission",
        )
        admission = AdmissionPolicy(
            max_queue=(
                int(spec["max_queue"]) if spec.get("max_queue") is not None else None
            ),
            deadline=(
                float(spec["deadline"]) if spec.get("deadline") is not None else None
            ),
            service_time_estimate=(
                float(spec["service_time_estimate"])
                if spec.get("service_time_estimate") is not None
                else None
            ),
            fallback_tree=spec.get("fallback_tree"),
        )
    timeout = payload.get("timeout")
    return ResiliencePolicy(
        timeout=float(timeout) if timeout is not None else None,
        retry=retry,
        hedge=hedge,
        breaker=breaker,
        admission=admission,
    )
