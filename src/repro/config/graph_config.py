"""graph.json — microservice deployment (Table I).

::

    {
      "instances": [
        {"name": "nginx0", "service": "nginx", "machine": "server0",
         "cores": 8, "tier": "nginx",
         "model": {"type": "multithreaded", "threads": 8,
                   "context_switch_us": 1},
         "io": {"channels": 4}},
        ...
      ],
      "netproc": [
        {"machine": "server0", "cores": 4,
         "per_message_us": 13, "per_byte_ns": 12}
      ],
      "pools": {"nginx": 320, "memcached": 16},
      "balancers": {"webserver": "round_robin"}
    }
"""

from __future__ import annotations

from typing import Dict

from ..distributions import Deterministic
from ..engine import Simulator
from ..errors import ConfigError
from ..hardware import Cluster
from ..service import (
    ExecutionPath,
    IoDevice,
    Microservice,
    MultiThreadedModel,
    PathSelector,
    SimpleModel,
    SingleQueue,
    Stage,
)
from ..topology import Deployment
from .service_config import ServiceTemplate


def _parse_model(spec: dict, source: str):
    kind = spec.get("type", "simple")
    if kind == "simple":
        return SimpleModel()
    if kind == "multithreaded":
        threads = spec.get("threads")
        if not isinstance(threads, int):
            raise ConfigError(
                "multithreaded model needs integer 'threads'", source=source
            )
        return MultiThreadedModel(
            threads,
            context_switch=float(spec.get("context_switch_us", 2.0)) * 1e-6,
            dynamic=bool(spec.get("dynamic", False)),
            max_threads=spec.get("max_threads"),
        )
    raise ConfigError(f"unknown execution model {kind!r}", source=source)


def build_deployment(
    payload: dict,
    sim: Simulator,
    cluster: Cluster,
    templates: Dict[str, ServiceTemplate],
    source: str = "graph.json",
) -> Deployment:
    """Instantiate every microservice of graph.json onto the cluster."""
    if not isinstance(payload, dict):
        raise ConfigError("graph config must be an object", source=source)
    instances = payload.get("instances")
    if not isinstance(instances, list) or not instances:
        raise ConfigError("'instances' must be a non-empty list", source=source)

    deployment = Deployment()
    for spec in instances:
        for key in ("name", "service", "machine", "cores"):
            if key not in spec:
                raise ConfigError(
                    f"instance missing {key!r}: {spec!r}", source=source
                )
        service = spec["service"]
        template = templates.get(service)
        if template is None:
            raise ConfigError(
                f"instance {spec['name']!r} references unknown service "
                f"{service!r}; known: {sorted(templates)}",
                source=source,
            )
        machine = cluster.machine(spec["machine"])
        cores = machine.allocate(spec["name"], int(spec["cores"]))
        io_device = None
        if "io" in spec:
            io_device = IoDevice(
                f"{spec['name']}/io", sim,
                channels=int(spec["io"].get("channels", 1)),
            )
        instance = Microservice(
            spec["name"],
            sim,
            template.build_stages(),
            template.build_selector(),
            cores,
            model=_parse_model(spec.get("model", {}), source),
            machine_name=spec["machine"],
            tier=spec.get("tier", service),
            io_device=io_device,
        )
        deployment.add_instance(instance)

    for spec in payload.get("netproc", []):
        machine_name = spec.get("machine")
        if machine_name is None:
            raise ConfigError("netproc entry needs 'machine'", source=source)
        machine = cluster.machine(machine_name)
        name = f"netproc@{machine_name}"
        cores = machine.allocate(name, int(spec.get("cores", 4)))
        stage = Stage(
            "soft_irq",
            0,
            SingleQueue(batch_limit=4),
            per_job=Deterministic(float(spec.get("per_message_us", 13)) * 1e-6),
            per_byte=Deterministic(float(spec.get("per_byte_ns", 12)) * 1e-9),
            batching=True,
        )
        selector = PathSelector([ExecutionPath(0, "irq", [0])])
        deployment.set_netproc(
            machine_name,
            Microservice(
                name, sim, [stage], selector, cores,
                model=SimpleModel(), machine_name=machine_name, tier="netproc",
            ),
        )

    for service, size in payload.get("pools", {}).items():
        deployment.set_pool(service, int(size))
    for service, policy in payload.get("balancers", {}).items():
        deployment.set_balancer(service, policy)
    return deployment
