"""JSON codec for processing-time distributions.

The ``histograms`` input of paper Table I, generalised: a stage cost in
any config file is either an inline histogram, a reference to a
profiling histogram file, a parametric distribution, or a per-frequency
table of any of those. Times are given in microseconds (``_us`` keys)
to keep configs readable.

Examples::

    {"dist": "exponential", "mean_us": 1000}
    {"dist": "deterministic", "value_us": 8}
    {"dist": "erlang", "k": 4, "mean_us": 105}
    {"dist": "histogram", "file": "profiles/nginx_handler.json"}
    {"dist": "histogram", "unit": "us", "edges": [0, 10, 20], "counts": [3, 1]}
    {"dist": "frequency_table", "compute_fraction": 0.8,
     "entries": [{"frequency_ghz": 2.6, "dist": {...}},
                 {"frequency_ghz": 1.2, "dist": {...}}]}
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

from ..distributions import (
    Deterministic,
    Distribution,
    Erlang,
    Exponential,
    FrequencyTable,
    Histogram,
    LogNormal,
    Mixture,
    Pareto,
    Uniform,
    Weibull,
)
from ..errors import ConfigError

US = 1e-6
GHZ = 1e9


def _us(payload: dict, key: str, source: str) -> float:
    try:
        return float(payload[key]) * US
    except KeyError:
        raise ConfigError(f"missing {key!r} in distribution", source=source)
    except (TypeError, ValueError):
        raise ConfigError(f"{key!r} must be a number", source=source)


def parse_distribution(
    payload: dict,
    source: str = "config",
    base_dir: Optional[Path] = None,
) -> Union[Distribution, FrequencyTable]:
    """Parse one distribution (or frequency table) JSON object."""
    if not isinstance(payload, dict):
        raise ConfigError(
            f"distribution must be an object, got {payload!r}", source=source
        )
    kind = payload.get("dist")
    if kind is None:
        raise ConfigError("distribution needs a 'dist' field", source=source)

    if kind == "deterministic":
        return Deterministic(_us(payload, "value_us", source))
    if kind == "exponential":
        return Exponential(_us(payload, "mean_us", source))
    if kind == "uniform":
        return Uniform(_us(payload, "low_us", source), _us(payload, "high_us", source))
    if kind == "erlang":
        k = payload.get("k")
        if not isinstance(k, int):
            raise ConfigError("erlang needs integer 'k'", source=source)
        return Erlang(k, _us(payload, "mean_us", source))
    if kind == "lognormal":
        cv = payload.get("cv")
        if cv is None:
            raise ConfigError("lognormal needs 'cv'", source=source)
        return LogNormal.from_mean_cv(_us(payload, "mean_us", source), float(cv))
    if kind == "pareto":
        shape = payload.get("shape")
        if shape is None:
            raise ConfigError("pareto needs 'shape'", source=source)
        return Pareto(_us(payload, "scale_us", source), float(shape))
    if kind == "weibull":
        shape = payload.get("shape")
        if shape is None:
            raise ConfigError("weibull needs 'shape'", source=source)
        return Weibull(float(shape), _us(payload, "scale_us", source))
    if kind == "mixture":
        comps = payload.get("components")
        if not isinstance(comps, list) or not comps:
            raise ConfigError("mixture needs 'components' list", source=source)
        dists = []
        weights = []
        for comp in comps:
            weight = comp.get("weight")
            if weight is None:
                raise ConfigError(
                    "each mixture component needs 'weight'", source=source
                )
            inner = comp.get("dist")
            if inner is None:
                raise ConfigError(
                    "each mixture component needs 'dist'", source=source
                )
            parsed = parse_distribution(inner, source, base_dir)
            if isinstance(parsed, FrequencyTable):
                raise ConfigError(
                    "frequency tables cannot nest inside mixtures",
                    source=source,
                )
            dists.append(parsed)
            weights.append(float(weight))
        return Mixture(dists, weights)
    if kind == "histogram":
        if "file" in payload:
            path = Path(payload["file"])
            if base_dir is not None and not path.is_absolute():
                path = base_dir / path
            try:
                return Histogram.load(path)
            except OSError as exc:
                raise ConfigError(
                    f"cannot read histogram file {path}: {exc}", source=source
                ) from exc
        return Histogram.from_dict(payload)
    if kind == "frequency_table":
        entries = payload.get("entries")
        if not isinstance(entries, list) or not entries:
            raise ConfigError(
                "frequency_table needs non-empty 'entries'", source=source
            )
        table = {}
        for entry in entries:
            freq = entry.get("frequency_ghz")
            if freq is None:
                raise ConfigError(
                    "each entry needs 'frequency_ghz'", source=source
                )
            inner = parse_distribution(entry.get("dist"), source, base_dir)
            if isinstance(inner, FrequencyTable):
                raise ConfigError(
                    "frequency tables cannot nest", source=source
                )
            table[float(freq) * GHZ] = inner
        return FrequencyTable(
            table, compute_fraction=float(payload.get("compute_fraction", 1.0))
        )

    raise ConfigError(f"unknown distribution kind {kind!r}", source=source)
