"""client.json — input load pattern (Table I).

::

    {
      "name": "client", "machine": "client",
      "arrivals": {"process": "poisson",
                   "pattern": {"type": "constant", "qps": 10000}},
      "mix": [
        {"name": "read", "weight": 0.9,
         "size": {"dist": "exponential", "mean_bytes": 256}},
        {"name": "write", "weight": 0.1, "size_bytes": 512}
      ],
      "stop_at": 1.0,
      "max_requests": null,
      "resilience": {"timeout": 0.05, "retry": {"max_attempts": 3}}
    }

The optional ``resilience`` block (parsed by
:mod:`repro.config.resilience_config`) attaches a
:class:`~repro.resilience.ResiliencePolicy` to every request the
client issues.
"""

from __future__ import annotations

from typing import Optional

from ..distributions import Deterministic, Exponential
from ..engine import Simulator
from ..errors import ConfigError
from ..topology import Dispatcher
from ..workload import (
    ConstantLoad,
    DeterministicArrivals,
    DiurnalPattern,
    OpenLoopClient,
    PoissonArrivals,
    RequestMix,
    RequestType,
    StepPattern,
)
from .resilience_config import parse_resilience


def parse_pattern(payload: dict, source: str):
    """Parse a load-pattern object (constant/diurnal/steps)."""
    kind = payload.get("type", "constant")
    if kind == "constant":
        return ConstantLoad(float(payload["qps"]))
    if kind == "diurnal":
        return DiurnalPattern(
            low=float(payload["low_qps"]),
            high=float(payload["high_qps"]),
            period=float(payload["period_s"]),
            phase=float(payload.get("phase_s", 0.0)),
        )
    if kind == "steps":
        return StepPattern(
            [(float(t), float(q)) for t, q in payload["steps"]]
        )
    raise ConfigError(f"unknown load pattern {kind!r}", source=source)


def parse_arrivals(payload: dict, source: str):
    """Parse the arrivals object: a pattern plus the point process."""
    pattern = parse_pattern(payload.get("pattern", payload), source)
    process = payload.get("process", "poisson")
    if process == "poisson":
        return PoissonArrivals(pattern)
    if process == "deterministic":
        return DeterministicArrivals(pattern)
    raise ConfigError(f"unknown arrival process {process!r}", source=source)


def _parse_size(spec: dict, source: str):
    if "size_bytes" in spec:
        return Deterministic(float(spec["size_bytes"]))
    size = spec.get("size")
    if size is None:
        return None
    if size.get("dist") == "exponential" and "mean_bytes" in size:
        return Exponential(float(size["mean_bytes"]))
    raise ConfigError(
        f"unsupported size spec {size!r} (use size_bytes or "
        f"exponential mean_bytes)",
        source=source,
    )


def parse_mix(payload: list, source: str) -> RequestMix:
    """Parse the request-type mix list."""
    types = []
    for spec in payload:
        if "name" not in spec or "weight" not in spec:
            raise ConfigError(
                f"mix entries need 'name' and 'weight': {spec!r}", source=source
            )
        types.append(
            RequestType(spec["name"], float(spec["weight"]), _parse_size(spec, source))
        )
    return RequestMix(types)


def build_client(
    payload: dict,
    sim: Simulator,
    dispatcher: Dispatcher,
    source: str = "client.json",
    realism=None,
) -> OpenLoopClient:
    """Build (but don't start) the open-loop client of client.json."""
    if not isinstance(payload, dict):
        raise ConfigError("client config must be an object", source=source)
    arrivals_spec = payload.get("arrivals")
    if arrivals_spec is None:
        raise ConfigError("client needs 'arrivals'", source=source)
    mix: Optional[RequestMix] = None
    if "mix" in payload:
        mix = parse_mix(payload["mix"], source)
    stop_at = payload.get("stop_at")
    max_requests = payload.get("max_requests")
    return OpenLoopClient(
        sim,
        dispatcher,
        arrivals=parse_arrivals(arrivals_spec, source),
        mix=mix,
        name=payload.get("name", "client"),
        machine=payload.get("machine", "client"),
        stop_at=stop_at,
        max_requests=max_requests,
        realism=realism,
        resilience=parse_resilience(payload.get("resilience"), source),
    )
