"""Supervised shard workers: rebuild-and-replay fault tolerance.

A :class:`ShardSupervisor` wraps one
:class:`~repro.shard.worker.ShardWorkerProxy` and presents the same
host interface to the :class:`~repro.shard.sync.ConservativeCoordinator`
— but where the bare proxy turns a dead or hung worker into a fatal
:class:`~repro.errors.ShardingError`, the supervisor *recovers*:

1. reap the failed process (SIGKILL if it is merely hung);
2. rebuild the shard from its picklable ``(builder, kwargs)`` spec in
   a fresh process (capped exponential backoff between attempts);
3. replay the journaled inbound history
   (:class:`~repro.shard.journal.ReplayJournal`) round by round up to
   the last completed barrier — determinism from the named-stream
   seeding discipline guarantees the replayed shard reaches a
   bit-identical state;
4. verify, don't trust: each replayed round's outbound digest must
   match the journal. Divergence means the determinism contract is
   broken, and the supervisor aborts loudly rather than continue with
   silently different statistics;
5. re-stage the in-flight round, if the failure struck mid-window.

Recovery is budgeted: more than *max_restarts* failures of one shard
raises :class:`~repro.errors.ShardingError` carrying the full
per-failure attribution (what died, at which journaled round, why) —
a flapping worker is a real problem, not something to retry forever.
This mirrors the sweep-level self-healing contract of
:mod:`repro.runner.parallel` (retries + timeouts + quarantine), one
layer down.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

from ..errors import ShardingError
from .journal import ReplayJournal, outbound_digest
from .message import ShardMessage
from .worker import (
    DEFAULT_WINDOW_TIMEOUT,
    HostSpec,
    ShardWorkerDied,
    ShardWorkerHung,
    ShardWorkerProxy,
    spawn_worker,
)

_RECOVERABLE = (ShardWorkerDied, ShardWorkerHung)


class ShardSupervisor:
    """One shard's guardian: liveness, restart budget, verified replay.

    Implements the coordinator-side host interface (``horizon`` /
    ``begin_advance`` / ``finish_advance`` / ``finalize`` / ``close``)
    plus the chaos hooks, delegating to the current proxy and
    transparently replacing it on failure.
    """

    def __init__(
        self,
        shard_id: int,
        spec: HostSpec,
        proxy: ShardWorkerProxy,
        journal: ReplayJournal,
        *,
        max_restarts: int = 3,
        window_timeout: Optional[float] = DEFAULT_WINDOW_TIMEOUT,
        backoff_base: float = 0.05,
        backoff_cap: float = 1.0,
        ctx=None,
    ) -> None:
        if max_restarts < 0:
            raise ShardingError(
                f"max_restarts must be >= 0, got {max_restarts!r}"
            )
        self.shard_id = shard_id
        self.spec = spec
        self.journal = journal
        self.max_restarts = max_restarts
        self.window_timeout = window_timeout
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        if ctx is None:
            import multiprocessing

            ctx = multiprocessing.get_context()
        self._ctx = ctx
        self._proxy = proxy
        #: Restarts consumed so far (the budget is ``max_restarts``).
        self.restarts = 0
        #: Total journaled rounds re-executed across all recoveries.
        self.replayed_rounds = 0
        #: Human-readable attribution, one entry per failure.
        self.failures: List[str] = []
        #: The staged-but-unfinished round, re-staged after recovery.
        self._current: Optional[tuple] = None

    # Host interface ---------------------------------------------------

    def horizon(self) -> float:
        return self._proxy.horizon()

    def begin_advance(
        self, until: float, inbound: Sequence[ShardMessage]
    ) -> None:
        self._current = (until, list(inbound))
        try:
            self._proxy.begin_advance(until, self._current[1])
        except _RECOVERABLE as exc:
            self._recover(exc)  # recovery re-stages self._current

    def finish_advance(self):
        while True:
            try:
                result = self._proxy.finish_advance()
            except _RECOVERABLE as exc:
                self._recover(exc)
                continue
            self._current = None
            return result

    def finalize(self) -> dict:
        while True:
            try:
                return self._proxy.finalize()
            except _RECOVERABLE as exc:
                self._recover(exc)

    def close(self) -> None:
        self._proxy.reap()

    # Chaos hooks ------------------------------------------------------

    def inject_kill(self) -> None:
        self._proxy.inject_kill()

    def inject_hang(self) -> None:
        self._proxy.inject_hang()

    # Recovery ---------------------------------------------------------

    def recovery_summary(self) -> dict:
        """Manifest-ready attribution of this shard's recoveries."""
        return {
            "restarts": self.restarts,
            "replayed_rounds": self.replayed_rounds,
            "failures": list(self.failures),
        }

    def _charge(self, cause: BaseException) -> None:
        """Record one failure against the budget; raise when spent."""
        self.failures.append(
            f"after round {self.journal.rounds - 1} "
            f"({type(cause).__name__}): {cause}"
        )
        if self.restarts >= self.max_restarts:
            detail = "; ".join(self.failures)
            raise ShardingError(
                f"shard {self.shard_id} exhausted its restart budget "
                f"(max_shard_restarts={self.max_restarts}): {detail}"
            ) from cause
        self.restarts += 1

    def _recover(self, cause: BaseException) -> None:
        """Replace the failed worker: reap, backoff, respawn, replay
        the journal (verifying digests), re-stage the current round."""
        self._charge(cause)
        self._proxy.reap()
        while True:
            time.sleep(
                min(
                    self.backoff_cap,
                    self.backoff_base * (2 ** (self.restarts - 1)),
                )
            )
            proxy = spawn_worker(
                self._ctx, self.shard_id, self.spec, self.window_timeout
            )
            try:
                for record in self.journal.shard_history(self.shard_id):
                    proxy.begin_advance(record.until, list(record.inbound))
                    _horizon, out = proxy.finish_advance()
                    digest = outbound_digest(out)
                    if digest != record.digest:
                        proxy.reap()
                        raise ShardingError(
                            f"shard {self.shard_id} diverged on replay of "
                            f"round {record.round_index}: outbound digest "
                            f"{digest} != journaled {record.digest}. The "
                            f"shard is not a pure function of (spec, "
                            f"inbound history) — its model breaks the "
                            f"named-stream determinism contract, so "
                            f"recovery cannot be trusted."
                        ) from cause
                    self.replayed_rounds += 1
                if self._current is not None:
                    proxy.begin_advance(
                        self._current[0], self._current[1]
                    )
            except _RECOVERABLE as replay_exc:
                # The fresh worker failed too: charge the budget and
                # try again (a divergence above is NOT retried — it is
                # a determinism bug, not a liveness one).
                self._charge(replay_exc)
                proxy.reap()
                continue
            self._proxy = proxy
            return


__all__ = ["ShardSupervisor"]
