"""Conservative time-window synchronisation across shards.

Each shard owns a :class:`~repro.engine.Simulator` and advances in
rounds under a :class:`ConservativeCoordinator`. The algorithm is the
classic conservative (CMB/YAWNS-style) window scheme:

* every shard reports its **effective horizon** ``eff_i`` — the
  earliest simulated time at which it could possibly execute anything
  (its next local event, or the earliest undelivered inbound message);
* shard ``i`` may safely run to ``bound_i = min_j(eff_j + D[j][i])``,
  where ``D[j][i]`` is the minimum latency of any path of cross-shard
  edges from ``j`` to ``i`` (the *lookahead* closure; ``D[i][i]`` is
  the shortest cycle through ``i``, bounding replies to ``i``'s own
  sends) — no event any shard executes this round can cause an
  arrival at ``i`` earlier than that;
* messages emitted during a round are exchanged at the barrier and
  scheduled by the receiver at their stamps before the next round.

Progress is guaranteed when every cross-shard edge has strictly
positive lookahead: the shard holding the globally earliest event
always has ``bound > eff`` and therefore executes it. A message
stamped earlier than the sender's clock plus its edge lookahead is a
broken contract and raises :class:`~repro.errors.ShardingError` — the
conservative guarantee is checked, not assumed.

Determinism: inbound messages are sorted by their canonical
:attr:`~repro.shard.message.ShardMessage.sort_key` before scheduling,
so delivery never depends on process timing; each shard draws from
named :class:`~repro.engine.RandomStreams` derived from the shared
root seed, so shard count never changes which values a component
draws.
"""

from __future__ import annotations

import math
import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..engine import PRIORITY_ARRIVAL, Event, Simulator
from ..errors import ShardingError
from .message import ShardMessage, deterministic_order

INF = math.inf

#: Absolute slack for the send-time lookahead guard: delay arithmetic
#: (``now + sample``) and bound arithmetic (``now + minimum``) round
#: differently at the last ulp, and a one-ulp shortfall is not a
#: causality violation.
_GUARD_SLACK = 1e-15


class ShardHost:
    """One shard: a simulator plus mailbox plumbing.

    Subclasses implement :meth:`handle` (apply one inbound message to
    the local model) and extend :meth:`finalize` (return the shard's
    results as a picklable dict). The host is driven either in-process
    or inside a worker process (:mod:`repro.shard.worker`) — the
    interface is identical.
    """

    def __init__(
        self,
        shard_id: int,
        sim: Simulator,
        lookahead: float,
        end_time: Optional[float] = None,
    ) -> None:
        self.shard_id = shard_id
        self.sim = sim
        #: Minimum extra delay this shard adds to any outbound message
        #: (its outgoing edges' lookahead floor). The send guard checks
        #: against it.
        self.lookahead = float(lookahead)
        #: Optional hard horizon (duration-style measurements stop the
        #: clock at a fixed time, mirroring ``Simulator.run(until=...)``
        #: in the single-shard harness). Events stamped past it never
        #: run and do not count towards the reported horizon, so the
        #: coordinator terminates once every shard reaches it.
        self.end_time = end_time
        self._outbox: List[Tuple[int, ShardMessage]] = []
        self._send_seq = 0
        self._pending_advance: Optional[
            Tuple[float, List[ShardMessage]]
        ] = None
        # Per-round conservation ledger for the merged cross-shard
        # audit: one dict per advance() call (== one per coordinator
        # round, since every host advances every round), keyed by the
        # peer shard id as a string (picklable *and* JSON-safe, so the
        # ledger survives the worker pipe and the run manifest).
        self._round_sent: Dict[str, int] = {}
        self._conservation_sent: List[Dict[str, int]] = []
        self._conservation_recv: List[Dict[str, int]] = []
        # Runtime introspection (always on — a few appends per *round*,
        # never per event, so it stays off the engine fast path): wall
        # seconds spent executing each advance, events executed per
        # round, and the simulated window each round granted. Shipped
        # home in finalize()["runtime"] and aggregated by
        # ConservativeCoordinator.runtime_report.
        self._advance_wall: List[float] = []
        self._events_per_round: List[int] = []
        self._granted_windows: List[float] = []

    # Outbound ---------------------------------------------------------

    def send(
        self,
        dst_shard: int,
        time: float,
        kind: str,
        payload: tuple,
        priority: int = PRIORITY_ARRIVAL,
    ) -> None:
        """Queue a cross-shard delivery stamped at absolute *time*.

        The stamp must respect the conservative contract:
        ``time >= now + lookahead``. Violations raise
        :class:`~repro.errors.ShardingError` at the sender, where the
        bug is, instead of surfacing later as a past-event crash at the
        receiver.
        """
        if time < self.sim.now + self.lookahead - _GUARD_SLACK:
            raise ShardingError(
                f"shard {self.shard_id} stamped a message at t={time!r} "
                f"but its clock is {self.sim.now!r} with lookahead "
                f"{self.lookahead!r}: conservative windows require "
                f"stamps >= clock + lookahead"
            )
        self._send_seq += 1
        key = str(dst_shard)
        self._round_sent[key] = self._round_sent.get(key, 0) + 1
        self._outbox.append((
            dst_shard,
            ShardMessage(
                time=float(time),
                priority=priority,
                src_shard=self.shard_id,
                seq=self._send_seq,
                kind=kind,
                payload=payload,
            ),
        ))

    # Coordinator interface --------------------------------------------

    def horizon(self) -> float:
        """Earliest pending local event time (``inf`` when idle).

        Events at or past :attr:`end_time` will never run, so they do
        not count — a shard whose remaining work is entirely beyond the
        measurement horizon reports idle.
        """
        t = self.sim.events.peek_time()
        if t is None:
            return INF
        if self.end_time is not None and t > self.end_time:
            # run(until=...) is inclusive, so only *strictly* later
            # events are unreachable.
            return INF
        return t

    def begin_advance(
        self, until: float, inbound: Sequence[ShardMessage]
    ) -> None:
        """Stage one round (two-phase so process proxies can overlap)."""
        self._pending_advance = (until, list(inbound))

    def finish_advance(self) -> Tuple[float, List[Tuple[int, ShardMessage]]]:
        """Run the staged round; returns (new horizon, outbox)."""
        assert self._pending_advance is not None, "begin_advance not called"
        until, inbound = self._pending_advance
        self._pending_advance = None
        return self.advance(until, inbound)

    def advance(
        self, until: float, inbound: Sequence[ShardMessage]
    ) -> Tuple[float, List[Tuple[int, ShardMessage]]]:
        """Deliver *inbound*, run to *until* (inclusive), drain outbox."""
        wall_start = time.perf_counter()
        events_before = self.sim.events_processed
        clock_before = self.sim.now
        received: Dict[str, int] = {}
        for msg in inbound:
            key = str(msg.src_shard)
            received[key] = received.get(key, 0) + 1
        now = self.sim.now
        delivery = []
        for msg in deterministic_order(inbound):
            if msg.time < now:
                raise ShardingError(
                    f"shard {self.shard_id} received {msg.kind!r} from "
                    f"shard {msg.src_shard} stamped t={msg.time!r} but "
                    f"its clock is already {self.sim.now!r}: the "
                    f"coordinator's window bound was not conservative"
                )
            delivery.append(Event(msg.time, self.handle, (msg,), msg.priority))
        # One vectorised insert for the whole window's mailbox instead
        # of per-message schedule_at calls (see EventQueue.push_batch).
        self.sim.events.push_batch(delivery)
        limit = until
        if self.end_time is not None:
            limit = min(limit, self.end_time)
        if math.isinf(limit):
            self.sim.run()
        else:
            self.sim.run(until=limit)
        out = self._outbox
        self._outbox = []
        self._conservation_recv.append(received)
        self._conservation_sent.append(self._round_sent)
        self._round_sent = {}
        self._advance_wall.append(time.perf_counter() - wall_start)
        self._events_per_round.append(
            self.sim.events_processed - events_before
        )
        # The simulated window this round granted. An unbounded round
        # (limit == inf: the shard drains) reports the clock it
        # actually covered instead of an unusable infinity.
        granted = limit - clock_before
        if math.isinf(granted):
            granted = self.sim.now - clock_before
        self._granted_windows.append(max(0.0, granted))
        return self.horizon(), out

    # Model hooks ------------------------------------------------------

    def handle(self, message: ShardMessage) -> None:
        """Apply one inbound message at its stamped time."""
        raise NotImplementedError

    def finalize(self) -> dict:
        """Shard results after the last round (picklable).

        The ``conservation`` block is the shard's half of the merged
        cross-shard audit (:func:`repro.experiments.audit.audit_sharded_run`):
        per-round send/receive counts keyed by peer shard, which the
        coordinator's barrier semantics tie together — everything sent
        in round *r* is delivered in round *r + 1*, exactly once.
        """
        return {
            "shard": self.shard_id,
            "events": self.sim.events_processed,
            "clock": self.sim.now,
            "conservation": {
                "sent": list(self._conservation_sent),
                "received": list(self._conservation_recv),
            },
            # Wall/window introspection per round; the coordinator
            # folds it into runtime_report (busy vs blocked wall,
            # window efficiency, idle rounds). Like the conservation
            # ledger, a replayed host rebuilds it from round zero, so
            # recovery keeps it consistent.
            "runtime": {
                "busy_wall_s": float(sum(self._advance_wall)),
                "events_per_round": list(self._events_per_round),
                "granted_windows_s": list(self._granted_windows),
            },
        }


class ConservativeCoordinator:
    """Runs a set of shard hosts to completion in conservative rounds.

    *lookaheads* maps ``(src, dst)`` shard pairs to the minimum delay
    of that edge; absent pairs mean "never sends directly". The
    coordinator closes the matrix over paths (an idle intermediate
    shard can be woken next round and relay), checks every finite
    entry is strictly positive, and then iterates rounds until every
    shard is idle with an empty mailbox.

    *max_window* optionally caps each round at
    ``min(eff) + max_window`` — useful to bound the memory of a shard
    racing far ahead; it cannot affect results, only round count.

    *journal*, when given, is a
    :class:`~repro.shard.journal.ReplayJournal` the coordinator fills
    with every completed round (bounds, inbound messages, outbound
    digests) — the replay log supervised workers recover from.
    *chaos* maps a round index to ``[(shard_id, action), ...]`` fault
    injections (``"kill"`` / ``"hang"``), fired just after the round's
    commands are staged; it requires hosts exposing the injection
    hooks (supervised process workers).
    """

    def __init__(
        self,
        hosts: Sequence,
        lookaheads: Dict[Tuple[int, int], float],
        max_window: Optional[float] = None,
        journal=None,
        chaos: Optional[Dict[int, Sequence[Tuple[int, str]]]] = None,
    ) -> None:
        self.hosts = list(hosts)
        self.journal = journal
        self.chaos = dict(chaos) if chaos else {}
        #: ``(round, shard, action)`` triples actually injected.
        self.chaos_fired: List[Tuple[int, int, str]] = []
        n = len(self.hosts)
        if n == 0:
            raise ShardingError("coordinator needs at least one shard")
        if max_window is not None and not max_window > 0:
            raise ShardingError(
                f"max_window must be positive, got {max_window!r}"
            )
        for at_round, injections in self.chaos.items():
            for shard, action in injections:
                if not 0 <= shard < n:
                    raise ShardingError(
                        f"chaos at round {at_round} targets shard "
                        f"{shard}, outside 0..{n - 1}"
                    )
                if action not in ("kill", "hang"):
                    raise ShardingError(
                        f"chaos action must be 'kill' or 'hang', "
                        f"got {action!r}"
                    )
                if not hasattr(self.hosts[shard], "inject_kill"):
                    raise ShardingError(
                        "chaos injection requires supervised process "
                        "workers (host has no injection hooks)"
                    )
        self.max_window = max_window
        self.rounds = 0
        self.messages_exchanged = 0
        #: Stall detections. A stall aborts the run, so this is 0 on
        #: success and 1 on a :class:`~repro.errors.ShardingError`
        #: stall abort — surfaced so post-mortems (and the manifest)
        #: can tell a stall from any other failure.
        self.stalls = 0
        #: Per round: the shard whose effective horizon bounded the
        #: round (argmin eff, ties to the lowest id) — the round's
        #: straggler, holding the globally earliest work.
        self.bound_by: List[int] = []
        #: ``shard id -> rounds it bounded``; values sum to exactly
        #: :attr:`rounds` (one attribution per round, checked by the
        #: timeline report's reconciliation).
        self.straggler_rounds: Dict[int, int] = {}
        #: Total wall seconds spent inside :meth:`run`'s round loop.
        self.wall_s = 0.0
        dist = [[INF] * n for _ in range(n)]
        for (src, dst), la in lookaheads.items():
            if not 0 <= src < n or not 0 <= dst < n:
                raise ShardingError(
                    f"lookahead edge ({src}, {dst}) outside 0..{n - 1}"
                )
            if src == dst:
                continue
            if not la > 0.0:
                raise ShardingError(
                    f"cross-shard edge ({src}, {dst}) has non-positive "
                    f"lookahead {la!r}; conservative sync cannot make "
                    f"progress — colocate the endpoints or fall back to "
                    f"shards=1 (see repro.shard.partition)"
                )
            dist[src][dst] = min(dist[src][dst], float(la))
        # Close over relay paths (Floyd–Warshall): when j is idle this
        # round, a message k -> j -> i next round is bounded by
        # D[k][j] + D[j][i], and the window for i must respect it.
        # The diagonal D[i][i] relaxes to the shortest *cycle* through
        # i — a message i sends can come back as a reply no earlier
        # than one round trip, and that bounds i against its own
        # future (request/reply topologies are cycles, so without the
        # diagonal a shard could race past replies to messages it is
        # about to send).
        for k in range(n):
            dk = dist[k]
            for i in range(n):
                dik = dist[i][k]
                if math.isinf(dik):
                    continue
                di = dist[i]
                for j in range(n):
                    via = dik + dk[j]
                    if via < di[j]:
                        di[j] = via
        self._dist = dist

    def run(self) -> List[dict]:
        """Drive all shards to completion; returns per-shard finalize
        dicts (in shard order)."""
        if self.journal is not None:
            from .journal import outbound_digest
        hosts = self.hosts
        n = len(hosts)
        dist = self._dist
        pending: List[List[ShardMessage]] = [[] for _ in range(n)]
        horizons = [host.horizon() for host in hosts]
        last_state: Optional[tuple] = None
        while True:
            round_start = time.perf_counter()
            effs = [
                min(
                    horizons[i],
                    min((m.time for m in pending[i]), default=INF),
                )
                for i in range(n)
            ]
            if all(math.isinf(e) for e in effs):
                break
            state = (tuple(effs), tuple(len(p) for p in pending))
            if state == last_state:
                self.stalls += 1
                raise ShardingError(
                    f"conservative rounds stalled at horizons {effs!r}: "
                    f"no shard advanced and no messages moved"
                )
            last_state = state
            min_eff = min(effs)
            # Straggler attribution: the shard holding the globally
            # earliest work bounds every window this round.
            binding = min(range(n), key=lambda i: (effs[i], i))
            self.bound_by.append(binding)
            self.straggler_rounds[binding] = (
                self.straggler_rounds.get(binding, 0) + 1
            )
            bounds = []
            for i in range(n):
                # j ranges over *all* shards: j == i uses the shortest
                # cycle through i (replies to i's own sends).
                bound = min(
                    (
                        effs[j] + dist[j][i]
                        for j in range(n)
                        if not math.isinf(dist[j][i])
                    ),
                    default=INF,
                )
                if self.max_window is not None:
                    bound = min(bound, min_eff + self.max_window)
                bounds.append(bound)
            inbounds = pending
            pending = [[] for _ in range(n)]
            for i in range(n):
                hosts[i].begin_advance(bounds[i], inbounds[i])
            # Chaos lands after the round's commands are staged: a
            # "kill" strikes the worker mid-advance (it may or may not
            # have replied — recovery must handle both), a "hang" is
            # queued behind the advance and silences the *next* read.
            for shard, action in self.chaos.get(self.rounds, ()):
                host = hosts[shard]
                if action == "kill":
                    host.inject_kill()
                else:
                    host.inject_hang()
                self.chaos_fired.append((self.rounds, shard, action))
            outs: List[List[Tuple[int, ShardMessage]]] = []
            for i in range(n):
                horizons[i], out = hosts[i].finish_advance()
                outs.append(out)
                for dst, msg in out:
                    if not 0 <= dst < n:
                        raise ShardingError(
                            f"shard {i} addressed unknown shard {dst}"
                        )
                    pending[dst].append(msg)
                    self.messages_exchanged += 1
            if self.journal is not None:
                self.journal.record_round(
                    self.rounds,
                    bounds,
                    inbounds,
                    [outbound_digest(out) for out in outs],
                )
            self.rounds += 1
            self.wall_s += time.perf_counter() - round_start
        return [host.finalize() for host in hosts]

    def runtime_report(self, results: Sequence[dict]) -> dict:
        """Fold coordinator counters and per-shard ``finalize`` runtime
        blocks into one introspection report.

        Per shard: wall seconds spent executing (``busy_wall_s``, from
        the host's own advance timing), wall seconds the coordinator's
        round loop ran while the shard was *not* executing
        (``blocked_wall_s`` — barrier waits in process mode, the other
        shards' turns inline), rounds that granted the shard a window
        it executed nothing in (``idle_rounds``), and window efficiency
        (events executed per simulated second of granted window).
        Plus the round-level attribution: which shard bounded each
        round's horizon (``straggler_rounds``, summing to exactly
        :attr:`rounds`) and per-edge mailbox volume series rebuilt from
        the conservation ledgers (totals sum to exactly
        :attr:`messages_exchanged`).
        """
        per_shard: Dict[str, dict] = {}
        mailbox_total: Dict[str, int] = {}
        mailbox_per_round: Dict[str, List[int]] = {}
        for result in results:
            shard = result["shard"]
            runtime = result.get("runtime") or {}
            events_per_round = list(runtime.get("events_per_round", ()))
            granted = list(runtime.get("granted_windows_s", ()))
            busy = float(runtime.get("busy_wall_s", 0.0))
            granted_total = float(sum(granted))
            per_shard[str(shard)] = {
                "events": result.get("events", 0),
                "busy_wall_s": busy,
                "blocked_wall_s": max(0.0, self.wall_s - busy),
                "rounds": len(events_per_round),
                "idle_rounds": sum(
                    1 for count in events_per_round if count == 0
                ),
                "events_per_round": events_per_round,
                "granted_windows_s": granted,
                "window_efficiency": (
                    sum(events_per_round) / granted_total
                    if granted_total > 0 else 0.0
                ),
            }
            sent = (result.get("conservation") or {}).get("sent", ())
            for round_index, round_sent in enumerate(sent):
                for dst, count in round_sent.items():
                    edge = f"{shard}->{dst}"
                    mailbox_total[edge] = (
                        mailbox_total.get(edge, 0) + count
                    )
                    series = mailbox_per_round.setdefault(edge, [])
                    while len(series) <= round_index:
                        series.append(0)
                    series[round_index] += count
        return {
            "rounds": self.rounds,
            "messages_exchanged": self.messages_exchanged,
            "stalls": self.stalls,
            "wall_s": self.wall_s,
            "mode": getattr(self, "mode", "inline"),
            "straggler_rounds": {
                str(shard): count
                for shard, count in sorted(self.straggler_rounds.items())
            },
            "bound_by": list(self.bound_by),
            "per_shard": per_shard,
            "mailbox_volume": dict(sorted(mailbox_total.items())),
            "mailbox_per_round": {
                edge: list(series)
                for edge, series in sorted(mailbox_per_round.items())
            },
        }
