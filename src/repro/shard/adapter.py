"""Generic shard-side world adapter: any registered topology under
``--shards``.

PR 7/8 parallelised exactly one world — the 500-leaf fan-out — by
re-expressing its dispatch logic by hand inside two bespoke
:class:`~repro.shard.sync.ShardHost` subclasses
(:mod:`repro.shard.fanout`). This module replaces the need for such
hand ports: :class:`ShardedDispatcher` runs the real
:class:`~repro.topology.Dispatcher` / ``Microservice`` wiring behind
ShardHost mailboxes, so a topology builder only has to attach a
``sharded_runner`` built from :func:`sharded_load_point`.

The scheme — **full-world replication with machine ownership**:

* every shard builds the *complete* world from the same builder,
  kwargs, and derived root seed. Idle replicas cost nothing (no
  component schedules events at init), and replication means every
  shard can resolve any instance, pool, or connection by name.
  Named RNG streams come from the shared seed, so a stream yields the
  same values on every replica — placement decides *where* a stream
  is consumed, never *what* it yields.
* every simulated machine is owned by exactly one shard (the
  :func:`~repro.shard.partition.plan_shards` assignment). All
  decisions attached to a machine — instance resolution, pool
  checkout, sequence stamping, message-size draws, the tx netproc and
  the wire-delay draw — execute on the owning shard, on per-machine
  RNG streams (``shard-dispatch/{machine}`` / ``shard-net/{machine}``)
  so the draw order is shard-count invariant. Delivery-side work —
  the rx netproc, in-order delivery, fan-in counting, node ops, and
  the service visit itself — executes on the shard owning the target
  instance's machine.
* a node visit crossing machines becomes a ``ShardMessage`` stamped
  ``now + wire_delay >= now + lookahead`` (the fabric's propagation
  floor *is* the plan's lookahead, so the conservative guarantee
  holds by construction). Same-machine hops short-circuit through
  loopback exactly like the vanilla dispatcher.

Contracts (asserted by ``tests/shard/test_adapter_identity.py`` and
``benchmarks/bench_shard.py``):

* ``shards=1`` (or any planner fallback) runs the untouched vanilla
  path and is bit-identical to it;
* under a draw-free fabric, results are bit-identical across shard
  counts (the adapter's event order does not depend on N);
* results additionally match the vanilla engine bit-for-bit except
  when two messages reach the *same* queue (a netproc or instance) at
  the *same* timestamp: vanilla breaks such ties in global
  event-scheduling order, which a shard cannot reconstruct, so the
  adapter breaks them in its own shard-count-invariant order. Under a
  draw-free fabric at moderate load ties never occur and the match is
  exact (asserted in the tests); under heavy contention a handful of
  requests per thousand see their queueing resolved in the other
  order — same distribution, same conservation, different samples.
  (The fan-in bookkeeping also moves: the adapter ships one
  cross-machine message per parent and counts arrivals at the child,
  where vanilla counts at the parents and ships only the last one —
  entry still happens at the same max-arrival instant.);
* supervision, barrier-replay recovery, and the merged conservation
  audit (PR 8) work unchanged — the hosts here are ordinary
  ``ShardHost`` subclasses.

Telemetry ships home at ``finalize()``: each shard returns the spans
and events of the requests it touched (only when tracing is on — a
trace-off run never pays the shipping cost), the root shard returns
the client's latency recorder samples and the SLO monitor summary,
and :func:`sharded_load_point` merges everything into the same
``SweepPoint`` / trace-export artifacts the vanilla path produces.

Not everything can run under the adapter; unsupported shapes raise
:class:`~repro.errors.ShardingError` at build time rather than
diverging silently: multi-instance services (placement would need a
cross-shard balancer), resilience policies (retry/hedge timers would
race the window barrier), ``connection_of`` ops whose target node
lives on a different machine, and in-simulation fault plans.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..engine import PRIORITY_ARRIVAL
from ..errors import ShardingError
from ..service import Job, Request
from ..service.job import OUTCOME_OK
from ..telemetry.tracing import Span, SpanEvent, TraceConfig
from ..topology.dispatcher import Dispatcher, _RequestGroup
from ..topology.path_tree import PathNode, PathTree
from ..workload import OpenLoopClient
from .fanout import _shard_chaos
from .partition import plan_shards
from .sync import ShardHost
from .worker import run_sharded

__all__ = [
    "ShardedDispatcher",
    "WorldShardHost",
    "build_world_shard_host",
    "sharded_load_point",
    "validate_world_shardable",
]

#: Telemetry knobs every adapter-based runner supports; loadsweep's
#: blocked-knob check reads this attribute off the runner instead of
#: guessing from ``**kwargs`` signatures.
ADAPTER_KNOBS = ("mix", "trace", "trace_dir", "slo", "scrape")


def _owned_tiers(deployment, assignments: Dict[str, int],
                 shard_id: int) -> Dict[str, list]:
    """The scrape-tier grouping restricted to machines this shard
    owns — the sharded counterpart of
    :func:`repro.telemetry.scrape.scrape_tiers`, so merged sharded
    timelines use the same series names as a vanilla run."""
    tiers: Dict[str, list] = {}
    for service in deployment.services:
        owned = [
            inst for inst in deployment.instances(service)
            if assignments.get(inst.machine_name) == shard_id
        ]
        if owned:
            tiers[service] = owned
    for machine, proc in deployment.netprocs.items():
        if assignments.get(machine) == shard_id:
            tiers[proc.name] = [proc]
    return tiers


def _iter_trees(dispatcher: Dispatcher) -> List[PathTree]:
    """Every registered tree, deduped by name."""
    seen: Dict[str, PathTree] = {}
    for tree, _weight in dispatcher._trees:
        seen.setdefault(tree.name, tree)
    for tree in dispatcher._trees_by_type.values():
        seen.setdefault(tree.name, tree)
    for tree in dispatcher._trees_by_name.values():
        seen.setdefault(tree.name, tree)
    return list(seen.values())


def validate_world_shardable(world) -> Dict[Tuple[str, str], str]:
    """Check *world* fits the adapter's ownership rules.

    Returns the ``(tree_name, node_name) -> machine_name`` ownership
    map; raises :class:`~repro.errors.ShardingError` describing the
    first unsupported shape found.
    """
    deployment = world.deployment
    node_machine: Dict[Tuple[str, str], str] = {}
    for tree in _iter_trees(world.dispatcher):
        for node in tree.nodes:
            instances = deployment.instances(node.service)
            if len(instances) != 1:
                raise ShardingError(
                    f"service {node.service!r} has {len(instances)} "
                    f"instances; the shard adapter requires "
                    f"single-instance services (a cross-shard load "
                    f"balancer would split its rotation state)"
                )
            node_machine[(tree.name, node.name)] = instances[0].machine_name
        for node in tree.nodes:
            mine = node_machine[(tree.name, node.name)]
            for op in (node.on_enter, node.on_leave):
                if op is not None and op.connection_of is not None:
                    ref = node_machine.get((tree.name, op.connection_of))
                    if ref != mine:
                        raise ShardingError(
                            f"node {node.name!r} carries a "
                            f"connection_of={op.connection_of!r} op but "
                            f"that node runs on machine {ref!r}, not "
                            f"{mine!r}: cross-machine block/unblock "
                            f"targets are not shardable"
                        )
    return node_machine


class _AdapterState:
    """Per-request bookkeeping on one shard (the sharded counterpart
    of the dispatcher's ``_RequestState``; exposes the ``node_conn`` /
    ``request`` surface the inherited ``_apply_op`` reads)."""

    __slots__ = (
        "request", "tree", "node_instance", "node_conn", "node_conn_key",
        "node_upstream", "arrivals", "entered", "left", "my_remaining",
        "used_conns", "spans", "events", "traced",
    )

    def __init__(self, request: Request, tree: PathTree,
                 my_remaining: int, traced: bool) -> None:
        self.request = request
        self.tree = tree
        self.node_instance: Dict[str, Any] = {}
        self.node_conn: Dict[str, Any] = {}
        self.node_conn_key: Dict[str, Optional[tuple]] = {}
        self.node_upstream: Dict[str, str] = {}
        self.arrivals: Dict[str, int] = {}
        self.entered: Dict[str, bool] = {}
        self.left: Dict[str, bool] = {}
        self.my_remaining = my_remaining
        self.used_conns: List[Any] = []
        self.traced = traced
        self.spans: Dict[str, Span] = {}
        self.events: List[tuple] = []


class ShardedDispatcher(Dispatcher):
    """The vanilla dispatcher with cross-machine legs routed through a
    :class:`~repro.shard.sync.ShardHost` mailbox.

    Constructed *from* an already-built world: it adopts the world's
    registered trees and replaces the world's dispatcher. Requests are
    only ever submitted on the root shard (where the client machine
    lives); every other shard sees them as inbound ``enter`` messages.
    """

    def __init__(self, host: "WorldShardHost", world, assignments: Dict[str, int],
                 span_breakdown: bool = True) -> None:
        super().__init__(world.sim, world.deployment,
                         network=world.cluster.network)
        source = world.dispatcher
        self._trees = list(source._trees)
        self._trees_by_type = dict(source._trees_by_type)
        self._trees_by_name = dict(source._trees_by_name)
        self._host = host
        self._assignments = dict(assignments)
        self._span_breakdown = span_breakdown
        self._node_machine = validate_world_shardable(world)
        #: tree name -> how many of its nodes this shard executes;
        #: drives per-request state teardown.
        self._my_node_count: Dict[str, int] = {}
        for (tree_name, _node), machine in self._node_machine.items():
            if self._assignments[machine] == host.shard_id:
                self._my_node_count[tree_name] = (
                    self._my_node_count.get(tree_name, 0) + 1
                )
        self._trees_by_tree_name = {
            tree.name: tree for tree in _iter_trees(self)
        }
        self._states: Dict[int, _AdapterState] = {}
        self._groups: Dict[int, _RequestGroup] = {}
        #: request_id -> (spans, events) of completed requests this
        #: shard touched; shipped home in ``finalize``. Never written
        #: when tracing is off.
        self._trace_shadow: Dict[int, Tuple[list, list]] = {}
        self._machine_rngs: Dict[str, Any] = {}
        self._machine_nets: Dict[str, Any] = {}
        #: ``id(pool) -> {id(conn): index}`` so a checked-out
        #: connection can be named to another shard by a picklable
        #: ``(pool_upstream, instance, index)`` key.
        self._conn_indices: Dict[int, Dict[int, int]] = {}

    # Per-machine decision contexts ------------------------------------

    def _machine_rng(self, machine: str):
        rng = self._machine_rngs.get(machine)
        if rng is None:
            rng = self.sim.random.stream(f"shard-dispatch/{machine}")
            self._machine_rngs[machine] = rng
        return rng

    def _machine_net(self, machine: str):
        net = self._machine_nets.get(machine)
        if net is None:
            net = self.network.delay_sampler(
                self.sim.random.stream(f"shard-net/{machine}")
            )
            self._machine_nets[machine] = net
        return net

    def _shard_of(self, machine: str) -> int:
        try:
            return self._assignments[machine]
        except KeyError:
            raise ShardingError(
                f"machine {machine!r} is not in the shard plan "
                f"(known: {sorted(self._assignments)})"
            )

    # Connection naming ------------------------------------------------

    def _checkout(self, state: _AdapterState, upstream_key: str, instance):
        pool = self.deployment.pool_between(upstream_key, instance)
        if pool.policy != "round_robin":
            raise ShardingError(
                f"pool {upstream_key!r}->{instance.name!r} uses policy "
                f"{pool.policy!r}; only round_robin checkout is "
                f"shard-count invariant (least_outstanding reads "
                f"counters that are split across shards)"
            )
        conn = pool.checkout()
        conn.outstanding += 1
        state.used_conns.append(conn)
        index = self._conn_index(pool, conn)
        return conn, (upstream_key, instance.name, index)

    def _conn_index(self, pool, conn) -> int:
        table = self._conn_indices.get(id(pool))
        if table is None:
            table = {id(c): i for i, c in enumerate(pool.connections)}
            self._conn_indices[id(pool)] = table
        return table[id(conn)]

    def _resolve_conn_key(self, key: Optional[tuple]):
        """A ``(pool_upstream, instance, index)`` key -> this replica's
        connection object (pools are created lazily and identically on
        every replica, so the index is globally meaningful)."""
        if key is None:
            return None
        upstream_key, instance_name, index = key
        instance = self.deployment.find_instance(instance_name)
        pool = self.deployment.pool_between(upstream_key, instance)
        return pool.connections[index]

    # Submit (root shard only) -----------------------------------------

    def submit(self, request: Request, on_complete=None,
               client_name: str = "client", client_machine: str = "client",
               policy=None) -> None:
        if policy is not None:
            raise ShardingError(
                "resilience policies (retry/hedge/timeout) are not "
                "supported under the shard adapter yet — their timers "
                "would race the conservative window barrier"
            )
        self.requests_submitted += 1
        group = _RequestGroup(request, None, on_complete,
                              client_name, client_machine)
        if self._tracer is not None:
            group.trace = self._tracer.start_trace(request)
            if group.trace is not None:
                request.metadata["trace"] = group.trace
        self._groups[request.request_id] = group
        tree = self._pick_tree(request)
        request.attempts += 1
        self.attempts_launched += 1
        state = self._ensure_state(request.request_id, tree.name,
                                   request=request,
                                   traced=group.trace is not None)
        for root in tree.roots:
            self._send_enter(state, root, src_machine=client_machine,
                             upstream_key=client_name,
                             parent_conn=None, parent_conn_key=None)

    # Decision side: resolve + ship one node entry ---------------------

    def _send_enter(self, state: _AdapterState, node: PathNode,
                    src_machine: str, upstream_key: str,
                    parent_conn, parent_conn_key) -> None:
        request = state.request
        tree = state.tree
        if node.same_instance_as is not None:
            # Single-instance services make the pin statically
            # resolvable; the connection rides along from the parent
            # (no checkout), exactly like the vanilla dispatcher.
            conn, conn_key = parent_conn, parent_conn_key
        else:
            conn = conn_key = None  # checked out below, once we know the target
        instance = self.deployment.instances(node.service)[0]
        if node.same_instance_as is None:
            conn, conn_key = self._checkout(state, upstream_key, instance)
        rng = self._machine_rng(src_machine)
        size = node.message_bytes(request.size_bytes, rng)
        seq = conn.next_seq(instance.name) if conn is not None else None
        payload = (
            request.request_id, request.request_type, request.created_at,
            request.size_bytes, state.traced, tree.name, node.name,
            upstream_key, conn_key, seq, size, self.sim.now,
        )
        self._ship(request, src_machine, instance.machine_name,
                   size, "enter", payload)

    def _ship(self, request: Request, src_machine: str, dst_machine: str,
              size_bytes: float, kind: str, payload: tuple) -> None:
        """Route one message; the sharded counterpart of ``_hop``.

        Same-machine legs short-circuit through loopback (one
        transient event, no netprocs — vanilla semantics). Cross-
        machine legs pass through the sender's netproc, draw the wire
        delay on the sender machine's stream, and then either schedule
        locally (receiver co-sharded) or cross the mailbox; the
        receiver-side netproc runs at delivery in :meth:`_arrive`.
        """
        if self.network.is_partitioned(src_machine, dst_machine):
            raise ShardingError(
                f"link {src_machine}->{dst_machine} is partitioned: "
                f"in-simulation network faults are not supported under "
                f"the shard adapter (run the fault plan with shards=1)"
            )
        net = self._machine_net(src_machine)
        if src_machine == dst_machine:
            # Loopback: one transient event, no netprocs on either
            # side (wire=False skips the receiver's netproc too).
            delay = net.delay(src_machine, dst_machine, size_bytes)
            self.sim.schedule_transient(
                delay, self._arrive, kind, payload, False,
                priority=PRIORITY_ARRIVAL,
            )
            return

        def over_wire() -> None:
            delay = net.delay(src_machine, dst_machine, size_bytes)
            dst_shard = self._shard_of(dst_machine)
            if dst_shard == self._host.shard_id:
                self.sim.schedule_transient(
                    delay, self._arrive, kind, payload, True,
                    priority=PRIORITY_ARRIVAL,
                )
            else:
                self._host.send(dst_shard, self.sim.now + delay,
                                kind, payload)

        tx_proc = self.deployment.netproc(src_machine)
        if tx_proc is None:
            over_wire()
            return
        tx_job = Job(request, size_bytes=size_bytes)
        tx_job.on_complete = lambda _j: over_wire()
        tx_job.on_discard = lambda _j: self._lost(src_machine, dst_machine)
        tx_proc.accept(tx_job)

    def _lost(self, src_machine: str, dst_machine: str) -> None:
        raise ShardingError(
            f"message {src_machine}->{dst_machine} was discarded by a "
            f"netproc: instance faults are not supported under the "
            f"shard adapter"
        )

    # Delivery side ----------------------------------------------------

    def _arrive(self, kind: str, payload: tuple, wire: bool = True) -> None:
        """Apply one delivered message on the owning shard (called
        both for loopback/co-sharded legs and, via the host's
        ``handle``, for mailbox messages). *wire=False* marks a
        same-machine loopback delivery, which bypasses the receiver's
        netproc exactly like the vanilla ``_hop``."""
        if kind == "enter":
            self._arrive_enter(payload, wire)
        elif kind == "response":
            self._arrive_response(payload, wire)
        else:
            raise ShardingError(f"unknown shard message kind {kind!r}")

    def _arrive_enter(self, payload: tuple, wire: bool) -> None:
        (rid, rtype, created_at, req_size, traced, tree_name, node_name,
         upstream_key, conn_key, seq, size, sent_at) = payload
        state = self._ensure_state(
            rid, tree_name, traced=traced,
            request_fields=(rtype, created_at, req_size),
        )
        tree = state.tree
        node = tree.node(node_name)
        instance = self.deployment.instances(node.service)[0]
        conn = self._resolve_conn_key(conn_key)

        def accept() -> None:
            self._accept_entry(state, node, instance, upstream_key,
                               conn, conn_key, size, sent_at)

        def deliver() -> None:
            if conn is not None:
                conn.deliver_in_order(instance.name, seq, accept)
            else:
                accept()

        rx_proc = (
            self.deployment.netproc(instance.machine_name) if wire else None
        )
        if rx_proc is None:
            deliver()
            return
        rx_job = Job(state.request, size_bytes=size)
        rx_job.on_complete = lambda _j: deliver()
        rx_job.on_discard = lambda _j: self._lost(
            upstream_key, instance.machine_name
        )
        rx_proc.accept(rx_job)

    def _accept_entry(self, state: _AdapterState, node: PathNode, instance,
                      upstream_key: str, conn, conn_key,
                      size: float, sent_at: float) -> None:
        arrived = state.arrivals.get(node.name, 0) + 1
        state.arrivals[node.name] = arrived
        if arrived < state.tree.fan_in(node.name):
            return  # fan-in not satisfied yet; this arrival only counts
        state.node_upstream[node.name] = upstream_key
        state.node_instance[node.name] = instance
        state.node_conn[node.name] = conn
        state.node_conn_key[node.name] = conn_key
        state.entered[node.name] = True
        instance.pending_dispatch += 1
        job = Job(state.request, size_bytes=size, connection=conn)
        job.on_complete = lambda j, _n=node: self._leave_node_sharded(
            state, _n, j
        )
        job.on_fail = lambda j: self._lost(upstream_key, instance.machine_name)
        self._apply_op(node.on_enter, state, job)
        if state.traced:
            # ``enter`` is the decision-side send stamp carried in the
            # payload — the same instant the vanilla tracer records.
            state.spans[node.name] = Span(
                node.name, instance.name, node.service, 0, sent_at,
                upstream=upstream_key,
            )
        instance.accept(job, node.path_id, node.path_name)

    def _leave_node_sharded(self, state: _AdapterState, node: PathNode,
                            job: Job) -> None:
        instance = state.node_instance[node.name]
        instance.pending_dispatch -= 1
        state.left[node.name] = True
        self._apply_op(node.on_leave, state, job)
        if state.traced:
            span = state.spans.get(node.name)
            if span is not None:
                span.finish(self.sim.now, job=job,
                            breakdown=self._span_breakdown)
        children = state.tree.children(node.name)
        if not children:
            self._complete_sharded(state, node)
        else:
            conn = state.node_conn[node.name]
            conn_key = state.node_conn_key[node.name]
            for child in children:
                self._send_enter(
                    state, child, src_machine=instance.machine_name,
                    upstream_key=instance.name,
                    parent_conn=conn, parent_conn_key=conn_key,
                )
        state.my_remaining -= 1
        self._maybe_cleanup(state)

    def _complete_sharded(self, state: _AdapterState, last_node: PathNode) -> None:
        instance = state.node_instance[last_node.name]
        group = self._groups.get(state.request.request_id)
        client_machine = (
            group.client_machine if group is not None
            else self._host.client_machine
        )
        rng = self._machine_rng(instance.machine_name)
        response_size = state.tree.response_size(
            state.request.size_bytes, rng
        )
        if state.traced:
            state.events.append((self.sim.now, "response_sent",
                                 {"attempt": 0}))
        self._ship(state.request, instance.machine_name, client_machine,
                   response_size, "response",
                   (state.request.request_id, response_size))

    def _arrive_response(self, payload: tuple, wire: bool) -> None:
        rid, response_size = payload
        group = self._groups.get(rid)
        if group is None:
            raise ShardingError(
                f"shard {self._host.shard_id} received a response for "
                f"request {rid} but holds no group: responses must "
                f"arrive at the root shard"
            )
        rx_proc = (
            self.deployment.netproc(group.client_machine) if wire else None
        )
        if rx_proc is None:
            self._finish_request(rid)
            return
        rx_job = Job(group.request, size_bytes=response_size)
        rx_job.on_complete = lambda _j: self._finish_request(rid)
        rx_job.on_discard = lambda _j: self._lost(
            "response", group.client_machine
        )
        rx_proc.accept(rx_job)

    def _finish_request(self, rid: int) -> None:
        group = self._groups.pop(rid)
        state = self._states.get(rid)
        if state is not None:
            for conn in state.used_conns:
                conn.outstanding -= 1
            state.used_conns = []
        # The vanilla resolution path: stamps completed_at/outcome,
        # bumps counters, finishes the trace, notifies listeners, and
        # calls the client's on_complete (which records the latency).
        self._resolve(group, OUTCOME_OK)
        if state is not None:
            self._maybe_cleanup(state)

    # Request-state lifecycle ------------------------------------------

    def _ensure_state(self, rid: int, tree_name: str, *, traced: bool,
                      request: Optional[Request] = None,
                      request_fields: Optional[tuple] = None) -> _AdapterState:
        state = self._states.get(rid)
        if state is not None:
            return state
        tree = self._trees_by_tree_name[tree_name]
        if request is None:
            rtype, created_at, req_size = request_fields
            request = Request(created_at, request_type=rtype,
                              size_bytes=req_size)
            request.request_id = rid  # replica mirrors the root's id
            request.attempts = 1
        state = _AdapterState(
            request, tree,
            my_remaining=self._my_node_count.get(tree_name, 0),
            traced=traced and self._host.trace_active,
        )
        self._states[rid] = state
        return state

    def _maybe_cleanup(self, state: _AdapterState) -> None:
        rid = state.request.request_id
        if state.my_remaining > 0 or rid in self._groups:
            return
        if self._states.pop(rid, None) is None:
            return
        for conn in state.used_conns:
            conn.outstanding -= 1
        state.used_conns = []
        if state.traced and (state.spans or state.events):
            self._trace_shadow[rid] = (
                list(state.spans.values()), list(state.events)
            )

    def shadow_remaining(self) -> None:
        """Sweep still-in-flight requests' spans into the shadow at
        the end of the run (vanilla leaves their spans open too)."""
        for rid, state in self._states.items():
            if state.traced and (state.spans or state.events):
                self._trace_shadow[rid] = (
                    list(state.spans.values()), list(state.events)
                )


class WorldShardHost(ShardHost):
    """One shard of an adapter-run world.

    Builds the full world replica, swaps in a
    :class:`ShardedDispatcher`, and — on the root shard (wherever the
    client machine landed) — attaches the open-loop client, the
    optional tracer, and the optional SLO monitor. Everything else is
    inherited ShardHost mechanics, so supervision/replay and the
    conservation audit apply unchanged.
    """

    def __init__(self, *, shard_id: int, builder, world_kwargs: dict,
                 seed: int, assignments: Dict[str, int], lookahead: float,
                 qps: float, duration: float, warmup: Optional[float],
                 client_machine: str = "client", mix=None,
                 trace=False, slo=None,
                 scrape_interval: Optional[float] = None) -> None:
        world = builder(seed=seed, **world_kwargs)
        super().__init__(shard_id, world.sim, lookahead, end_time=duration)
        self.client_machine = client_machine
        self.is_root = assignments[client_machine] == shard_id
        self._warmup = warmup
        self.trace_active = _trace_active(trace, None)
        breakdown = (trace.breakdown
                     if isinstance(trace, TraceConfig) else True)
        self.dispatcher = ShardedDispatcher(
            self, world, assignments, span_breakdown=breakdown
        )
        world.dispatcher = self.dispatcher
        self.client = None
        self._slo_monitor = None
        if self.is_root:
            if self.trace_active:
                self.dispatcher.trace = trace if trace else True
            self.client = OpenLoopClient(
                world.sim, self.dispatcher, arrivals=qps, mix=mix,
                stop_at=duration, realism=world.realism,
            )
            if slo:
                from ..telemetry.slo import SLOMonitor
                from ..experiments.loadsweep import resolve_slos

                window = max(0.05, min(1.0, duration - (warmup or 0.0)))
                slos = resolve_slos(slo, window)
                self._slo_monitor = SLOMonitor(
                    world.sim, slos,
                    interval=max(duration / 100.0, 0.005),
                )
                self._slo_monitor.attach(self.client)
                self._slo_monitor.start(stop_at=duration)
            self.client.start()
        self._scraper = None
        if scrape_interval is not None:
            from ..telemetry.scrape import Scraper

            # Each shard scrapes only the tiers it owns (the replica's
            # other instances never execute, so their series would be
            # flat zeros); the root additionally scrapes the client.
            self._scraper = Scraper(
                world.sim,
                interval=scrape_interval,
                tiers=_owned_tiers(world.deployment, assignments, shard_id),
                client=self.client,
                stop_at=duration,
            ).start()

    def handle(self, message) -> None:
        self.dispatcher._arrive(message.kind, message.payload)

    def finalize(self) -> dict:
        base = super().finalize()
        dispatcher = self.dispatcher
        base["requests_submitted"] = dispatcher.requests_submitted
        if self._scraper is not None:
            base["scrape"] = {
                "interval": self._scraper.interval,
                "series": self._scraper.snapshot(),
            }
        if self.trace_active:
            dispatcher.shadow_remaining()
            base["trace_spans"] = {
                rid: (
                    [_span_tuple(span) for span in spans],
                    list(events),
                )
                for rid, (spans, events) in dispatcher._trace_shadow.items()
            }
        if not self.is_root:
            return base
        recorder = self.client.latencies
        times, values = recorder.samples()
        base.update(
            requests_sent=self.client.requests_sent,
            requests_completed=self.client.requests_completed,
            outcomes=dict(self.client.outcomes),
            completions=[float(t) for t in times],
            latencies=[float(v) for v in values],
            in_flight=len(dispatcher._groups),
        )
        if len(recorder):
            base["p50"] = recorder.p50()
            base["p99"] = recorder.p99()
        if self._warmup is not None:
            warmup, duration = self._warmup, self.end_time
            completed = recorder.count(since=warmup, until=duration)
            window = {"completed": completed}
            if completed:
                window.update(
                    throughput=recorder.throughput(warmup, duration),
                    mean=recorder.mean(since=warmup, until=duration),
                    p50=recorder.percentile(50, since=warmup, until=duration),
                    p95=recorder.percentile(95, since=warmup, until=duration),
                    p99=recorder.percentile(99, since=warmup, until=duration),
                )
            base["window"] = window
        if self._slo_monitor is not None:
            base["slo"] = self._slo_monitor.summary()
        if self.trace_active and dispatcher.tracer is not None:
            base["traces"] = list(dispatcher.tracer.traces)
        return base


def _span_tuple(span: Span) -> tuple:
    return (span.node, span.instance, span.service, span.attempt,
            span.enter, span.leave, span.status, span.network,
            span.queueing, span.service_time, span.upstream)


def _span_from_tuple(fields: tuple) -> Span:
    (node, instance, service, attempt, enter, leave, status,
     network, queueing, service_time, upstream) = fields
    span = Span(node, instance, service, attempt, enter,
                upstream=upstream)
    span.leave = leave
    span.status = status
    span.network = network
    span.queueing = queueing
    span.service_time = service_time
    return span


def _trace_active(trace, trace_dir) -> bool:
    """Does this trace/trace_dir pair actually sample anything?

    A ``TraceConfig`` with sampling disabled is a no-op, not a reason
    to block (or ship telemetry); ``trace_dir`` alone implies default
    tracing, matching the vanilla sweep path.
    """
    if trace_dir is not None:
        return True
    if isinstance(trace, TraceConfig):
        return trace.sample_rate > 0
    return bool(trace)


def build_world_shard_host(**kwargs) -> WorldShardHost:
    """Construct one adapter shard inside a worker process.

    ``builder`` arrives as the topology builder *function* (picklable
    by module reference); everything else is the host's kwargs.
    """
    return WorldShardHost(**kwargs)


def _merge_traces(results: List[dict], root: dict) -> List:
    """Stitch per-shard span shadows into the root's Trace objects."""
    traces = root.get("traces") or []
    by_rid = {trace.request_id: trace for trace in traces}
    for result in results:
        for rid, (span_tuples, events) in result.get("trace_spans", {}).items():
            trace = by_rid.get(rid)
            if trace is None:
                continue
            trace.spans.extend(
                _span_from_tuple(fields) for fields in span_tuples
            )
            trace.events.extend(
                SpanEvent(t, name, dict(attrs)) for t, name, attrs in events
            )
    for trace in traces:
        trace.spans.sort(key=lambda s: (s.enter, s.attempt, s.node))
        trace.events.sort(key=lambda e: (e.t, e.name))
    return traces


def sharded_load_point(
    build_world: Callable,
    qps: float,
    duration: float,
    warmup: float,
    seed: int,
    shards: int,
    *,
    mix=None,
    trace=False,
    trace_dir=None,
    slo=None,
    scrape_interval: Optional[float] = None,
    mode: str = "auto",
    max_window: Optional[float] = None,
    audit: bool = False,
    fault_plan=None,
    shard_timeout: Optional[float] = None,
    shard_restarts: Optional[int] = None,
    journal_path=None,
    client_machine: str = "client",
    **world_kwargs,
):
    """Measure one load point of *build_world* across *shards* shards.

    The generic counterpart of
    :func:`repro.shard.fanout.fanout_sharded_load_point`: plans shards
    over the world's machines, replicates the world per shard behind
    :class:`WorldShardHost`, and merges telemetry (latency recorder,
    SLO summary, traces) back into the same ``SweepPoint`` the vanilla
    path produces. *seed* is the already-derived per-point seed. Falls
    back — loudly, via the planner's ``RuntimeWarning`` — to the
    untouched vanilla measurement (bit-identical by construction) when
    the fabric has no positive lookahead or there are fewer machines
    than shards.
    """
    from ..experiments.loadsweep import SweepPoint, measure_vanilla_point

    probe = build_world(seed=seed, **world_kwargs)
    validate_world_shardable(probe)
    fabric = probe.cluster.network
    plan = plan_shards(probe.cluster.machine_names, shards, fabric)
    if not plan.sharded:
        if fault_plan is not None and len(fault_plan):
            raise ShardingError(
                f"fault plan carries {len(fault_plan)} fault(s) but the "
                f"run is not sharded"
                + (f" ({plan.fallback_reason})" if plan.fallback_reason else "")
            )
        return measure_vanilla_point(
            build_world, qps, duration, warmup, seed,
            mix=mix, audit=audit, trace=trace, trace_dir=trace_dir,
            slo=slo, scrape_interval=scrape_interval, **world_kwargs,
        )
    chaos = _shard_chaos(fault_plan, plan)
    tracing = _trace_active(trace, trace_dir)
    if tracing and not trace:
        trace = True  # trace_dir alone implies default tracing
    common = dict(
        builder=build_world, world_kwargs=dict(world_kwargs), seed=seed,
        assignments=dict(plan.assignments), lookahead=plan.lookahead,
        qps=qps, duration=duration, warmup=warmup,
        client_machine=client_machine, mix=mix, trace=trace, slo=slo,
        scrape_interval=scrape_interval,
    )
    specs = [
        (build_world_shard_host, dict(common, shard_id=shard))
        for shard in range(plan.num_shards)
    ]
    edges = {
        (i, j): plan.lookahead
        for i in range(plan.num_shards)
        for j in range(plan.num_shards)
        if i != j
    }
    run_kwargs: dict = {"chaos": chaos, "journal_path": journal_path}
    if shard_timeout is not None:
        run_kwargs["window_timeout"] = shard_timeout
    if shard_restarts is not None:
        run_kwargs["max_shard_restarts"] = shard_restarts
    results, coordinator = run_sharded(
        specs, edges, mode=mode, max_window=max_window, **run_kwargs
    )
    if audit:
        from ..experiments.audit import audit_sharded_run

        audit_sharded_run(
            results, messages_exchanged=coordinator.messages_exchanged
        )
    root = results[plan.assignments[client_machine]]
    recovery = getattr(coordinator, "recovery", None)
    restarts = recovery["restarts"] if recovery else 0
    timeline = None
    scrape_series: Dict[str, dict] = {}
    if scrape_interval is not None:
        from ..telemetry.scrape import timeline_payload

        # Tiers are machine-owned, so per-shard series names are
        # disjoint (the root alone contributes ``client/*``); the
        # merged union carries the same names a vanilla run scrapes.
        for result in results:
            scrape_series.update(
                (result.get("scrape") or {}).get("series", {})
            )
        timeline = timeline_payload(
            scrape_series,
            interval=scrape_interval,
            meta={
                "qps": qps, "duration": duration, "warmup": warmup,
                "seed": seed, "shards": plan.num_shards,
            },
            shard_runtime=coordinator.runtime,
        )
    if trace_dir is not None:
        from pathlib import Path

        from ..telemetry.export import write_otlp, write_perfetto

        traces = _merge_traces(results, root)
        base = Path(trace_dir)
        base.mkdir(parents=True, exist_ok=True)
        stem = f"qps{qps:g}"
        write_perfetto(base / f"{stem}.perfetto.json", traces,
                       counters=scrape_series or None)
        write_otlp(base / f"{stem}.otlp.json", traces)
        if timeline is not None:
            from ..telemetry.scrape import write_timeline

            write_timeline(base / f"{stem}.timeseries.json", timeline)
    elif tracing:
        _merge_traces(results, root)
    slo_summary = root.get("slo")
    window = root.get("window") or {}
    if not window.get("completed"):
        point = SweepPoint(
            qps, 0.0, math.inf, math.inf, math.inf, math.inf, 0,
            slo=slo_summary,
            shard_recovery=recovery if restarts else None,
            timeline=timeline,
        )
    else:
        point = SweepPoint(
            qps,
            window["throughput"],
            window["mean"],
            window["p50"],
            window["p95"],
            window["p99"],
            window["completed"],
            slo=slo_summary,
            shard_recovery=recovery if restarts else None,
            timeline=timeline,
        )
    # Coordinator counters ride as a non-declared attribute: dataclass
    # equality ignores it, so shards=1-vs-vanilla identity checks and
    # journal round-trips are unaffected (resumed points simply lack it).
    point.shard_sync = {
        "shards": plan.num_shards,
        "mode": getattr(coordinator, "mode", "inline"),
        "rounds": coordinator.rounds,
        "messages_exchanged": coordinator.messages_exchanged,
        "stalls": coordinator.stalls,
        "restarts": restarts,
        "per_shard_restarts": {
            str(shard): info.get("restarts", 0)
            for shard, info in ((recovery or {}).get("per_shard") or {}).items()
        },
        "straggler_rounds": dict(coordinator.runtime["straggler_rounds"]),
    }
    return point
