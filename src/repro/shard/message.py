"""Time-stamped cross-shard mailbox messages.

In the sharded simulation core (see :mod:`repro.shard.sync`), a
dispatch that crosses a shard boundary does not call into the remote
model directly — it becomes a :class:`ShardMessage` stamped with the
simulated time the payload arrives at the receiver. Messages collect
in the sender's outbox during a time window and are exchanged at the
window barrier; the receiver schedules each one at its stamp.

Determinism: the receiver may get messages from several shards whose
real-world arrival order is arbitrary (process scheduling). Delivery
order is therefore fixed by :attr:`ShardMessage.sort_key` —
``(time, priority, src_shard, seq)`` — which is a pure function of the
simulation, never of the host machine. ``seq`` is a per-sender
counter, so two messages from one shard always deliver in send order;
ties across shards break by shard id.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Tuple


@dataclass(frozen=True)
class ShardMessage:
    """One cross-shard delivery, stamped in simulated seconds.

    ``kind`` and ``payload`` are interpreted by the receiving
    :class:`~repro.shard.sync.ShardHost` subclass; the payload must be
    picklable (plain tuples of primitives) so process-mode workers can
    ship it over a pipe.
    """

    time: float
    priority: int
    src_shard: int
    seq: int
    kind: str
    payload: tuple

    @property
    def sort_key(self) -> Tuple[float, int, int, int]:
        """Deterministic delivery order (see module docstring)."""
        return (self.time, self.priority, self.src_shard, self.seq)


def deterministic_order(messages: Iterable[ShardMessage]) -> List[ShardMessage]:
    """Sort *messages* into their canonical delivery order."""
    return sorted(messages, key=lambda m: m.sort_key)
