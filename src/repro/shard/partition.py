"""Partitioning a cluster topology into shards.

A shard is a set of machines whose models run inside one
:class:`~repro.engine.Simulator`. Everything that communicates with
zero minimum latency must share a shard: conservative synchronisation
(:mod:`repro.shard.sync`) only works when every cross-shard edge has a
strictly positive *lookahead* — the guaranteed minimum delay of the
:class:`~repro.hardware.NetworkFabric` between distinct machines.

Two rules follow:

* **Colocation groups** — machines named in one ``colocate`` group are
  pinned to the same shard, because messages between colocated
  services ride the loopback path whose minimum is typically far below
  the cross-machine propagation floor (and the client/dispatcher pair
  exchanges callbacks with no network at all).
* **Zero-lookahead fallback** — when ``fabric.lookahead() <= 0`` (the
  default exponential propagation has an infimum of 0), no positive
  window exists and :func:`plan_shards` *loudly* degrades to a single
  shard instead of deadlocking. Results are then exactly the
  single-shard results.

Assignment is deterministic: machines are distributed contiguously in
the caller-supplied order, so the same topology always yields the same
plan — a prerequisite for the reproducibility contract (shard count
must never change which RNG stream serves which draw; streams are
named per component via
:class:`~repro.engine.RandomStreams`, so placement only decides *where*
a stream is instantiated, never *what* it yields).
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..errors import ShardingError
from ..hardware import NetworkFabric


@dataclass
class ShardPlan:
    """The outcome of partitioning: who runs where, and how far apart.

    ``num_shards`` is the *effective* shard count — 1 when the plan
    fell back (see :attr:`fallback_reason`). ``lookahead`` is the
    conservative window bound shared by every cross-shard edge.
    """

    num_shards: int
    assignments: Dict[str, int] = field(default_factory=dict)
    lookahead: float = 0.0
    fallback_reason: Optional[str] = None

    @property
    def sharded(self) -> bool:
        return self.num_shards > 1

    def machines_of(self, shard: int) -> List[str]:
        """Machine names assigned to *shard*, in assignment order."""
        return [m for m, s in self.assignments.items() if s == shard]

    def validate_shard(self, shard) -> int:
        """Check *shard* names a shard of this plan; returns it.

        Used by the chaos layer to fail fast when a ``shard_kill``
        fault targets a shard that does not exist (or the plan fell
        back to one shard, where killing the only worker cannot be
        recovered into the same run)."""
        if shard is None or not 0 <= int(shard) < self.num_shards:
            detail = (
                f"; plan fell back to a single shard "
                f"({self.fallback_reason})"
                if self.fallback_reason
                else ""
            )
            raise ShardingError(
                f"fault targets shard {shard!r} but the plan has "
                f"shards 0..{self.num_shards - 1}{detail}"
            )
        return int(shard)


def fabric_lookahead(fabric: NetworkFabric) -> float:
    """The conservative cross-shard lookahead of *fabric*.

    Delegates to :meth:`NetworkFabric.lookahead` (the propagation
    infimum); a separate function so callers that only have a fabric
    handle read naturally at the planning layer.
    """
    return fabric.lookahead()


def plan_shards(
    machines: Sequence[str],
    num_shards: int,
    fabric: NetworkFabric,
    colocate: Optional[Sequence[Sequence[str]]] = None,
) -> ShardPlan:
    """Assign *machines* to *num_shards* shards.

    *colocate* lists groups of machine names that must land on one
    shard (zero-lookahead neighbours). Each group is pinned to the
    shard of its first member; remaining machines are spread
    contiguously and evenly over all shards in input order.

    Returns a 1-shard plan (with a ``RuntimeWarning`` and a
    ``fallback_reason``) when the fabric's lookahead is not strictly
    positive or there are fewer free machines than shards.
    """
    if num_shards < 1:
        raise ShardingError(f"num_shards must be >= 1, got {num_shards!r}")
    machines = list(machines)
    seen = set()
    for name in machines:
        if name in seen:
            raise ShardingError(f"duplicate machine {name!r} in shard plan")
        seen.add(name)

    def single(reason: Optional[str]) -> ShardPlan:
        return ShardPlan(
            num_shards=1,
            assignments={name: 0 for name in machines},
            lookahead=0.0,
            fallback_reason=reason,
        )

    if num_shards == 1:
        return single(None)

    lookahead = fabric_lookahead(fabric)
    if not lookahead > 0.0 or math.isinf(lookahead):
        reason = (
            f"network lookahead is {lookahead!r}: conservative windows "
            f"cannot make progress (the propagation distribution's "
            f"support touches zero); falling back to shards=1. Use a "
            f"propagation distribution with a positive minimum "
            f"(e.g. Deterministic or Shifted) to enable sharding."
        )
        warnings.warn(reason, RuntimeWarning, stacklevel=2)
        return single(reason)

    groups: List[List[str]] = []
    grouped: Dict[str, int] = {}
    for group in colocate or ():
        group = list(group)
        merged = None
        for name in group:
            if name not in seen:
                raise ShardingError(
                    f"colocate group names unknown machine {name!r}"
                )
            if name in grouped:
                merged = grouped[name]
        if merged is None:
            merged = len(groups)
            groups.append([])
        for name in group:
            if name not in grouped:
                grouped[name] = merged
                groups[merged].append(name)

    # Units to place: colocation groups count as one unit, pinned by
    # their first member's position in the input order.
    units: List[List[str]] = []
    emitted_groups = set()
    for name in machines:
        gid = grouped.get(name)
        if gid is None:
            units.append([name])
        elif gid not in emitted_groups:
            emitted_groups.add(gid)
            units.append(groups[gid])

    if len(units) < num_shards:
        reason = (
            f"only {len(units)} placeable unit(s) for {num_shards} "
            f"shards; falling back to shards=1"
        )
        warnings.warn(reason, RuntimeWarning, stacklevel=2)
        return single(reason)

    # Contiguous deterministic assignment: unit k of n goes to shard
    # floor(k * num_shards / n) — balanced within one unit, and stable
    # under the input order.
    assignments: Dict[str, int] = {}
    n = len(units)
    for k, unit in enumerate(units):
        shard = (k * num_shards) // n
        for name in unit:
            assignments[name] = shard
    return ShardPlan(
        num_shards=num_shards,
        assignments=assignments,
        lookahead=lookahead,
        fallback_reason=None,
    )
