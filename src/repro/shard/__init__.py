"""Sharded parallel simulation core (conservative time windows).

The single-simulator engine in :mod:`repro.engine` is strictly
sequential: one event heap, one clock. This package partitions a
cluster topology into *shards* — groups of machines, each with its own
:class:`~repro.engine.Simulator` running in its own worker process —
and synchronises them with the classic conservative windowing scheme:
the :class:`~repro.hardware.NetworkFabric`'s guaranteed minimum
cross-machine delay (its *lookahead*) bounds how far shards may drift
apart, and cross-shard dispatches travel as time-stamped mailbox
messages exchanged at window barriers.

Layering:

* :mod:`~repro.shard.message` — the mailbox currency and its
  canonical (machine-independent) delivery order;
* :mod:`~repro.shard.partition` — planning machines onto shards,
  colocation groups, and the loud zero-lookahead fallback;
* :mod:`~repro.shard.sync` — :class:`ShardHost` (one shard's
  simulator + mailbox) and :class:`ConservativeCoordinator` (the
  round loop, with a per-pair lookahead closure so an idle shard
  never throttles the others);
* :mod:`~repro.shard.worker` — process-mode execution, inline mode,
  and the sandbox fallback;
* :mod:`~repro.shard.journal` + :mod:`~repro.shard.supervisor` — the
  fault-tolerance layer: a barrier-replay journal of every completed
  round and per-worker supervision (liveness deadlines, budgeted
  restart with verified replay) so a dead or hung worker costs a
  recovery, not the run;
* :mod:`~repro.shard.adapter` — the generic world adapter: runs the
  real :class:`~repro.topology.Dispatcher`/``Microservice`` wiring of
  *any* registered topology behind ShardHost mailboxes (full-world
  replication, machine ownership), with merged telemetry
  (traces/SLO/mix) shipped home at ``finalize()``;
* :mod:`~repro.shard.fanout` — the first ported model: the Fig 14
  fan-out/fan-in cluster, kept as a hand-written port because its
  per-shard fan-in batching (one message per shard per request) beats
  the adapter's generic one-message-per-parent scheme at 500 leaves.

Determinism contract: all shards share one root seed and draw from
named :class:`~repro.engine.RandomStreams`, so the shard count decides
*where* a component's stream is instantiated, never *what* it yields —
``shards=1`` is bit-identical to the unsharded engine, and any two
``shards>=2`` runs are bit-identical to each other.
"""

from .adapter import (
    ShardedDispatcher,
    WorldShardHost,
    build_world_shard_host,
    sharded_load_point,
    validate_world_shardable,
)
from .fanout import (
    FanoutLeafHost,
    FanoutRootHost,
    fanout_sharded_load_point,
    measure_fanout_sharded,
    measure_fanout_vanilla,
    plan_fanout_shards,
)
from .journal import ReplayJournal, load_replay_journal, outbound_digest
from .message import ShardMessage, deterministic_order
from .partition import ShardPlan, fabric_lookahead, plan_shards
from .supervisor import ShardSupervisor
from .sync import ConservativeCoordinator, ShardHost
from .worker import (
    DEFAULT_WINDOW_TIMEOUT,
    ShardWorkerDied,
    ShardWorkerHung,
    ShardWorkerProxy,
    run_sharded,
    spawn_worker,
    start_shard_hosts,
)

__all__ = [
    "ConservativeCoordinator",
    "DEFAULT_WINDOW_TIMEOUT",
    "FanoutLeafHost",
    "FanoutRootHost",
    "ReplayJournal",
    "ShardHost",
    "ShardMessage",
    "ShardPlan",
    "ShardSupervisor",
    "ShardWorkerDied",
    "ShardWorkerHung",
    "ShardWorkerProxy",
    "ShardedDispatcher",
    "WorldShardHost",
    "build_world_shard_host",
    "deterministic_order",
    "fabric_lookahead",
    "fanout_sharded_load_point",
    "load_replay_journal",
    "measure_fanout_sharded",
    "measure_fanout_vanilla",
    "outbound_digest",
    "plan_fanout_shards",
    "plan_shards",
    "run_sharded",
    "sharded_load_point",
    "spawn_worker",
    "start_shard_hosts",
    "validate_world_shardable",
]
