"""The fan-out/fan-in world (Fig 14) on the sharded simulation core.

This was the first model ported to :mod:`repro.shard`: the
tail-at-scale cluster — one cheap aggregator fanning every request out
to ``cluster_size`` single-core leaves and synchronising the responses
— partitioned so the client+aggregator pair anchors shard 0 and the
leaves spread contiguously over all shards.

Generic topologies now run through :mod:`repro.shard.adapter` instead
of needing a port like this one. This module stays as a
topology-specific *optimization*: at 500 leaves the per-shard fan-in
batching below (one "done" aggregate per shard per request, versus
the adapter's generic one-message-per-parent) keeps the root shard's
per-request event count at O(shards) — which is what the >=2x
speedup contract in ``benchmarks/bench_shard.py`` is measured
against. Its ``_shard_chaos`` helper is shared with the adapter.

**Equivalence to the single-shard engine.** Every component keeps the
stream names it has under ``shards=1`` (``service/leaf7/stage0``,
``client/client/arrivals``, ``dispatcher/network``, …), and
:class:`~repro.engine.RandomStreams` derives a stream's generator from
its *name* and the shared root seed — so placement decides where a
stream is instantiated, never what it yields. Two deliberate
departures from the vanilla :class:`~repro.topology.Dispatcher` path:

* the **leaf -> aggregator response hop** is sampled on the leaf's
  shard from a per-leaf stream (``shard/leaf{i}/response``) and folded
  into the mailbox stamp, instead of being drawn from the shared
  ``dispatcher/network`` sampler when the *last* leaf finishes. Under
  a fabric whose propagation is draw-free (e.g. ``Deterministic``)
  the two schemes produce bit-identical completion times — the
  identity the equivalence tests pin; under a stochastic fabric they
  agree in distribution but not draw-for-draw (documented tolerance).
* in-flight messages are **in-order per connection** on both schemes,
  but the sharded leaf re-implements the parking on the wire payload's
  ``(conn_id, seq)`` because the root-side
  :class:`~repro.service.Connection` object never crosses the shard
  boundary.
* each shard **aggregates its "done" notifications per request**: the
  fan-in only needs the count and the *latest* arrival, so a shard
  holding 125 leaves sends one message stamped at its local maximum
  instead of 125. The join fires at the max of the shard maxima —
  exactly the global maximum — and the aggregate carries its argmax
  leaf so the join rides the same connection the vanilla dispatcher
  would pick. This turns the root shard's per-request event count
  from O(cluster_size) into O(shards).

Zero-lookahead edges (the default exponential propagation) make
conservative windows impossible; :func:`plan_fanout_shards` then falls
back to one shard and :func:`measure_fanout_sharded` runs the ordinary
single-simulator world, so callers always get an answer.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..distributions import Deterministic, Exponential
from ..engine import PRIORITY_ARRIVAL, Simulator
from ..errors import ShardingError
from ..hardware import Machine, NetworkFabric
from ..service import (
    ConnectionPool,
    ExecutionPath,
    Job,
    Microservice,
    PathSelector,
    Request,
    SimpleModel,
    SingleQueue,
    Stage,
)
from ..service.job import OUTCOME_OK
from ..topology.deployment import DEFAULT_POOL_SIZE
from ..workload import OpenLoopClient
from .partition import ShardPlan, plan_shards
from .sync import ShardHost
from .worker import run_sharded

CLIENT_MACHINE = "client"
AGG_MACHINE = "aggregator"
AGG_NAME = "agg"


def fanout_machines(cluster_size: int) -> List[str]:
    """The machine list of the fan-out world, in placement order."""
    return [CLIENT_MACHINE, AGG_MACHINE] + [
        f"leaf-node{i}" for i in range(cluster_size)
    ]


def plan_fanout_shards(
    cluster_size: int, num_shards: int, fabric: NetworkFabric
) -> ShardPlan:
    """Partition the fan-out world: client and aggregator are
    zero-lookahead neighbours (callbacks, not network), so they pin
    together; leaves spread contiguously."""
    return plan_shards(
        fanout_machines(cluster_size),
        num_shards,
        fabric,
        colocate=[[CLIENT_MACHINE, AGG_MACHINE]],
    )


def _slow_mask(sim: Simulator, cluster_size: int, slow_fraction: float):
    """Recompute the slow-leaf placement mask on any shard.

    Same stream name and root seed as
    ``build_fanout_cluster`` -> same draws on every shard, so all
    shards agree on which leaves are degraded without exchanging
    state."""
    rng = sim.random.stream("tail-at-scale/placement")
    return rng.random(cluster_size) < slow_fraction


class _LeafRuntime:
    """One leaf service plus its folded-in response hop.

    Used both by leaf shards and by the root shard (for leaves the
    plan co-locates with the aggregator), so local and remote leaves
    run byte-for-byte the same model code — only ``emit`` differs
    (local schedule vs cross-shard send).
    """

    def __init__(
        self,
        sim: Simulator,
        index: int,
        fabric: NetworkFabric,
        mean_service: float,
        slow: bool,
        slow_factor: float,
        emit: Callable[[int, int, float], None],
    ) -> None:
        self.index = index
        self.sim = sim
        self._fabric = fabric
        self._emit = emit
        machine_name = f"leaf-node{index}"
        machine = Machine(machine_name, 1)
        core_set = machine.allocate(f"leaf{index}", 1)
        mean = mean_service * (slow_factor if slow else 1.0)
        stage = Stage("process", 0, SingleQueue(), base=Exponential(mean))
        selector = PathSelector([ExecutionPath(0, "only", [0])])
        self.instance = Microservice(
            f"leaf{index}",
            sim,
            [stage],
            selector,
            core_set,
            model=SimpleModel(),
            machine_name=machine_name,
            tier=f"leaf{index}",
        )
        # Response-hop delays draw from a per-leaf stream so the draw
        # sequence is a function of this leaf's job order alone —
        # invariant under shard count.
        self._response_rng = sim.random.stream(f"shard/leaf{index}/response")
        # Per-connection in-order delivery state, keyed by the
        # root-side conn_id riding the wire payload (mirrors
        # Connection.deliver_in_order).
        self._deliver_seq: Dict[int, int] = {}
        self._parked: Dict[int, Dict[int, Callable[[], None]]] = {}
        self.jobs_done = 0

    def deliver(
        self, request_id: int, conn_id: int, seq: int, size_bytes: float
    ) -> None:
        """A dispatch arrived at its stamped time; release it in
        connection order."""

        def accept() -> None:
            # Local twin of the root-side request: the microservice
            # model only reads size/created_at, never identity.
            request = Request(created_at=self.sim.now, size_bytes=size_bytes)
            job = Job(request, size_bytes=size_bytes)
            job.on_complete = lambda _job: self._complete(
                request_id, size_bytes
            )
            self.instance.accept(job, None, None)

        expected = self._deliver_seq.get(conn_id, 0) + 1
        if seq != expected:
            self._parked.setdefault(conn_id, {})[seq] = accept
            return
        self._deliver_seq[conn_id] = seq
        accept()
        parked = self._parked.get(conn_id)
        while parked:
            nxt = self._deliver_seq[conn_id] + 1
            release = parked.pop(nxt, None)
            if release is None:
                break
            self._deliver_seq[conn_id] = nxt
            release()

    def _complete(self, request_id: int, size_bytes: float) -> None:
        self.jobs_done += 1
        # Fold the response hop into the stamp: the done notification
        # reaches the aggregator one network delay after the leaf
        # finishes, and that delay is >= the fabric lookahead — which
        # is exactly what lets the leaf live on another shard.
        d_response = self._fabric.delay(
            self.instance.machine_name,
            AGG_MACHINE,
            size_bytes,
            self._response_rng,
        )
        self._emit(self.index, request_id, self.sim.now + d_response)


class _DoneBatch:
    """Per-request aggregation of a shard's leaf completions.

    The fan-in only consumes the *count* of arrivals and the identity
    of the last one, so a shard batches its local leaves into a single
    notification stamped at the local maximum arrival. The join still
    fires at the global maximum (the max of the shard maxima) over the
    same connection (the batch carries its argmax leaf, and the
    last-stamped batch's argmax is the global argmax).
    """

    def __init__(self, expected: int) -> None:
        self._expected = expected
        #: request_id -> [arrivals so far, max stamp, argmax leaf]
        self._pending: Dict[int, list] = {}

    def note(
        self, request_id: int, leaf_index: int, time: float
    ) -> Optional[Tuple[int, int, float]]:
        """Record one leaf completion; when the shard's last leaf for
        this request lands, return ``(argmax_leaf, count, max_time)``
        to flush."""
        entry = self._pending.get(request_id)
        if entry is None:
            entry = self._pending[request_id] = [0, time, leaf_index]
        entry[0] += 1
        if time > entry[1]:
            entry[1] = time
            entry[2] = leaf_index
        if entry[0] < self._expected:
            return None
        del self._pending[request_id]
        return entry[2], entry[0], entry[1]


class FanoutRootHost(ShardHost):
    """Shard 0: open-loop client, aggregator service, fan-out glue.

    Plays the :class:`~repro.topology.Dispatcher` role for this fixed
    topology — same pool checkout, sequence stamping, fan-in counting
    and outcome resolution, with cross-shard legs replaced by mailbox
    sends. Leaves the plan co-locates with the aggregator run here
    through the same :class:`_LeafRuntime` as remote ones.
    """

    def __init__(
        self,
        *,
        cluster_size: int,
        slow_fraction: float,
        slow_factor: float,
        mean_service: float,
        seed: int,
        qps: float,
        fabric: NetworkFabric,
        leaf_shards: List[int],
        lookahead: float,
        num_requests: Optional[int] = None,
        stop_at: Optional[float] = None,
        warmup: Optional[float] = None,
    ) -> None:
        sim = Simulator(seed=seed)
        super().__init__(0, sim, lookahead, end_time=stop_at)
        self.cluster_size = cluster_size
        self._fabric = fabric
        self._leaf_shards = list(leaf_shards)
        self._warmup = warmup
        # Same shared network sampler (and stream name) the vanilla
        # dispatcher owns, drawn in the same order: one client->agg
        # delay per submit, cluster_size agg->leaf delays per fan-out,
        # one agg->client delay per response.
        self._net = fabric.delay_sampler(sim.random.stream("dispatcher/network"))

        agg_machine = Machine(AGG_MACHINE, 4)
        agg_cores = agg_machine.allocate(AGG_NAME, 4)
        agg_stage = Stage(
            "process", 0, SingleQueue(), base=Deterministic(5e-6)
        )
        self._agg = Microservice(
            AGG_NAME,
            sim,
            [agg_stage],
            PathSelector([ExecutionPath(0, "only", [0])]),
            agg_cores,
            model=SimpleModel(),
            machine_name=AGG_MACHINE,
            tier=AGG_NAME,
        )
        self._client_pool = ConnectionPool(
            f"client->{AGG_NAME}", DEFAULT_POOL_SIZE
        )
        self._leaf_pools = [
            ConnectionPool(f"{AGG_NAME}->leaf{i}", DEFAULT_POOL_SIZE)
            for i in range(cluster_size)
        ]

        mask = _slow_mask(sim, cluster_size, slow_fraction)
        self._local_leaves: Dict[int, _LeafRuntime] = {}
        for i, shard in enumerate(self._leaf_shards):
            if shard == 0:
                self._local_leaves[i] = _LeafRuntime(
                    sim, i, fabric, mean_service,
                    bool(mask[i]), slow_factor, self._local_emit,
                )
        self._local_done = _DoneBatch(len(self._local_leaves))

        #: request_id -> in-flight bookkeeping
        self._states: Dict[int, dict] = {}
        self.requests_submitted = 0
        self.requests_completed = 0

        self.client = OpenLoopClient(
            sim,
            self,  # duck-typed dispatcher: only .submit is used
            arrivals=qps,
            max_requests=num_requests,
            stop_at=stop_at,
        )
        self.client.start()

    # Dispatcher interface (what OpenLoopClient calls) -----------------

    def submit(
        self,
        request: Request,
        on_complete=None,
        client_name: str = "client",
        client_machine: str = CLIENT_MACHINE,
        policy=None,
    ) -> Request:
        if policy is not None:
            raise ShardingError(
                "the sharded fan-out world does not support resilience "
                "policies; run with shards=1"
            )
        self.requests_submitted += 1
        size = request.size_bytes
        conn = self._client_pool.checkout()
        conn.outstanding += 1
        state = {
            "request": request,
            "on_complete": on_complete,
            "arrivals": 0,
            "conns": [conn],
            "leaf_conns": {},
        }
        self._states[request.request_id] = state
        job = Job(request, size_bytes=size, connection=conn)
        job.on_complete = lambda _job: self._fan_out(state)
        seq = conn.next_seq(AGG_NAME)
        delay = self._net.delay(client_machine, AGG_MACHINE, size)
        self.sim.schedule_transient(
            delay,
            conn.deliver_in_order,
            AGG_NAME,
            seq,
            lambda: self._agg.accept(job, None, None),
            priority=PRIORITY_ARRIVAL,
        )
        return request

    # Fan-out / fan-in --------------------------------------------------

    def _fan_out(self, state: dict) -> None:
        """Root stage finished: dispatch to every leaf, in leaf order
        (the order the vanilla dispatcher walks the path tree)."""
        request = state["request"]
        size = request.size_bytes
        now = self.sim.now
        for i in range(self.cluster_size):
            conn = self._leaf_pools[i].checkout()
            conn.outstanding += 1
            state["conns"].append(conn)
            state["leaf_conns"][i] = conn
            seq = conn.next_seq(f"leaf{i}")
            delay = self._net.delay(AGG_MACHINE, f"leaf-node{i}", size)
            arrive = now + delay
            shard = self._leaf_shards[i]
            if shard == 0:
                leaf = self._local_leaves[i]
                self.sim.schedule_at(
                    arrive,
                    leaf.deliver,
                    request.request_id,
                    conn.conn_id,
                    seq,
                    size,
                    priority=PRIORITY_ARRIVAL,
                )
            else:
                self.send(
                    shard,
                    arrive,
                    "job",
                    (request.request_id, i, conn.conn_id, seq, size),
                    priority=PRIORITY_ARRIVAL,
                )

    def _local_emit(self, leaf_index: int, request_id: int, time: float) -> None:
        flush = self._local_done.note(request_id, leaf_index, time)
        if flush is not None:
            argmax_leaf, count, at = flush
            self.sim.schedule_at(
                at, self._on_done, request_id, argmax_leaf, count,
                priority=PRIORITY_ARRIVAL,
            )

    def handle(self, message) -> None:
        if message.kind != "done":
            raise ShardingError(
                f"root shard got unexpected message kind {message.kind!r} "
                f"from shard {message.src_shard}"
            )
        request_id, leaf_index, count = message.payload
        self._on_done(request_id, leaf_index, count)

    def _on_done(self, request_id: int, leaf_index: int, count: int = 1) -> None:
        state = self._states[request_id]
        state["arrivals"] += count
        if state["arrivals"] < self.cluster_size:
            return
        # Fan-in complete: the join stage runs on the aggregator over
        # the last-arriving leaf's connection, exactly like the
        # vanilla join node (same_instance_as the root).
        request = state["request"]
        conn = state["leaf_conns"][leaf_index]
        job = Job(request, size_bytes=request.size_bytes, connection=conn)
        job.on_complete = lambda _job: self._respond(state)
        seq = conn.next_seq(AGG_NAME)
        conn.deliver_in_order(
            AGG_NAME, seq, lambda: self._agg.accept(job, None, None)
        )

    def _respond(self, state: dict) -> None:
        request = state["request"]
        delay = self._net.delay(AGG_MACHINE, CLIENT_MACHINE, request.size_bytes)
        self.sim.schedule_transient(
            delay, self._finish, state, priority=PRIORITY_ARRIVAL
        )

    def _finish(self, state: dict) -> None:
        request = state["request"]
        for conn in state["conns"]:
            conn.outstanding -= 1
        del self._states[request.request_id]
        request.completed_at = self.sim.now
        request.outcome = OUTCOME_OK
        self.requests_completed += 1
        callback = state["on_complete"]
        if callback is not None:
            callback(request)

    # Results -----------------------------------------------------------

    def finalize(self) -> dict:
        base = super().finalize()
        recorder = self.client.latencies
        times, values = recorder.samples()
        base.update(
            requests_sent=self.client.requests_sent,
            requests_submitted=self.requests_submitted,
            requests_completed=self.client.requests_completed,
            outcomes=dict(self.client.outcomes),
            completions=[float(t) for t in times],
            latencies=[float(v) for v in values],
            in_flight=len(self._states),
        )
        if len(recorder):
            base["p50"] = recorder.p50()
            base["p99"] = recorder.p99()
        if self.end_time is not None and self._warmup is not None:
            warmup, duration = self._warmup, self.end_time
            completed = recorder.count(since=warmup, until=duration)
            window = {"completed": completed}
            if completed:
                window.update(
                    throughput=recorder.throughput(warmup, duration),
                    mean=recorder.mean(since=warmup, until=duration),
                    p50=recorder.percentile(50, since=warmup, until=duration),
                    p95=recorder.percentile(95, since=warmup, until=duration),
                    p99=recorder.percentile(99, since=warmup, until=duration),
                )
            base["window"] = window
        return base


class FanoutLeafHost(ShardHost):
    """A shard of leaf services: receives dispatches, returns
    completion stamps."""

    def __init__(
        self,
        *,
        shard_id: int,
        leaf_indices: List[int],
        cluster_size: int,
        slow_fraction: float,
        slow_factor: float,
        mean_service: float,
        seed: int,
        fabric: NetworkFabric,
        lookahead: float,
        stop_at: Optional[float] = None,
    ) -> None:
        sim = Simulator(seed=seed)
        super().__init__(shard_id, sim, lookahead, end_time=stop_at)
        mask = _slow_mask(sim, cluster_size, slow_fraction)
        self._leaves = {
            i: _LeafRuntime(
                sim, i, fabric, mean_service,
                bool(mask[i]), slow_factor, self._remote_emit,
            )
            for i in leaf_indices
        }
        self._done = _DoneBatch(len(self._leaves))

    def _remote_emit(self, leaf_index: int, request_id: int, time: float) -> None:
        flush = self._done.note(request_id, leaf_index, time)
        if flush is not None:
            argmax_leaf, count, at = flush
            self.send(
                0, at, "done", (request_id, argmax_leaf, count),
                priority=PRIORITY_ARRIVAL,
            )

    def handle(self, message) -> None:
        if message.kind != "job":
            raise ShardingError(
                f"leaf shard {self.shard_id} got unexpected message kind "
                f"{message.kind!r} from shard {message.src_shard}"
            )
        request_id, leaf_index, conn_id, seq, size = message.payload
        runtime = self._leaves.get(leaf_index)
        if runtime is None:
            raise ShardingError(
                f"leaf {leaf_index} routed to shard {self.shard_id}, "
                f"which hosts {sorted(self._leaves)}"
            )
        runtime.deliver(request_id, conn_id, seq, size)

    def finalize(self) -> dict:
        base = super().finalize()
        base["jobs_done"] = sum(
            leaf.jobs_done for leaf in self._leaves.values()
        )
        return base


# Picklable builders (process workers import these by reference) --------


def build_fanout_root_host(**kwargs) -> FanoutRootHost:
    """Construct the shard-0 host inside a worker process."""
    return FanoutRootHost(**kwargs)


def build_fanout_leaf_host(**kwargs) -> FanoutLeafHost:
    """Construct a leaf-shard host inside a worker process."""
    return FanoutLeafHost(**kwargs)


def _fanout_specs(
    plan: ShardPlan,
    *,
    cluster_size: int,
    slow_fraction: float,
    slow_factor: float,
    mean_service: float,
    seed: int,
    qps: float,
    fabric: NetworkFabric,
    num_requests: Optional[int] = None,
    stop_at: Optional[float] = None,
    warmup: Optional[float] = None,
) -> Tuple[list, Dict[Tuple[int, int], float]]:
    """Host specs (indexed by shard id) + the lookahead edge map."""
    leaf_shards = [
        plan.assignments[f"leaf-node{i}"] for i in range(cluster_size)
    ]
    common = dict(
        cluster_size=cluster_size,
        slow_fraction=slow_fraction,
        slow_factor=slow_factor,
        mean_service=mean_service,
        seed=seed,
        fabric=fabric,
        lookahead=plan.lookahead,
    )
    specs = [(
        build_fanout_root_host,
        dict(
            common,
            qps=qps,
            leaf_shards=leaf_shards,
            num_requests=num_requests,
            stop_at=stop_at,
            warmup=warmup,
        ),
    )]
    edges: Dict[Tuple[int, int], float] = {}
    for shard in range(1, plan.num_shards):
        indices = [i for i, s in enumerate(leaf_shards) if s == shard]
        specs.append((
            build_fanout_leaf_host,
            dict(
                common,
                shard_id=shard,
                leaf_indices=indices,
                stop_at=stop_at,
            ),
        ))
        edges[(0, shard)] = plan.lookahead
        edges[(shard, 0)] = plan.lookahead
    return specs, edges


def _result_dict(plan, coordinator, results) -> dict:
    root = results[0]
    recovery = getattr(coordinator, "recovery", None)
    return {
        "shards": plan.num_shards,
        "mode": getattr(coordinator, "mode", "inline"),
        "rounds": coordinator.rounds,
        "messages": coordinator.messages_exchanged,
        "stalls": getattr(coordinator, "stalls", 0),
        "straggler_rounds": dict(
            (getattr(coordinator, "runtime", None) or {}).get(
                "straggler_rounds", {}
            )
        ),
        "events_total": sum(r["events"] for r in results),
        "requests_sent": root["requests_sent"],
        "requests": len(root["latencies"]),
        "outcomes": root["outcomes"],
        "latencies": root["latencies"],
        "completions": root["completions"],
        "p50": root.get("p50"),
        "p99": root.get("p99"),
        "window": root.get("window"),
        "fallback_reason": plan.fallback_reason,
        "restarts": recovery["restarts"] if recovery else 0,
        "replayed_rounds": recovery["replayed_rounds"] if recovery else 0,
        "recovery": recovery,
    }


def _shard_chaos(fault_plan, plan: ShardPlan) -> Optional[dict]:
    """``FaultPlan`` -> the coordinator's chaos schedule.

    Only execution-layer (``shard_kill`` / ``shard_hang``) faults are
    meaningful under shards; anything else in the plan is a loud error
    — in-simulation faults are not supported on the sharded fan-out
    world, and silently dropping them would fake a chaos result.
    """
    if fault_plan is None:
        return None
    from ..faults.plan import SHARD_HANG, SHARD_KILL

    chaos: Dict[int, List[Tuple[int, str]]] = {}
    for fault in fault_plan.sorted():
        if fault.kind not in (SHARD_KILL, SHARD_HANG):
            raise ShardingError(
                f"fault kind {fault.kind!r} targets the simulated "
                f"world; the sharded fan-out runner only supports the "
                f"execution-layer kinds shard_kill/shard_hang (run "
                f"in-simulation fault plans with shards=1)"
            )
        plan.validate_shard(fault.shard)
        action = "kill" if fault.kind == SHARD_KILL else "hang"
        chaos.setdefault(int(fault.at), []).append((fault.shard, action))
    return chaos


def measure_fanout_vanilla(
    cluster_size: int,
    slow_fraction: float,
    qps: float = 30.0,
    num_requests: Optional[int] = 300,
    slow_factor: float = 10.0,
    mean_service: float = 1e-3,
    seed: int = 0,
    network: Optional[NetworkFabric] = None,
    stop_at: Optional[float] = None,
    warmup: Optional[float] = None,
    audit: bool = False,
) -> dict:
    """The same measurement on the ordinary single-simulator engine
    (the reference the equivalence tests compare against, and the
    fallback when no positive lookahead exists)."""
    from ..experiments.audit import audit_client
    from ..experiments.tail_at_scale import build_fanout_cluster

    world = build_fanout_cluster(
        cluster_size,
        slow_fraction,
        slow_factor,
        mean_service=mean_service,
        seed=seed,
        network=network,
    )
    client = OpenLoopClient(
        world.sim,
        world.dispatcher,
        arrivals=qps,
        max_requests=num_requests,
        stop_at=stop_at,
    )
    client.start()
    if stop_at is not None:
        world.sim.run(until=stop_at)
    else:
        world.sim.run()
    if audit:
        audit_client(client, world.sim, dispatcher=world.dispatcher)
    recorder = client.latencies
    times, values = recorder.samples()
    result = {
        "shards": 1,
        "mode": "single",
        "rounds": 0,
        "messages": 0,
        "stalls": 0,
        "straggler_rounds": {},
        "events_total": world.sim.events_processed,
        "requests_sent": client.requests_sent,
        "requests": len(recorder),
        "outcomes": dict(client.outcomes),
        "latencies": [float(v) for v in values],
        "completions": [float(t) for t in times],
        "p50": recorder.p50() if len(recorder) else None,
        "p99": recorder.p99() if len(recorder) else None,
        "window": None,
        "fallback_reason": None,
        "restarts": 0,
        "replayed_rounds": 0,
        "recovery": None,
    }
    if stop_at is not None and warmup is not None:
        completed = recorder.count(since=warmup, until=stop_at)
        window = {"completed": completed}
        if completed:
            window.update(
                throughput=recorder.throughput(warmup, stop_at),
                mean=recorder.mean(since=warmup, until=stop_at),
                p50=recorder.percentile(50, since=warmup, until=stop_at),
                p95=recorder.percentile(95, since=warmup, until=stop_at),
                p99=recorder.percentile(99, since=warmup, until=stop_at),
            )
        result["window"] = window
    return result


def measure_fanout_sharded(
    cluster_size: int,
    slow_fraction: float,
    qps: float = 30.0,
    num_requests: Optional[int] = 300,
    slow_factor: float = 10.0,
    mean_service: float = 1e-3,
    seed: int = 0,
    shards: int = 2,
    network: Optional[NetworkFabric] = None,
    mode: str = "auto",
    max_window: Optional[float] = None,
    stop_at: Optional[float] = None,
    warmup: Optional[float] = None,
    audit: bool = False,
    fault_plan=None,
    shard_timeout: Optional[float] = None,
    shard_restarts: Optional[int] = None,
    journal_path=None,
) -> dict:
    """Run the fan-out world across *shards* simulator shards.

    Termination is either count-style (*num_requests*, matching
    ``measure_tail_at_scale``) or duration-style (*stop_at* with an
    optional *warmup* stats window, matching ``measure_at_load``).
    Falls back — loudly, via the planner's ``RuntimeWarning`` — to the
    single-shard engine when the fabric has no positive lookahead, so
    the returned dict always has the same shape.

    *audit* runs the merged cross-shard conservation audit
    (:func:`repro.experiments.audit.audit_sharded_run`) on the
    per-shard finalize counters. *fault_plan* may carry
    ``shard_kill``/``shard_hang`` faults (execution-layer chaos: the
    supervisor must recover and the results must not change);
    *shard_timeout*, *shard_restarts* and *journal_path* tune the
    supervision layer (see :func:`repro.shard.worker.run_sharded`).
    """
    if num_requests is None and stop_at is None:
        raise ShardingError(
            "measure_fanout_sharded needs num_requests and/or stop_at"
        )
    fabric = network if network is not None else NetworkFabric()
    plan = plan_fanout_shards(cluster_size, shards, fabric)
    if not plan.sharded:
        if fault_plan is not None and len(fault_plan):
            raise ShardingError(
                f"fault plan carries {len(fault_plan)} shard fault(s) "
                f"but the run is not sharded"
                + (
                    f" ({plan.fallback_reason})"
                    if plan.fallback_reason
                    else ""
                )
            )
        result = measure_fanout_vanilla(
            cluster_size,
            slow_fraction,
            qps=qps,
            num_requests=num_requests,
            slow_factor=slow_factor,
            mean_service=mean_service,
            seed=seed,
            network=fabric,
            stop_at=stop_at,
            warmup=warmup,
            audit=audit,
        )
        result["fallback_reason"] = plan.fallback_reason
        return result
    chaos = _shard_chaos(fault_plan, plan)
    specs, edges = _fanout_specs(
        plan,
        cluster_size=cluster_size,
        slow_fraction=slow_fraction,
        slow_factor=slow_factor,
        mean_service=mean_service,
        seed=seed,
        qps=qps,
        fabric=fabric,
        num_requests=num_requests,
        stop_at=stop_at,
        warmup=warmup,
    )
    run_kwargs: dict = {"chaos": chaos, "journal_path": journal_path}
    if shard_timeout is not None:
        run_kwargs["window_timeout"] = shard_timeout
    if shard_restarts is not None:
        run_kwargs["max_shard_restarts"] = shard_restarts
    results, coordinator = run_sharded(
        specs, edges, mode=mode, max_window=max_window, **run_kwargs
    )
    if audit:
        from ..experiments.audit import audit_sharded_run

        audit_sharded_run(
            results,
            messages_exchanged=coordinator.messages_exchanged,
        )
    return _result_dict(plan, coordinator, results)


def fanout_sharded_load_point(
    qps: float,
    duration: float,
    warmup: float,
    seed: int,
    shards: int,
    *,
    cluster_size: int,
    slow_fraction: float = 0.0,
    slow_factor: float = 10.0,
    mean_service: float = 1e-3,
    network: Optional[NetworkFabric] = None,
    mode: str = "auto",
    max_window: Optional[float] = None,
    audit: bool = False,
    fault_plan=None,
    shard_timeout: Optional[float] = None,
    shard_restarts: Optional[int] = None,
    journal_path=None,
):
    """``measure_at_load``-compatible sharded runner for the fan-out
    world (attached to ``build_fanout_cluster.sharded_runner``).

    *seed* arrives already derived per load point; returns a
    :class:`~repro.experiments.loadsweep.SweepPoint` with statistics
    over the post-warmup window, wedge semantics included.
    ``shard_recovery`` is populated only when workers actually had to
    be restarted, so an unfaulted sharded point stays equal to its
    vanilla twin.
    """
    from ..experiments.loadsweep import SweepPoint

    result = measure_fanout_sharded(
        cluster_size,
        slow_fraction,
        qps=qps,
        num_requests=None,
        slow_factor=slow_factor,
        mean_service=mean_service,
        seed=seed,
        shards=shards,
        network=network,
        mode=mode,
        max_window=max_window,
        stop_at=duration,
        warmup=warmup,
        audit=audit,
        fault_plan=fault_plan,
        shard_timeout=shard_timeout,
        shard_restarts=shard_restarts,
        journal_path=journal_path,
    )
    recovery = result["recovery"] if result["restarts"] else None
    window = result["window"] or {"completed": 0}
    if not window["completed"]:
        point = SweepPoint(qps, 0.0, float("inf"), float("inf"),
                           float("inf"), float("inf"), 0,
                           shard_recovery=recovery)
    else:
        point = SweepPoint(
            offered_qps=qps,
            throughput=window["throughput"],
            mean=window["mean"],
            p50=window["p50"],
            p95=window["p95"],
            p99=window["p99"],
            completed=window["completed"],
            shard_recovery=recovery,
        )
    # Non-declared attribute: dataclass equality ignores it, so the
    # sharded-vs-vanilla identity contracts are untouched (and journal
    # round-trips simply drop it).
    point.shard_sync = {
        "shards": result["shards"],
        "mode": result["mode"],
        "rounds": result["rounds"],
        "messages_exchanged": result["messages"],
        "stalls": result.get("stalls", 0),
        "restarts": result["restarts"],
        "per_shard_restarts": {
            str(shard): info.get("restarts", 0)
            for shard, info in (
                (result["recovery"] or {}).get("per_shard") or {}
            ).items()
        },
        "straggler_rounds": dict(result.get("straggler_rounds", {})),
    }
    return point


__all__ = [
    "AGG_MACHINE",
    "CLIENT_MACHINE",
    "FanoutLeafHost",
    "FanoutRootHost",
    "build_fanout_leaf_host",
    "build_fanout_root_host",
    "fanout_machines",
    "fanout_sharded_load_point",
    "measure_fanout_sharded",
    "measure_fanout_vanilla",
    "plan_fanout_shards",
]
