"""Per-shard worker processes.

Process-mode execution of :class:`~repro.shard.sync.ShardHost`: each
shard's simulator runs in its own OS process and the
:class:`~repro.shard.sync.ConservativeCoordinator` talks to it through
a :class:`ShardWorkerProxy` over a pipe. The proxy exposes the exact
host interface (``horizon`` / ``begin_advance`` / ``finish_advance`` /
``finalize``), so the coordinator is oblivious to where a shard runs —
which is also what makes inline mode (everything in-process, used by
the determinism tests and the sandbox fallback) bit-identical to
process mode by construction: the round structure and message order
are decided by the coordinator, never by process scheduling.

Hosts are built *inside* the worker from a picklable
``(builder, kwargs)`` spec — module-level builder functions taking
primitives — mirroring the :mod:`repro.runner.parallel` discipline.
Seeding needs no per-worker derivation: every shard constructs its
simulator from the **same root seed**, and determinism comes from the
named-stream discipline (:class:`~repro.engine.RandomStreams` derives
each component's generator from its name via ``SeedSequence``, so the
draws of ``service/leaf7`` are identical no matter which process, or
shard count, instantiates them).

Environments where processes cannot be created (restricted sandboxes:
no fork, no pipes) degrade to inline mode with a ``RuntimeWarning`` —
same results, just single-core, matching ``parallel_map``'s fallback
contract.
"""

from __future__ import annotations

import multiprocessing
import traceback
import warnings
from typing import Callable, List, Sequence, Tuple

from ..errors import ShardingError
from .message import ShardMessage
from .sync import ShardHost


def _worker_main(conn, builder: Callable, kwargs: dict) -> None:
    """Worker process body: build the host, serve coordinator commands."""
    try:
        host = builder(**kwargs)
    except BaseException:
        conn.send(("err", traceback.format_exc()))
        conn.close()
        return
    conn.send(("ok", host.horizon()))
    try:
        while True:
            cmd = conn.recv()
            op = cmd[0]
            try:
                if op == "advance":
                    _op, until, inbound = cmd
                    horizon, out = host.advance(until, inbound)
                    conn.send(("ok", (horizon, out)))
                elif op == "finalize":
                    conn.send(("ok", host.finalize()))
                elif op == "stop":
                    return
                else:
                    conn.send(("err", f"unknown shard command {op!r}"))
            except BaseException:
                conn.send(("err", traceback.format_exc()))
    except (EOFError, OSError):
        return  # parent went away; nothing left to serve
    finally:
        conn.close()


class ShardWorkerProxy:
    """Coordinator-side handle to one worker-process shard."""

    def __init__(self, shard_id: int, process, conn, horizon: float) -> None:
        self.shard_id = shard_id
        self._process = process
        self._conn = conn
        self._initial_horizon = horizon
        self._in_flight = False

    def _recv(self):
        try:
            status, payload = self._conn.recv()
        except (EOFError, OSError) as exc:
            raise ShardingError(
                f"shard worker {self.shard_id} died mid-window "
                f"(exitcode={self._process.exitcode})"
            ) from exc
        if status != "ok":
            raise ShardingError(
                f"shard worker {self.shard_id} failed:\n{payload}"
            )
        return payload

    # Host interface ---------------------------------------------------

    def horizon(self) -> float:
        return self._initial_horizon

    def begin_advance(
        self, until: float, inbound: Sequence[ShardMessage]
    ) -> None:
        assert not self._in_flight
        self._in_flight = True
        self._conn.send(("advance", until, list(inbound)))

    def finish_advance(self):
        assert self._in_flight
        self._in_flight = False
        return self._recv()

    def finalize(self) -> dict:
        self._conn.send(("finalize",))
        result = self._recv()
        self.close()
        return result

    def close(self) -> None:
        try:
            self._conn.send(("stop",))
        except (BrokenPipeError, OSError):
            pass
        self._process.join(timeout=10)
        if self._process.is_alive():  # pragma: no cover - hung worker
            self._process.terminate()
            self._process.join(timeout=10)
        self._conn.close()


HostSpec = Tuple[Callable, dict]


def start_shard_hosts(
    specs: Sequence[HostSpec], mode: str = "auto"
) -> Tuple[List, str]:
    """Build one host per spec; returns ``(hosts, effective_mode)``.

    ``mode``:

    * ``"inline"`` — construct every host in this process.
    * ``"process"`` — one worker process per shard; raises
      :class:`~repro.errors.ShardingError` if processes cannot start.
    * ``"auto"`` — process mode, degrading to inline with a
      ``RuntimeWarning`` where process infrastructure is unavailable.
    """
    if mode not in ("auto", "process", "inline"):
        raise ShardingError(
            f'shard mode must be "auto", "process" or "inline", '
            f"got {mode!r}"
        )
    if mode == "inline" or len(specs) <= 1:
        return [builder(**kwargs) for builder, kwargs in specs], "inline"
    try:
        return _start_processes(specs), "process"
    except (OSError, PermissionError) as exc:
        if mode == "process":
            raise ShardingError(
                f"cannot start shard worker processes: {exc}"
            ) from exc
        warnings.warn(
            f"shard worker processes unavailable ({exc}); running "
            f"{len(specs)} shards inline in one process",
            RuntimeWarning, stacklevel=2,
        )
        return [builder(**kwargs) for builder, kwargs in specs], "inline"


def _start_processes(specs: Sequence[HostSpec]) -> List[ShardWorkerProxy]:
    ctx = multiprocessing.get_context()
    proxies: List[ShardWorkerProxy] = []
    try:
        for shard_id, (builder, kwargs) in enumerate(specs):
            parent_conn, child_conn = ctx.Pipe()
            process = ctx.Process(
                target=_worker_main,
                args=(child_conn, builder, kwargs),
                daemon=True,
                name=f"repro-shard-{shard_id}",
            )
            process.start()
            child_conn.close()
            status, payload = parent_conn.recv()
            if status != "ok":
                raise ShardingError(
                    f"shard {shard_id} failed to build:\n{payload}"
                )
            proxies.append(
                ShardWorkerProxy(shard_id, process, parent_conn, payload)
            )
    except BaseException:
        for proxy in proxies:
            proxy.close()
        raise
    return proxies


def run_sharded(
    specs: Sequence[HostSpec],
    lookaheads,
    mode: str = "auto",
    max_window=None,
) -> Tuple[List[dict], "object"]:
    """Build hosts, run the conservative rounds, return results.

    Returns ``(per-shard finalize dicts, coordinator)`` — the
    coordinator exposes ``rounds`` and ``messages_exchanged`` for
    telemetry. Worker cleanup is owned here: a failure mid-run still
    tears the processes down.
    """
    from .sync import ConservativeCoordinator

    hosts, effective_mode = start_shard_hosts(specs, mode=mode)
    coordinator = ConservativeCoordinator(
        hosts, lookaheads, max_window=max_window
    )
    coordinator.mode = effective_mode
    try:
        results = coordinator.run()
    except BaseException:
        for host in hosts:
            if isinstance(host, ShardWorkerProxy):
                host.close()
        raise
    return results, coordinator


__all__ = [
    "ShardWorkerProxy",
    "start_shard_hosts",
    "run_sharded",
]
