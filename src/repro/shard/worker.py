"""Per-shard worker processes.

Process-mode execution of :class:`~repro.shard.sync.ShardHost`: each
shard's simulator runs in its own OS process and the
:class:`~repro.shard.sync.ConservativeCoordinator` talks to it through
a :class:`ShardWorkerProxy` over a pipe. The proxy exposes the exact
host interface (``horizon`` / ``begin_advance`` / ``finish_advance`` /
``finalize``), so the coordinator is oblivious to where a shard runs —
which is also what makes inline mode (everything in-process, used by
the determinism tests and the sandbox fallback) bit-identical to
process mode by construction: the round structure and message order
are decided by the coordinator, never by process scheduling.

Hosts are built *inside* the worker from a picklable
``(builder, kwargs)`` spec — module-level builder functions taking
primitives — mirroring the :mod:`repro.runner.parallel` discipline.
Seeding needs no per-worker derivation: every shard constructs its
simulator from the **same root seed**, and determinism comes from the
named-stream discipline (:class:`~repro.engine.RandomStreams` derives
each component's generator from its name via ``SeedSequence``, so the
draws of ``service/leaf7`` are identical no matter which process, or
shard count, instantiates them).

Failure handling: every proxy read is a poll-with-deadline, so a dead
worker surfaces as :class:`ShardWorkerDied` and a hung one as
:class:`ShardWorkerHung` instead of blocking the coordinator forever.
Under supervision (:mod:`repro.shard.supervisor`, the default in
process mode) both are recoverable — the shard is rebuilt from its
spec and replayed from the coordinator's journal; unsupervised, they
abort the run loudly.

Environments where processes cannot be created (restricted sandboxes:
no fork, no pipes) degrade to inline mode with a ``RuntimeWarning`` —
same results, just single-core, matching ``parallel_map``'s fallback
contract.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
import warnings
from typing import Callable, List, Optional, Sequence, Tuple

from ..errors import ShardingError
from .message import ShardMessage

#: Wall-clock budget per conservative window before a worker that has
#: not replied is declared hung. Generous on purpose: a window of real
#: simulation work is seconds, not minutes, so five minutes of silence
#: means a stuck process, not a slow one.
DEFAULT_WINDOW_TIMEOUT = 300.0


class ShardWorkerDied(ShardingError):
    """A shard worker process exited (crash, OOM-kill, SIGKILL)."""


class ShardWorkerHung(ShardingError):
    """A shard worker is alive but silent past its window deadline."""


def _worker_main(conn, builder: Callable, kwargs: dict) -> None:
    """Worker process body: build the host, serve coordinator commands."""
    try:
        host = builder(**kwargs)
    except BaseException:
        conn.send(("err", traceback.format_exc()))
        conn.close()
        return
    conn.send(("ok", host.horizon()))
    try:
        while True:
            cmd = conn.recv()
            op = cmd[0]
            try:
                if op == "advance":
                    _op, until, inbound = cmd
                    horizon, out = host.advance(until, inbound)
                    conn.send(("ok", (horizon, out)))
                elif op == "finalize":
                    conn.send(("ok", host.finalize()))
                elif op == "stop":
                    return
                elif op == "hang":
                    # Chaos hook: go silent without exiting, the
                    # stuck-in-a-syscall failure mode. The supervisor
                    # must time out and SIGKILL us.
                    time.sleep(3600.0)
                else:
                    conn.send(("err", f"unknown shard command {op!r}"))
            except BaseException:
                conn.send(("err", traceback.format_exc()))
    except (EOFError, OSError):
        return  # parent went away; nothing left to serve
    finally:
        conn.close()


class ShardWorkerProxy:
    """Coordinator-side handle to one worker-process shard.

    Every read is bounded by *timeout* seconds (``None`` blocks
    forever, for debugging only): liveness failures raise typed
    :class:`ShardWorkerDied` / :class:`ShardWorkerHung` so the
    supervisor can tell "rebuild and replay" from "model bug".
    """

    def __init__(
        self,
        shard_id: int,
        process,
        conn,
        horizon: float,
        timeout: Optional[float] = DEFAULT_WINDOW_TIMEOUT,
    ) -> None:
        self.shard_id = shard_id
        self.timeout = timeout
        self._process = process
        self._conn = conn
        self._initial_horizon = horizon
        self._in_flight = False

    def _send(self, cmd: tuple) -> None:
        try:
            self._conn.send(cmd)
        except (BrokenPipeError, OSError) as exc:
            # A SIGKILL between rounds surfaces here, on the *next*
            # command, rather than on a read.
            raise ShardWorkerDied(
                f"shard worker {self.shard_id} died before {cmd[0]!r} "
                f"(exitcode={self._process.exitcode})"
            ) from exc

    def _recv(self):
        if self.timeout is not None and not self._conn.poll(self.timeout):
            raise ShardWorkerHung(
                f"shard worker {self.shard_id} (pid "
                f"{self._process.pid}) sent nothing for "
                f"{self.timeout:g}s (alive={self._process.is_alive()})"
            )
        try:
            status, payload = self._conn.recv()
        except (EOFError, OSError) as exc:
            raise ShardWorkerDied(
                f"shard worker {self.shard_id} died mid-window "
                f"(exitcode={self._process.exitcode})"
            ) from exc
        if status != "ok":
            raise ShardingError(
                f"shard worker {self.shard_id} failed:\n{payload}"
            )
        return payload

    # Host interface ---------------------------------------------------

    def horizon(self) -> float:
        return self._initial_horizon

    def begin_advance(
        self, until: float, inbound: Sequence[ShardMessage]
    ) -> None:
        assert not self._in_flight
        self._in_flight = True
        self._send(("advance", until, list(inbound)))

    def finish_advance(self):
        assert self._in_flight
        self._in_flight = False
        return self._recv()

    def finalize(self) -> dict:
        self._send(("finalize",))
        result = self._recv()
        self.close()
        return result

    def close(self) -> None:
        try:
            self._conn.send(("stop",))
        except (BrokenPipeError, OSError):
            pass
        self._process.join(timeout=10)
        if self._process.is_alive():  # pragma: no cover - hung worker
            self._process.terminate()
            self._process.join(timeout=10)
        if self._process.is_alive():  # pragma: no cover - survived TERM
            self._process.kill()
            self._process.join(timeout=10)
        self._conn.close()

    def reap(self) -> None:
        """Dispose of a dead or hung worker without the polite stop
        handshake: SIGKILL if still running, join, drop the pipe."""
        if self._process.is_alive():
            self._process.kill()
        self._process.join(timeout=10)
        try:
            self._conn.close()
        except OSError:  # pragma: no cover - already torn down
            pass

    # Chaos hooks ------------------------------------------------------

    def inject_kill(self) -> None:
        """SIGKILL the worker (fault injection). The death surfaces at
        the next proxy read/send as :class:`ShardWorkerDied`."""
        self._process.kill()
        self._process.join(timeout=10)

    def inject_hang(self) -> None:
        """Queue the hang command (fault injection): after finishing
        whatever it is doing, the worker goes silent and the next read
        times out as :class:`ShardWorkerHung`."""
        try:
            self._conn.send(("hang",))
        except (BrokenPipeError, OSError):  # pragma: no cover
            pass  # already dead; the kill path will handle it


HostSpec = Tuple[Callable, dict]


def spawn_worker(
    ctx,
    shard_id: int,
    spec: HostSpec,
    timeout: Optional[float] = DEFAULT_WINDOW_TIMEOUT,
) -> ShardWorkerProxy:
    """Start one worker process and complete the build handshake.

    Owns its own cleanup: any handshake failure (build error in the
    worker, dead process, silence past *timeout*) reaps the process
    and closes the parent pipe end before raising, so a failed spawn
    never leaks a process or a file descriptor.
    """
    builder, kwargs = spec
    parent_conn, child_conn = ctx.Pipe()
    process = ctx.Process(
        target=_worker_main,
        args=(child_conn, builder, kwargs),
        daemon=True,
        name=f"repro-shard-{shard_id}",
    )
    process.start()
    child_conn.close()
    try:
        if timeout is not None and not parent_conn.poll(timeout):
            raise ShardWorkerHung(
                f"shard {shard_id} sent no build handshake in "
                f"{timeout:g}s"
            )
        try:
            status, payload = parent_conn.recv()
        except (EOFError, OSError) as exc:
            raise ShardWorkerDied(
                f"shard {shard_id} died during build "
                f"(exitcode={process.exitcode})"
            ) from exc
        if status != "ok":
            raise ShardingError(
                f"shard {shard_id} failed to build:\n{payload}"
            )
    except BaseException:
        if process.is_alive():
            process.kill()
        process.join(timeout=10)
        parent_conn.close()
        raise
    return ShardWorkerProxy(
        shard_id, process, parent_conn, payload, timeout=timeout
    )


def start_shard_hosts(
    specs: Sequence[HostSpec],
    mode: str = "auto",
    timeout: Optional[float] = DEFAULT_WINDOW_TIMEOUT,
) -> Tuple[List, str]:
    """Build one host per spec; returns ``(hosts, effective_mode)``.

    ``mode``:

    * ``"inline"`` — construct every host in this process.
    * ``"process"`` — one worker process per shard; raises
      :class:`~repro.errors.ShardingError` if processes cannot start.
    * ``"auto"`` — process mode, degrading to inline with a
      ``RuntimeWarning`` where process infrastructure is unavailable.
    """
    if mode not in ("auto", "process", "inline"):
        raise ShardingError(
            f'shard mode must be "auto", "process" or "inline", '
            f"got {mode!r}"
        )
    if mode == "inline" or len(specs) <= 1:
        return [builder(**kwargs) for builder, kwargs in specs], "inline"
    try:
        return _start_processes(specs, timeout=timeout), "process"
    except (OSError, PermissionError) as exc:
        if mode == "process":
            raise ShardingError(
                f"cannot start shard worker processes: {exc}"
            ) from exc
        warnings.warn(
            f"shard worker processes unavailable ({exc}); running "
            f"{len(specs)} shards inline in one process",
            RuntimeWarning, stacklevel=2,
        )
        return [builder(**kwargs) for builder, kwargs in specs], "inline"


def _start_processes(
    specs: Sequence[HostSpec],
    timeout: Optional[float] = DEFAULT_WINDOW_TIMEOUT,
) -> List[ShardWorkerProxy]:
    ctx = multiprocessing.get_context()
    proxies: List[ShardWorkerProxy] = []
    try:
        for shard_id, spec in enumerate(specs):
            proxies.append(spawn_worker(ctx, shard_id, spec, timeout))
    except BaseException:
        for proxy in proxies:
            proxy.close()
        raise
    return proxies


def run_sharded(
    specs: Sequence[HostSpec],
    lookaheads,
    mode: str = "auto",
    max_window=None,
    *,
    supervise: str = "auto",
    window_timeout: Optional[float] = DEFAULT_WINDOW_TIMEOUT,
    max_shard_restarts: int = 3,
    journal_path=None,
    chaos=None,
) -> Tuple[List[dict], "object"]:
    """Build hosts, run the conservative rounds, return results.

    Returns ``(per-shard finalize dicts, coordinator)`` — the
    coordinator exposes ``rounds``, ``messages_exchanged`` and (when
    supervised) ``recovery`` for telemetry. Worker cleanup is owned
    here: a failure mid-run still tears the processes down.

    In process mode, workers are wrapped in
    :class:`~repro.shard.supervisor.ShardSupervisor` by default
    (``supervise="auto"``): a worker that dies or hangs mid-run is
    rebuilt from its spec and replayed from the round journal instead
    of aborting the run. ``supervise="never"`` keeps the bare proxies
    (failures abort loudly). *journal_path*, when set, mirrors the
    replay journal to JSONL on disk. *chaos* maps a round index to
    ``[(shard_id, "kill" | "hang"), ...]`` fault injections — it
    requires supervised process workers, since an unsupervised or
    inline run cannot survive them.
    """
    from .journal import ReplayJournal
    from .supervisor import ShardSupervisor
    from .sync import ConservativeCoordinator

    if supervise not in ("auto", "always", "never"):
        raise ShardingError(
            f'supervise must be "auto", "always" or "never", '
            f"got {supervise!r}"
        )
    hosts, effective_mode = start_shard_hosts(
        specs, mode=mode, timeout=window_timeout
    )
    supervised = supervise != "never" and effective_mode == "process"
    if supervise == "always" and effective_mode != "process":
        raise ShardingError(
            "supervise='always' requires process-mode shard workers"
        )
    journal = None
    if supervised:
        journal = ReplayJournal(len(specs), path=journal_path)
        ctx = multiprocessing.get_context()
        hosts = [
            ShardSupervisor(
                shard_id,
                specs[shard_id],
                proxy,
                journal,
                max_restarts=max_shard_restarts,
                window_timeout=window_timeout,
                ctx=ctx,
            )
            for shard_id, proxy in enumerate(hosts)
        ]
    elif chaos:
        raise ShardingError(
            "chaos injection (shard_kill) requires supervised process "
            "workers; this run resolved to "
            f"mode={effective_mode!r}, supervise={supervise!r}"
        )
    coordinator = ConservativeCoordinator(
        hosts, lookaheads, max_window=max_window,
        journal=journal, chaos=chaos,
    )
    coordinator.mode = effective_mode
    coordinator.supervised = supervised
    try:
        results = coordinator.run()
    except BaseException:
        for host in hosts:
            if hasattr(host, "close"):
                host.close()
        raise
    if supervised:
        per_shard = {
            host.shard_id: host.recovery_summary()
            for host in hosts
            if host.restarts
        }
        coordinator.recovery = {
            "restarts": sum(host.restarts for host in hosts),
            "replayed_rounds": sum(host.replayed_rounds for host in hosts),
            "per_shard": per_shard,
        }
    else:
        coordinator.recovery = None
    # Fold the per-shard finalize runtime blocks + coordinator counters
    # into the introspection report once, here, so every caller
    # (adapter, fan-out port, benchmarks) reads ``coordinator.runtime``
    # instead of re-deriving it. O(rounds x shards), off any hot path.
    coordinator.runtime = coordinator.runtime_report(results)
    return results, coordinator


__all__ = [
    "DEFAULT_WINDOW_TIMEOUT",
    "ShardWorkerDied",
    "ShardWorkerHung",
    "ShardWorkerProxy",
    "spawn_worker",
    "start_shard_hosts",
    "run_sharded",
]
