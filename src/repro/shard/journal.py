"""Barrier-replay journal for the sharded simulation core.

Fault tolerance for conservative-window execution rests on one fact:
a shard's state at any barrier is a pure function of its build spec
(seed included) and the inbound messages it was handed each round.
The :class:`~repro.shard.sync.ConservativeCoordinator` therefore
journals every *completed* round — the ``until`` bound and inbound
:class:`~repro.shard.message.ShardMessage` list per shard, plus a
digest of each shard's outbound — and a dead or hung worker can be
rebuilt from scratch and *replayed* to the last completed barrier
(:class:`~repro.shard.supervisor.ShardSupervisor`).

Replay is verified, not assumed: the rebuilt shard's outbound digest
at every replayed round must match the journaled digest. A mismatch
means the model is not deterministic under its named-stream seeding
discipline (or the journal was tampered with), and recovery refuses
to continue — a loud :class:`~repro.errors.ShardingError` beats
silently-corrupted statistics.

The journal is in-memory by default; with a ``path`` it also appends
one JSON line per round (the :func:`repro.runner.append_jsonl`
discipline RunStore uses — durable per line, torn tails ignored), so
a post-mortem or an external auditor can re-check digests without
rerunning anything.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from ..errors import ShardingError
from ..runner import append_jsonl
from .message import ShardMessage

#: One outbound entry as the host produced it: ``(dst_shard, message)``.
Outbound = Tuple[int, ShardMessage]


def _message_token(dst: Optional[int], msg: ShardMessage) -> tuple:
    """Canonical, bit-exact encoding of one message for digesting.

    ``float.hex`` pins the exact bits of the stamp (repr would too, but
    hex makes the -0.0 / 0.0 distinction impossible to miss); payloads
    are plain tuples of primitives whose ``repr`` is deterministic.
    """
    return (
        dst,
        float(msg.time).hex(),
        msg.priority,
        msg.src_shard,
        msg.seq,
        msg.kind,
        repr(msg.payload),
    )


def outbound_digest(out: Sequence[Outbound]) -> str:
    """Deterministic digest of one shard's outbound for one round.

    Order-sensitive on purpose: the outbox order is part of the
    deterministic contract (it is drained in send order), so a replay
    that produces the same messages in a different order is still a
    divergence.
    """
    h = hashlib.sha256()
    for dst, msg in out:
        h.update(repr(_message_token(dst, msg)).encode("utf-8"))
        h.update(b"\x00")
    return h.hexdigest()[:16]


def _encode_message(msg: ShardMessage) -> dict:
    return {
        "time": msg.time,
        "priority": msg.priority,
        "src_shard": msg.src_shard,
        "seq": msg.seq,
        "kind": msg.kind,
        "payload": list(msg.payload),
    }


def _decode_message(payload: dict) -> ShardMessage:
    return ShardMessage(
        time=float(payload["time"]),
        priority=int(payload["priority"]),
        src_shard=int(payload["src_shard"]),
        seq=int(payload["seq"]),
        kind=str(payload["kind"]),
        payload=tuple(payload["payload"]),
    )


@dataclass(frozen=True)
class RoundRecord:
    """One shard's slice of one completed round: everything needed to
    re-execute it (``until``, ``inbound``) and to verify the
    re-execution (``digest`` of the outbound it must reproduce)."""

    round_index: int
    until: float
    inbound: Tuple[ShardMessage, ...]
    digest: str


class ReplayJournal:
    """The coordinator's replay log: per-shard round history.

    Appended once per completed barrier by the coordinator; read back
    by :class:`~repro.shard.supervisor.ShardSupervisor` when it
    rebuilds a shard. Memory note: the journal holds every inbound
    message of the run (that *is* the replay history — conservative
    recovery has no checkpoints), which for the mailbox volumes of the
    ported topologies is far smaller than the shards' own event state.
    """

    def __init__(
        self, num_shards: int, path: Optional[Union[str, Path]] = None
    ) -> None:
        if num_shards < 1:
            raise ShardingError(
                f"replay journal needs >= 1 shard, got {num_shards!r}"
            )
        self.num_shards = num_shards
        self.path = Path(path) if path is not None else None
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
        #: ``_rounds[r][i]`` is shard *i*'s record of round *r*.
        self._rounds: List[List[RoundRecord]] = []

    @property
    def rounds(self) -> int:
        """Completed (journaled) rounds so far."""
        return len(self._rounds)

    def record_round(
        self,
        round_index: int,
        untils: Sequence[float],
        inbounds: Sequence[Sequence[ShardMessage]],
        digests: Sequence[str],
    ) -> None:
        """Journal one completed barrier (all shards at once)."""
        if round_index != len(self._rounds):
            raise ShardingError(
                f"journal expected round {len(self._rounds)}, "
                f"got {round_index}"
            )
        if not (
            len(untils) == len(inbounds) == len(digests) == self.num_shards
        ):
            raise ShardingError(
                f"journal round {round_index} shape mismatch: "
                f"{len(untils)}/{len(inbounds)}/{len(digests)} entries "
                f"for {self.num_shards} shards"
            )
        records = [
            RoundRecord(
                round_index=round_index,
                until=float(untils[i]),
                inbound=tuple(inbounds[i]),
                digest=digests[i],
            )
            for i in range(self.num_shards)
        ]
        self._rounds.append(records)
        if self.path is not None:
            append_jsonl(self.path, {
                "round": round_index,
                "shards": [
                    {
                        "until": rec.until,
                        "inbound": [
                            _encode_message(m) for m in rec.inbound
                        ],
                        "outbound_digest": rec.digest,
                    }
                    for rec in records
                ],
            })

    def shard_history(self, shard_id: int) -> Iterator[RoundRecord]:
        """Shard *shard_id*'s records for every completed round, in
        round order — the replay script for a rebuilt worker."""
        if not 0 <= shard_id < self.num_shards:
            raise ShardingError(
                f"shard {shard_id} outside 0..{self.num_shards - 1}"
            )
        for records in self._rounds:
            yield records[shard_id]

    def digest_at(self, round_index: int, shard_id: int) -> str:
        """The journaled outbound digest of (*round_index*, *shard_id*)."""
        return self._rounds[round_index][shard_id].digest

    def message_counts(self) -> Dict[Tuple[int, int], int]:
        """Journaled deliveries per ``(src, dst)`` pair — the
        coordinator-side half of the cross-shard conservation audit
        (each message was journaled as *inbound* at its receiver)."""
        counts: Dict[Tuple[int, int], int] = {}
        for records in self._rounds:
            for dst, rec in enumerate(records):
                for msg in rec.inbound:
                    key = (msg.src_shard, dst)
                    counts[key] = counts.get(key, 0) + 1
        return counts


def load_replay_journal(
    path: Union[str, Path], num_shards: Optional[int] = None
) -> ReplayJournal:
    """Rebuild a :class:`ReplayJournal` from its on-disk JSONL form.

    Used by post-mortem tooling and the CI chaos smoke to re-check
    recovery claims against what was actually journaled. A torn final
    line (killed writer) is skipped, matching RunStore's tolerance.
    """
    path = Path(path)
    rounds: List[dict] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except ValueError:
                continue
            rounds.append(entry)
    if not rounds:
        raise ShardingError(f"replay journal {path} holds no rounds")
    inferred = len(rounds[0]["shards"])
    journal = ReplayJournal(num_shards or inferred)
    for entry in rounds:
        shards = entry["shards"]
        journal.record_round(
            int(entry["round"]),
            [s["until"] for s in shards],
            [[_decode_message(m) for m in s["inbound"]] for s in shards],
            [s["outbound_digest"] for s in shards],
        )
    return journal


__all__ = [
    "ReplayJournal",
    "RoundRecord",
    "load_replay_journal",
    "outbound_digest",
]
