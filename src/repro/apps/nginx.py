"""The NGINX model.

Paper SSIV-E: NGINX is modelled with two stages — ``epoll`` and
``handler_processing`` (Fig 3 additionally shows the TCP rx/tx handled
by the per-machine network-processing service). We give the handler
three execution paths for NGINX's three jobs in the evaluation:

* ``serve``  — static page webserver (LB backends, fanout leaves);
* ``proxy``  — parse a request and forward it upstream (2-tier entry,
  LB/fanout proxy);
* ``respond`` — compose and send the final response when the upstream
  answer comes back (the revisit node of multi-tier trees).
"""

from __future__ import annotations

from ..service import (
    EpollQueue,
    ExecutionPath,
    Microservice,
    MultiThreadedModel,
    PathSelector,
    SingleQueue,
    Stage,
)
from . import calibration as cal
from .base import World, det_time, stage_time

EPOLL, SERVE, PROXY, RESPOND = range(4)

SERVE_PATH = "serve"
PROXY_PATH = "proxy"
RESPOND_PATH = "respond"


def make_nginx(
    world: World,
    machine_name: str,
    name: str = "nginx0",
    processes: int = 8,
    epoll_events: int = 16,
    tier: str = "nginx",
    batching: bool = True,
) -> Microservice:
    """Build and register one NGINX instance with *processes* worker
    processes, each pinned to a dedicated core (SSIV-A).

    ``batching=False`` is an ablation switch: the epoll stage serves one
    job per invocation (its base cost is charged to every request), the
    single-queue failure mode of BigHouse."""
    realism = world.realism
    machine = world.cluster.machine(machine_name)
    cores = machine.allocate(name, processes)

    epoll_queue = (
        EpollQueue(per_connection_limit=epoll_events)
        if batching
        else SingleQueue(batch_limit=1)
    )
    stages = [
        Stage(
            "epoll",
            EPOLL,
            epoll_queue,
            base=det_time(cal.NGINX_EPOLL_BASE, realism),
            per_job=det_time(cal.NGINX_EPOLL_PER_EVENT, realism),
            batching=True,
        ),
        Stage(
            "handler_processing",
            SERVE,
            SingleQueue(),
            base=stage_time(cal.NGINX_HANDLER, 4, realism),
        ),
        Stage(
            "proxy_processing",
            PROXY,
            SingleQueue(),
            base=stage_time(cal.NGINX_PROXY_HANDLER, 4, realism),
        ),
        Stage(
            "response_processing",
            RESPOND,
            SingleQueue(),
            base=stage_time(cal.NGINX_RESPOND, 4, realism),
        ),
    ]
    selector = PathSelector(
        [
            ExecutionPath(0, SERVE_PATH, [EPOLL, SERVE]),
            ExecutionPath(1, PROXY_PATH, [EPOLL, PROXY]),
            ExecutionPath(2, RESPOND_PATH, [EPOLL, RESPOND]),
        ]
    )
    # NGINX worker processes are single-threaded event loops: one
    # process per core, context switching negligible under pinning.
    instance = Microservice(
        name,
        world.sim,
        stages,
        selector,
        cores,
        model=MultiThreadedModel(processes, context_switch=1e-6),
        machine_name=machine_name,
        tier=tier,
    )
    world.deployment.add_instance(instance)
    return instance
