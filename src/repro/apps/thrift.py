"""Apache Thrift RPC server models (paper SSIV-C / SSIV-D).

Two flavours share the stage skeleton (epoll -> processing -> send):

* the **echo server** of the RPC validation — "the server responds with
  a 'Hello World' message to each request. Given the lack of
  application logic in this case, all time goes towards processing the
  RPC request";
* the **logic service** used by the social network's business tiers
  (frontend, user/post/media services), with heavier processing and a
  light ``respond`` path for composing answers from upstream replies.
"""

from __future__ import annotations

from ..service import (
    EpollQueue,
    ExecutionPath,
    Microservice,
    MultiThreadedModel,
    PathSelector,
    SingleQueue,
    Stage,
)
from . import calibration as cal
from .base import World, det_time, stage_time

EPOLL, RPC, LOGIC, SEND = range(4)

RPC_PATH = "rpc"
LOGIC_PATH = "logic"
RESPOND_PATH = "respond"


def make_thrift(
    world: World,
    machine_name: str,
    name: str = "thrift0",
    threads: int = 1,
    tier: str = "thrift",
    logic_mean: float = cal.THRIFT_LOGIC_PROCESSING,
) -> Microservice:
    """Build and register a Thrift server instance.

    Paths: ``rpc`` (echo handling), ``logic`` (business-logic
    processing for social-network tiers), ``respond`` (forward an
    upstream reply onward with minimal work).
    """
    realism = world.realism
    machine = world.cluster.machine(machine_name)
    cores = machine.allocate(name, threads)

    stages = [
        Stage(
            "epoll",
            EPOLL,
            EpollQueue(per_connection_limit=16),
            base=det_time(cal.THRIFT_EPOLL_BASE, realism),
            per_job=det_time(cal.THRIFT_EPOLL_PER_EVENT, realism),
            batching=True,
        ),
        Stage(
            "rpc_processing",
            RPC,
            SingleQueue(),
            base=stage_time(cal.THRIFT_PROCESSING, 4, realism),
        ),
        Stage(
            "logic_processing",
            LOGIC,
            SingleQueue(),
            base=stage_time(logic_mean, 4, realism),
        ),
        Stage(
            "socket_send",
            SEND,
            SingleQueue(),
            base=det_time(cal.THRIFT_SOCKET_SEND, realism),
        ),
    ]
    selector = PathSelector(
        [
            ExecutionPath(0, RPC_PATH, [EPOLL, RPC, SEND]),
            ExecutionPath(1, LOGIC_PATH, [EPOLL, LOGIC, SEND]),
            ExecutionPath(2, RESPOND_PATH, [EPOLL, SEND]),
        ]
    )
    instance = Microservice(
        name,
        world.sim,
        stages,
        selector,
        cores,
        model=MultiThreadedModel(threads, context_switch=2e-6),
        machine_name=machine_name,
        tier=tier,
    )
    world.deployment.add_instance(instance)
    return instance
