"""Shared plumbing for the application model library."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..distributions import Deterministic, Distribution, Erlang
from ..engine import Simulator
from ..hardware import Cluster, Machine, NetworkFabric
from ..service import Microservice, SimpleModel, SingleQueue, Stage
from ..service import ExecutionPath, PathSelector
from ..testbed import RealismConfig
from ..topology import Deployment, Dispatcher
from . import calibration as cal


def stage_time(
    mean: float,
    shape: int = 4,
    realism: Optional[RealismConfig] = None,
) -> Distribution:
    """An Erlang-*shape* stage time around *mean* (cv = 1/sqrt(shape)),
    optionally wrapped in the real-system noise model."""
    dist: Distribution = Erlang(shape, mean)
    if realism is not None:
        dist = realism.wrap(dist)
    return dist


def det_time(
    value: float,
    realism: Optional[RealismConfig] = None,
) -> Distribution:
    """A (nearly) deterministic stage time, optionally noise-wrapped."""
    dist: Distribution = Deterministic(value)
    if realism is not None:
        dist = realism.wrap(dist)
    return dist


def rate_time(
    value: float,
    realism: Optional[RealismConfig] = None,
) -> Distribution:
    """A deterministic per-unit rate (e.g. seconds per byte).

    Rates are multiplied by a count downstream, so they may only carry
    *multiplicative* jitter — an additive interference stall on a
    per-byte rate would be scaled by the message size into absurdity.
    """
    dist: Distribution = Deterministic(value)
    if realism is not None:
        dist = realism.wrap_rate(dist)
    return dist


@dataclass
class World:
    """A runnable simulated system: hardware + deployment + dispatcher.

    Builders return one of these; experiments attach clients to
    ``dispatcher`` and run ``sim``.
    """

    sim: Simulator
    cluster: Cluster
    deployment: Deployment
    dispatcher: Dispatcher
    realism: Optional[RealismConfig] = None
    labels: Dict[str, str] = field(default_factory=dict)
    fault_injector: Optional[object] = None  # repro.faults.FaultInjector

    def instances(self, tier: str) -> List[Microservice]:
        return self.deployment.instances(tier)

    def instance(self, tier: str, index: int = 0) -> Microservice:
        return self.deployment.instances(tier)[index]


def new_world(
    network: Optional[NetworkFabric] = None,
    seed: int = 0,
    realism: Optional[RealismConfig] = None,
) -> World:
    """Empty world: simulator, cluster, deployment, dispatcher wired up."""
    sim = Simulator(seed=seed)
    cluster = Cluster(network)
    deployment = Deployment()
    dispatcher = Dispatcher(sim, deployment, cluster.network)
    return World(sim, cluster, deployment, dispatcher, realism)


def add_client_machine(world: World, name: str = "client") -> Machine:
    """A dedicated client machine (the paper runs wrk2 on its own
    server); it needs no netproc — client-side cost is not under study."""
    return world.cluster.add_machine(Machine(name, 16))


def make_netproc(
    world: World,
    machine_name: str,
    cores: int = cal.NETPROC_DEFAULT_CORES,
    name: Optional[str] = None,
    kernel_bypass: bool = False,
) -> Microservice:
    """Deploy the per-machine network-processing (soft_irq) service.

    A single-stage simple-model service whose cost is per message and
    per byte; every cross-machine message to or from *machine_name*
    passes through it (paper SSIII-B).

    ``kernel_bypass=True`` models DPDK-style user-level networking —
    the acceleration technique the paper defers to future work: the
    same dedicated cores run a poll-mode driver with roughly an order
    of magnitude less CPU per message, which removes the interrupt
    ceiling from the Fig 8 load-balancing scenario.
    """
    name = name or f"netproc@{machine_name}"
    machine = world.cluster.machine(machine_name)
    core_set = machine.allocate(name, cores)
    per_message = cal.DPDK_PER_MESSAGE if kernel_bypass else cal.NETPROC_PER_MESSAGE
    per_byte = cal.DPDK_PER_BYTE if kernel_bypass else cal.NETPROC_PER_BYTE
    stage = Stage(
        "dpdk_poll" if kernel_bypass else "soft_irq",
        0,
        SingleQueue(batch_limit=32 if kernel_bypass else 4),
        per_job=det_time(per_message, world.realism),
        per_byte=rate_time(per_byte, world.realism),
        batching=True,
    )
    selector = PathSelector([ExecutionPath(0, "irq", [0])])
    instance = Microservice(
        name,
        world.sim,
        [stage],
        selector,
        core_set,
        model=SimpleModel(),
        machine_name=machine_name,
        tier="netproc",
    )
    world.deployment.set_netproc(machine_name, instance)
    return instance
