"""The memcached model (paper Listing 1 / Fig 1's JSON example).

Stages: ``epoll`` (per-connection subqueues, batching) ->
``socket_read`` (per-connection, batching, cost proportional to bytes
read) -> ``memcached_processing`` (single queue) -> ``socket_send``.
Two deterministic execution paths, read and write, over the same stage
sequence — "only used to distinguish between different processing time
distributions" (SSIII-B).
"""

from __future__ import annotations

from ..service import (
    EpollQueue,
    ExecutionPath,
    Microservice,
    MultiThreadedModel,
    PathSelector,
    SingleQueue,
    SocketQueue,
    Stage,
)
from . import calibration as cal
from .base import World, det_time, rate_time, stage_time

#: Stage ids, mirroring Listing 1.
EPOLL, SOCKET_READ, PROCESSING_READ, PROCESSING_WRITE, SOCKET_SEND = range(5)

READ_PATH = "memcached_read"
WRITE_PATH = "memcached_write"


def make_memcached(
    world: World,
    machine_name: str,
    name: str = "memcached0",
    threads: int = 4,
    epoll_events: int = 16,
    read_batch: int = 16,
    tier: str = "memcached",
    batching: bool = True,
) -> Microservice:
    """Build and register one memcached instance with *threads* worker
    threads pinned to as many dedicated cores.

    ``batching=False`` ablates batch amortisation: epoll and socket_read
    serve one job per invocation, charging their base costs to every
    request."""
    realism = world.realism
    machine = world.cluster.machine(machine_name)
    cores = machine.allocate(name, threads)

    epoll_queue = (
        EpollQueue(per_connection_limit=epoll_events)
        if batching
        else SingleQueue(batch_limit=1)
    )
    read_queue = (
        SocketQueue(batch_limit=read_batch)
        if batching
        else SingleQueue(batch_limit=1)
    )
    stages = [
        Stage(
            "epoll",
            EPOLL,
            epoll_queue,
            base=det_time(cal.MEMCACHED_EPOLL_BASE, realism),
            per_job=det_time(cal.MEMCACHED_EPOLL_PER_EVENT, realism),
            batching=True,
        ),
        Stage(
            "socket_read",
            SOCKET_READ,
            read_queue,
            base=det_time(cal.MEMCACHED_SOCKET_READ_BASE, realism),
            per_byte=rate_time(cal.MEMCACHED_SOCKET_READ_PER_BYTE, realism),
            batching=True,
        ),
        Stage(
            "memcached_processing",
            PROCESSING_READ,
            SingleQueue(),
            base=stage_time(cal.MEMCACHED_READ_PROCESSING, 4, realism),
        ),
        Stage(
            "memcached_write_processing",
            PROCESSING_WRITE,
            SingleQueue(),
            base=stage_time(cal.MEMCACHED_WRITE_PROCESSING, 4, realism),
        ),
        Stage(
            "socket_send",
            SOCKET_SEND,
            SingleQueue(),
            base=det_time(cal.MEMCACHED_SOCKET_SEND, realism),
        ),
    ]
    selector = PathSelector(
        [
            ExecutionPath(
                0, READ_PATH, [EPOLL, SOCKET_READ, PROCESSING_READ, SOCKET_SEND]
            ),
            ExecutionPath(
                1, WRITE_PATH, [EPOLL, SOCKET_READ, PROCESSING_WRITE, SOCKET_SEND]
            ),
        ]
    )
    instance = Microservice(
        name,
        world.sim,
        stages,
        selector,
        cores,
        model=MultiThreadedModel(threads),
        machine_name=machine_name,
        tier=tier,
    )
    world.deployment.add_instance(instance)
    return instance
