"""The MongoDB model.

Paper SSIII-B names MongoDB as the example needing *probabilistic*
execution-path selection: "a query could be either a cache hit that
only accesses memory, or a cache miss that results in disk I/O. The
probability for each path in that case is a function of MongoDB's
working set size and allocated memory."

The miss path carries an I/O phase on the instance's shared disk
device, which is what makes the 3-tier application disk-bound
(SSIV-A).
"""

from __future__ import annotations

from ..distributions import Exponential
from ..service import (
    EpollQueue,
    ExecutionPath,
    IoDevice,
    Microservice,
    MultiThreadedModel,
    PathSelector,
    SingleQueue,
    Stage,
)
from . import calibration as cal
from .base import World, det_time, stage_time

EPOLL, HIT_QUERY, MISS_QUERY, SOCKET_SEND = range(4)

HIT_PATH = "mongo_hit"
MISS_PATH = "mongo_miss"


def make_mongodb(
    world: World,
    machine_name: str,
    name: str = "mongodb0",
    threads: int = 8,
    cores: int = 2,
    miss_probability: float = cal.MONGODB_CACHE_MISS,
    disk_channels: int = cal.MONGODB_DISK_CHANNELS,
    disk_read_mean: float = cal.MONGODB_DISK_READ_MEAN,
    tier: str = "mongodb",
) -> Microservice:
    """Build and register one MongoDB instance.

    MongoDB is thread-per-connection and I/O bound: more threads than
    cores, so compute multiplexes while most threads block on the disk
    (*disk_channels* concurrent device operations).
    """
    realism = world.realism
    machine = world.cluster.machine(machine_name)
    core_set = machine.allocate(name, cores)
    disk = IoDevice(f"{name}/disk", world.sim, channels=disk_channels)

    stages = [
        Stage(
            "epoll",
            EPOLL,
            EpollQueue(per_connection_limit=16),
            base=det_time(cal.MONGODB_EPOLL_BASE, realism),
            per_job=det_time(cal.MONGODB_EPOLL_PER_EVENT, realism),
            batching=True,
        ),
        Stage(
            "query_memory",
            HIT_QUERY,
            SingleQueue(),
            base=stage_time(cal.MONGODB_HIT_CPU, 4, realism),
        ),
        Stage(
            "query_disk",
            MISS_QUERY,
            SingleQueue(),
            base=stage_time(cal.MONGODB_QUERY_CPU, 4, realism),
            io=Exponential(disk_read_mean),
        ),
        Stage(
            "socket_send",
            SOCKET_SEND,
            SingleQueue(),
            base=det_time(cal.MONGODB_SOCKET_SEND, realism),
        ),
    ]
    selector = PathSelector(
        [
            ExecutionPath(0, HIT_PATH, [EPOLL, HIT_QUERY, SOCKET_SEND]),
            ExecutionPath(1, MISS_PATH, [EPOLL, MISS_QUERY, SOCKET_SEND]),
        ],
        probabilities={0: 1.0 - miss_probability, 1: miss_probability},
    )
    instance = Microservice(
        name,
        world.sim,
        stages,
        selector,
        core_set,
        model=MultiThreadedModel(threads, context_switch=2e-6),
        machine_name=machine_name,
        tier=tier,
        io_device=disk,
    )
    world.deployment.add_instance(instance)
    return instance
