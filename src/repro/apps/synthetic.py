"""Synthetic microservice-graph generation.

The paper motivates simulation with production dependency graphs of
hundreds of microservices (Fig 1: Netflix, Twitter, Amazon) — far
beyond what the evaluation's hand-built applications exercise. This
module generates random-but-plausible graphs at that scale: layered
DAGs with configurable width, depth, fan-out, and service-time
heterogeneity, deployed over a cluster with shared interrupt
processing. Used by the scalability study and available to users who
want "an application shaped like production" without hand-writing
hundreds of path nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..engine import RandomStreams
from ..errors import ConfigError
from ..hardware import Machine, NetworkFabric
from ..service import (
    ExecutionPath,
    Microservice,
    MultiThreadedModel,
    PathSelector,
    SingleQueue,
    Stage,
)
from ..testbed import RealismConfig
from ..topology import PathNode, PathTree
from .base import World, add_client_machine, make_netproc, new_world, stage_time


@dataclass
class GraphShape:
    """Knobs of the generated application graph.

    *layers* tiers deep, each layer *width* services wide; every service
    calls *fanout* services of the next layer (chosen randomly but
    fixed at build time, like static service dependencies). Mean
    per-service processing time is log-uniform between *min_service*
    and *max_service* — production graphs mix microsecond caches with
    millisecond logic tiers.
    """

    layers: int = 4
    width: int = 4
    fanout: int = 2
    min_service: float = 50e-6
    max_service: float = 500e-6
    threads_per_service: int = 2
    machines: int = 4

    def validate(self) -> None:
        if self.layers < 1 or self.width < 1:
            raise ConfigError("graph needs layers >= 1 and width >= 1")
        if not 1 <= self.fanout <= self.width:
            raise ConfigError(
                f"fanout must be in [1, width={self.width}], got {self.fanout}"
            )
        if not 0 < self.min_service <= self.max_service:
            raise ConfigError("need 0 < min_service <= max_service")
        if self.machines < 1:
            raise ConfigError("need >= 1 machine")

    @property
    def total_services(self) -> int:
        return self.layers * self.width + 1  # + frontend


def synthetic_graph(
    shape: Optional[GraphShape] = None,
    seed: int = 0,
    realism: Optional[RealismConfig] = None,
    network: Optional[NetworkFabric] = None,
    graph_seed: Optional[int] = None,
) -> World:
    """Build a random layered microservice application.

    The request enters a frontend, which fans out into layer 0; every
    visited service fans out to its dependencies in the next layer;
    responses synchronise back at the frontend (full fan-in), matching
    the paper's observation that "typical dependency graphs ... involve
    several hundred microservices" with deep fan-out chains.

    *seed* drives the simulation's stochastics; *graph_seed* (default:
    same as *seed*) drives the generated topology and service-time
    assignment. Fix *graph_seed* and vary *seed* to take independent
    measurements of ONE application rather than of a fresh random graph
    per run.
    """
    shape = shape or GraphShape()
    shape.validate()
    streams = RandomStreams(seed if graph_seed is None else graph_seed)
    rng = streams.stream("synthetic-graph")

    world = new_world(network, seed, realism)
    add_client_machine(world)
    cores_needed = shape.total_services * shape.threads_per_service + 4
    per_machine = int(np.ceil(cores_needed / shape.machines))
    for m in range(shape.machines):
        world.cluster.add_machine(Machine(f"node{m}", per_machine + 4))

    def make_service(name: str, machine: str, mean: float) -> Microservice:
        cores = world.cluster.machine(machine).allocate(
            name, shape.threads_per_service
        )
        stages = [
            Stage(
                "process", 0, SingleQueue(),
                base=stage_time(mean, 4, world.realism),
            ),
        ]
        selector = PathSelector([ExecutionPath(0, "only", [0])])
        instance = Microservice(
            name, world.sim, stages, selector, cores,
            model=MultiThreadedModel(shape.threads_per_service),
            machine_name=machine, tier=name,
        )
        world.deployment.add_instance(instance)
        return instance

    def sample_mean() -> float:
        log_lo, log_hi = np.log(shape.min_service), np.log(shape.max_service)
        return float(np.exp(rng.uniform(log_lo, log_hi)))

    # Frontend plus layers x width services, round-robined over machines.
    machine_of = lambda i: f"node{i % shape.machines}"
    make_service("frontend", machine_of(0), 100e-6)
    names: List[List[str]] = []
    idx = 1
    for layer in range(shape.layers):
        row = []
        for w in range(shape.width):
            name = f"svc_l{layer}_{w}"
            make_service(name, machine_of(idx), sample_mean())
            row.append(name)
            idx += 1
        names.append(row)
    for m in range(shape.machines):
        make_netproc(world, f"node{m}")

    # Static dependency edges: each service calls `fanout` services of
    # the next layer.
    tree = PathTree("synthetic")
    tree.add_node(PathNode("frontend", "frontend"))

    def add_call_nodes(parent_node: str, layer: int) -> List[str]:
        """Recursively materialise the call tree below *parent_node*."""
        if layer >= shape.layers:
            return [parent_node]
        targets = rng.choice(shape.width, size=shape.fanout, replace=False)
        leaves: List[str] = []
        for t in targets:
            service = names[layer][int(t)]
            node_name = f"{parent_node}->{service}"
            tree.add_node(PathNode(node_name, service))
            tree.add_edge(parent_node, node_name)
            leaves.extend(add_call_nodes(node_name, layer + 1))
        return leaves

    leaves = add_call_nodes("frontend", 0)
    tree.add_node(
        PathNode("frontend_join", "frontend", same_instance_as="frontend")
    )
    for leaf in leaves:
        tree.add_edge(leaf, "frontend_join")
    world.dispatcher.add_tree(tree)
    world.labels.update(
        scenario="synthetic",
        config=(
            f"layers={shape.layers} width={shape.width} "
            f"fanout={shape.fanout} nodes={len(tree)}"
        ),
    )
    return world
