"""Application model library: the microservices of the paper's
evaluation (NGINX, memcached, MongoDB, Thrift, the Social Network) and
builders for every end-to-end scenario (2-/3-tier, load balancing,
fanout, Thrift echo, social network)."""

from . import calibration
from .base import World, add_client_machine, make_netproc, new_world
from .builders import (
    default_value_sizes,
    fanout,
    load_balanced,
    single_memcached,
    single_nginx,
    social_network,
    three_tier,
    thrift_echo,
    two_tier,
)
from .memcached import make_memcached
from .social_ops import add_social_operations
from .synthetic import GraphShape, synthetic_graph
from .mongodb import make_mongodb
from .nginx import make_nginx
from .thrift import make_thrift

__all__ = [
    "World",
    "add_client_machine",
    "add_social_operations",
    "calibration",
    "default_value_sizes",
    "fanout",
    "load_balanced",
    "make_memcached",
    "make_mongodb",
    "make_netproc",
    "make_nginx",
    "make_thrift",
    "new_world",
    "single_memcached",
    "single_nginx",
    "GraphShape",
    "social_network",
    "synthetic_graph",
    "three_tier",
    "thrift_echo",
    "two_tier",
]
