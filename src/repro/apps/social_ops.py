"""Additional social-network operations.

The paper's social network "implements a unidirectional, broadcast-
style social network, where users can follow each other, post messages,
reply publicly or privately to another user, and browse information
about a given user", but evaluates only the read-post flow "for
simplicity" (SSIV-D). This module models the remaining operations as
typed path trees over the same deployment, so a mixed workload can
exercise the full service:

* ``read_post``    — the paper's flow (built by
  :func:`repro.apps.builders.social_network`);
* ``compose_post`` — frontend -> post service -> post MongoDB write
  (with write-through to the post cache) -> media service (fan-out with
  the user service, which validates the author);
* ``follow``       — frontend -> user service -> user MongoDB write;
* ``read_timeline`` — frontend -> post service -> post cache/DB, then
  the media service for embedded media.

``add_social_operations`` registers these trees with a social-network
world's dispatcher under their request types and returns a
:class:`~repro.workload.RequestMix` with a plausible operation mix.
"""

from __future__ import annotations

from ..topology import NodeOp, PathNode, PathTree
from ..workload import RequestMix, RequestType
from . import memcached as mc
from . import thrift
from .base import World

#: Default operation mix: browsing dominates, writes are rare — the
#: usual read-heavy social workload.
DEFAULT_MIX = {
    "read_post": 0.60,
    "read_timeline": 0.25,
    "compose_post": 0.10,
    "follow": 0.05,
}


def _frontend_entry(tree: PathTree) -> None:
    tree.add_node(
        PathNode(
            "frontend", "frontend",
            path_name=thrift.RPC_PATH, on_enter=NodeOp.block(),
        )
    )


def _frontend_exit(tree: PathTree, parent: str) -> None:
    tree.add_node(
        PathNode(
            "frontend_respond", "frontend",
            path_name=thrift.RPC_PATH,
            same_instance_as="frontend",
            on_leave=NodeOp.unblock("frontend"),
        )
    )
    tree.add_edge(parent, "frontend_respond")


def compose_post_tree() -> PathTree:
    """Write path: validate the author (user service) in parallel with
    storing the post (post service -> MongoDB, write-through cache),
    then register any media."""
    tree = PathTree("compose_post")
    _frontend_entry(tree)
    # Author validation branch.
    tree.add_node(
        PathNode("user_svc", "user_service", path_name=thrift.LOGIC_PATH)
    )
    tree.add_node(PathNode("user_mc", "user_memcached", path_name=mc.READ_PATH))
    tree.add_edge("frontend", "user_svc")
    tree.add_edge("user_svc", "user_mc")
    # Post storage branch.
    tree.add_node(
        PathNode("post_svc", "post_service", path_name=thrift.LOGIC_PATH)
    )
    tree.add_node(PathNode("post_db", "post_mongodb"))
    tree.add_node(
        PathNode("post_cache_fill", "post_memcached", path_name=mc.WRITE_PATH)
    )
    tree.add_edge("frontend", "post_svc")
    tree.add_edge("post_svc", "post_db")
    tree.add_edge("post_db", "post_cache_fill")
    # Join the branches at the frontend, then media registration.
    tree.add_node(
        PathNode(
            "frontend_join", "frontend",
            path_name=thrift.RESPOND_PATH, same_instance_as="frontend",
        )
    )
    tree.add_edge("user_mc", "frontend_join")
    tree.add_edge("post_cache_fill", "frontend_join")
    tree.add_node(
        PathNode("media_svc", "media_service", path_name=thrift.LOGIC_PATH)
    )
    tree.add_node(
        PathNode("media_db", "media_mongodb")
    )
    tree.add_edge("frontend_join", "media_svc")
    tree.add_edge("media_svc", "media_db")
    _frontend_exit(tree, "media_db")
    return tree


def follow_tree() -> PathTree:
    """Follow a user: a small write against the user store."""
    tree = PathTree("follow")
    _frontend_entry(tree)
    tree.add_node(
        PathNode("user_svc", "user_service", path_name=thrift.LOGIC_PATH)
    )
    tree.add_node(PathNode("user_db", "user_mongodb"))
    tree.add_node(
        PathNode("user_cache_fill", "user_memcached", path_name=mc.WRITE_PATH)
    )
    tree.add_edge("frontend", "user_svc")
    tree.add_edge("user_svc", "user_db")
    tree.add_edge("user_db", "user_cache_fill")
    _frontend_exit(tree, "user_cache_fill")
    return tree


def read_timeline_tree() -> PathTree:
    """Browse recent posts: post store then media for embeds."""
    tree = PathTree("read_timeline")
    _frontend_entry(tree)
    tree.add_node(
        PathNode("post_svc", "post_service", path_name=thrift.LOGIC_PATH)
    )
    tree.add_node(PathNode("post_mc", "post_memcached", path_name=mc.READ_PATH))
    tree.add_node(PathNode("post_db", "post_mongodb"))
    tree.add_edge("frontend", "post_svc")
    tree.add_edge("post_svc", "post_mc")
    tree.add_edge("post_mc", "post_db")
    tree.add_node(
        PathNode("media_svc", "media_service", path_name=thrift.LOGIC_PATH)
    )
    tree.add_node(PathNode("media_mc", "media_memcached", path_name=mc.READ_PATH))
    tree.add_edge("post_db", "media_svc")
    tree.add_edge("media_svc", "media_mc")
    _frontend_exit(tree, "media_mc")
    return tree


def add_social_operations(world: World) -> RequestMix:
    """Register compose_post / follow / read_timeline trees on a
    social-network world and return the default typed request mix.

    The world must come from :func:`repro.apps.social_network`, whose
    read-post tree is registered as the untyped default; the new trees
    are routed by request type, so untyped requests keep the paper's
    behaviour.
    """
    dispatcher = world.dispatcher
    dispatcher.add_tree(compose_post_tree(), request_type="compose_post")
    dispatcher.add_tree(follow_tree(), request_type="follow")
    dispatcher.add_tree(read_timeline_tree(), request_type="read_timeline")
    return RequestMix(
        [
            RequestType("read_post", DEFAULT_MIX["read_post"], 256),
            RequestType("read_timeline", DEFAULT_MIX["read_timeline"], 1024),
            RequestType("compose_post", DEFAULT_MIX["compose_post"], 512),
            RequestType("follow", DEFAULT_MIX["follow"], 64),
        ]
    )
