"""End-to-end application builders for every evaluation scenario.

Each function assembles the full world of one paper experiment —
cluster, instance deployment, network-processing services, connection
pools, and inter-microservice path trees — and returns a
:class:`~repro.apps.base.World` ready for a client. Passing a
:class:`~repro.testbed.RealismConfig` builds the "real system"
counterpart instead (see DESIGN.md SS1).
"""

from __future__ import annotations

from typing import Optional

from ..distributions import Exponential
from ..hardware import Machine, NetworkFabric
from ..testbed import RealismConfig
from ..topology import NodeOp, PathNode, PathTree
from . import calibration as cal
from . import memcached as mc
from . import mongodb as mongo
from . import nginx
from . import thrift
from .base import World, add_client_machine, make_netproc, new_world

CLIENT_MACHINE = "client"


def _server(world: World, name: str = "server0", cores: int = 40) -> Machine:
    """A Table II-class server with DVFS."""
    machine = Machine.table2(name)
    if cores != 40:
        machine = Machine(name, cores, machine.ladder)
    return world.cluster.add_machine(machine)


# ---------------------------------------------------------------------------
# Fig 4(a) / Fig 5: 2-tier NGINX -> memcached
# ---------------------------------------------------------------------------

def two_tier(
    nginx_processes: int = 8,
    memcached_threads: int = 4,
    seed: int = 0,
    realism: Optional[RealismConfig] = None,
    network: Optional[NetworkFabric] = None,
    client_connections: int = cal.WRK2_CONNECTIONS,
    interrupt_cores: int = cal.NETPROC_DEFAULT_CORES,
    epoll_events: int = 16,
    http_blocking: bool = True,
    batching: bool = True,
) -> World:
    """The NGINX-memcached application of Fig 4(a).

    NGINX receives the client request over http/1.1 (blocking the
    receive side of the connection while a request is in flight),
    queries memcached for the key, and returns the ``<key,value>``
    pair. Both tiers are colocated on one Table II server with pinned
    cores, as in SSIV-A.

    Ablation knobs: *batching* (False makes epoll/socket_read serve one
    job per invocation — base costs charged per request, the BigHouse
    failure mode), *interrupt_cores* (0 removes the shared
    network-processing service), *http_blocking* (False drops the
    per-connection block/unblock ops).
    """
    world = new_world(network, seed, realism)
    add_client_machine(world)
    _server(world)
    nginx.make_nginx(
        world, "server0", "nginx0", processes=nginx_processes,
        epoll_events=epoll_events, batching=batching,
    )
    mc.make_memcached(
        world, "server0", "memcached0", threads=memcached_threads,
        epoll_events=epoll_events,
        read_batch=max(1, min(16, epoll_events)),
        batching=batching,
    )
    if interrupt_cores > 0:
        make_netproc(world, "server0", cores=interrupt_cores)
    world.deployment.set_pool("nginx", client_connections)
    world.deployment.set_pool("memcached", 16)

    tree = PathTree("two_tier")
    tree.chain(
        PathNode(
            "nginx", "nginx",
            path_name=nginx.SERVE_PATH,  # full HTTP handling at entry
            on_enter=NodeOp.block() if http_blocking else None,
        ),
        PathNode("memcached", "memcached", path_name=mc.READ_PATH),
        PathNode(
            "nginx_resp", "nginx",
            path_name=nginx.RESPOND_PATH,
            same_instance_as="nginx",
            on_leave=NodeOp.unblock("nginx") if http_blocking else None,
        ),
    )
    world.dispatcher.add_tree(tree)
    world.labels.update(
        scenario="two_tier",
        config=f"nginx={nginx_processes}p memcached={memcached_threads}t",
    )
    return world


# ---------------------------------------------------------------------------
# Fig 4(b) / Fig 6: 3-tier NGINX -> memcached -> MongoDB
# ---------------------------------------------------------------------------

def three_tier(
    nginx_processes: int = 8,
    memcached_threads: int = 2,
    cache_hit: float = cal.THREE_TIER_CACHE_HIT,
    mongo_miss: float = 0.8,
    seed: int = 0,
    realism: Optional[RealismConfig] = None,
    network: Optional[NetworkFabric] = None,
    client_connections: int = cal.WRK2_CONNECTIONS,
) -> World:
    """The 3-tier application of Fig 4(b).

    On a memcached hit the request returns directly; on a miss, NGINX
    queries MongoDB and — write-allocate — stores the value back into
    memcached before responding (SSIV-A). The miss path's MongoDB disk
    reads make the application disk-bound. *cache_hit* is the memcached
    hit ratio; *mongo_miss* the probability a MongoDB query misses its
    buffer cache and pays a disk read (the probabilistic execution path
    of SSIII-B).
    """
    if not 0.0 <= cache_hit <= 1.0:
        raise ValueError(f"cache_hit must be in [0,1], got {cache_hit!r}")
    world = new_world(network, seed, realism)
    add_client_machine(world)
    _server(world)
    nginx.make_nginx(world, "server0", "nginx0", processes=nginx_processes)
    mc.make_memcached(world, "server0", "memcached0", threads=memcached_threads)
    mongo.make_mongodb(
        world, "server0", "mongodb0", miss_probability=mongo_miss
    )
    make_netproc(world, "server0")
    world.deployment.set_pool("nginx", client_connections)
    world.deployment.set_pool("memcached", 16)
    world.deployment.set_pool("mongodb", 16)

    hit_tree = PathTree("three_tier_hit")
    hit_tree.chain(
        PathNode(
            "nginx", "nginx",
            path_name=nginx.SERVE_PATH, on_enter=NodeOp.block(),
        ),
        PathNode("memcached", "memcached", path_name=mc.READ_PATH),
        PathNode(
            "nginx_resp", "nginx",
            path_name=nginx.RESPOND_PATH,
            same_instance_as="nginx",
            on_leave=NodeOp.unblock("nginx"),
        ),
    )
    miss_tree = PathTree("three_tier_miss")
    miss_tree.chain(
        PathNode(
            "nginx", "nginx",
            path_name=nginx.SERVE_PATH, on_enter=NodeOp.block(),
        ),
        PathNode("memcached", "memcached", path_name=mc.READ_PATH),
        PathNode("mongodb", "mongodb"),
        PathNode(
            "memcached_write", "memcached",
            path_name=mc.WRITE_PATH,
            same_instance_as="memcached",
        ),
        PathNode(
            "nginx_resp", "nginx",
            path_name=nginx.RESPOND_PATH,
            same_instance_as="nginx",
            on_leave=NodeOp.unblock("nginx"),
        ),
    )
    world.dispatcher.add_tree(hit_tree, probability=cache_hit)
    world.dispatcher.add_tree(miss_tree, probability=1.0 - cache_hit)
    world.labels.update(
        scenario="three_tier",
        config=(
            f"nginx={nginx_processes}p memcached={memcached_threads}t "
            f"hit={cache_hit}"
        ),
    )
    return world


# ---------------------------------------------------------------------------
# Fig 7 / Fig 8: load balancing
# ---------------------------------------------------------------------------

def load_balanced(
    scale_out: int = 4,
    proxy_processes: int = 8,
    interrupt_cores: int = cal.NETPROC_DEFAULT_CORES,
    seed: int = 0,
    realism: Optional[RealismConfig] = None,
    network: Optional[NetworkFabric] = None,
    client_connections: int = cal.WRK2_CONNECTIONS,
    kernel_bypass: bool = False,
) -> World:
    """NGINX proxy round-robining over *scale_out* single-core NGINX
    webservers (Fig 7). All instances share one server whose interrupt
    cores are the contended resource at high scale-out (SSIV-B).
    """
    if scale_out < 1:
        raise ValueError(f"scale_out must be >= 1, got {scale_out}")
    world = new_world(network, seed, realism)
    add_client_machine(world)
    _server(world)
    nginx.make_nginx(world, "server0", "proxy0", processes=proxy_processes)
    for i in range(scale_out):
        nginx.make_nginx(
            world, "server0", f"web{i}", processes=1, tier="webserver"
        )
    world.deployment.set_pool("nginx", client_connections)
    world.deployment.set_pool("webserver", 8)
    if interrupt_cores > 0:
        make_netproc(
            world, "server0", cores=interrupt_cores,
            kernel_bypass=kernel_bypass,
        )

    tree = PathTree("load_balanced", response_bytes=cal.FANOUT_PAGE_BYTES)
    tree.chain(
        PathNode(
            "proxy", "nginx",
            path_name=nginx.PROXY_PATH, on_enter=NodeOp.block(),
        ),
        PathNode(
            "web", "webserver",
            path_name=nginx.SERVE_PATH,
            request_bytes=cal.FANOUT_PAGE_BYTES,
        ),
        PathNode(
            "proxy_resp", "nginx",
            path_name=nginx.RESPOND_PATH,
            same_instance_as="proxy",
            on_leave=NodeOp.unblock("proxy"),
        ),
    )
    world.dispatcher.add_tree(tree)
    world.labels.update(scenario="load_balanced", config=f"scale_out={scale_out}")
    return world


# ---------------------------------------------------------------------------
# Fig 9 / Fig 10: request fanout
# ---------------------------------------------------------------------------

def fanout(
    fanout_factor: int = 4,
    proxy_processes: int = 8,
    interrupt_cores: int = cal.NETPROC_DEFAULT_CORES,
    seed: int = 0,
    realism: Optional[RealismConfig] = None,
    network: Optional[NetworkFabric] = None,
    client_connections: int = cal.WRK2_CONNECTIONS,
) -> World:
    """NGINX proxy fanning every request out to *fanout_factor* leaf
    NGINX servers; the response returns only after ALL leaves answered
    (Fig 9). Each leaf gets 1 core and 1 thread; 4 cores are dedicated
    to network interrupts (SSIV-B).
    """
    if fanout_factor < 1:
        raise ValueError(f"fanout_factor must be >= 1, got {fanout_factor}")
    world = new_world(network, seed, realism)
    add_client_machine(world)
    _server(world)
    nginx.make_nginx(world, "server0", "proxy0", processes=proxy_processes)
    for i in range(fanout_factor):
        nginx.make_nginx(
            world, "server0", f"leaf{i}", processes=1, tier=f"leaf{i}"
        )
    world.deployment.set_pool("nginx", client_connections)
    make_netproc(world, "server0", cores=interrupt_cores)

    tree = PathTree("fanout", response_bytes=cal.FANOUT_PAGE_BYTES)
    tree.add_node(
        PathNode(
            "proxy", "nginx",
            path_name=nginx.PROXY_PATH, on_enter=NodeOp.block(),
        )
    )
    for i in range(fanout_factor):
        tree.add_node(
            PathNode(
                f"leaf{i}", f"leaf{i}",
                path_name=nginx.SERVE_PATH,
                request_bytes=cal.FANOUT_PAGE_BYTES,
            )
        )
        tree.add_edge("proxy", f"leaf{i}")
    tree.add_node(
        PathNode(
            "join", "nginx",
            path_name=nginx.RESPOND_PATH,
            same_instance_as="proxy",
            on_leave=NodeOp.unblock("proxy"),
        )
    )
    for i in range(fanout_factor):
        tree.add_edge(f"leaf{i}", "join")
    world.dispatcher.add_tree(tree)
    world.labels.update(scenario="fanout", config=f"fanout={fanout_factor}")
    return world


# ---------------------------------------------------------------------------
# Fig 12(a): Thrift echo RPC
# ---------------------------------------------------------------------------

def thrift_echo(
    threads: int = 1,
    seed: int = 0,
    realism: Optional[RealismConfig] = None,
    network: Optional[NetworkFabric] = None,
    client_connections: int = 64,
) -> World:
    """A bare Thrift client/server pair: the server answers each RPC
    with "Hello World" (SSIV-C)."""
    world = new_world(network, seed, realism)
    add_client_machine(world)
    _server(world)
    thrift.make_thrift(world, "server0", "thrift0", threads=threads)
    make_netproc(world, "server0")
    world.deployment.set_pool("thrift", client_connections)

    tree = PathTree("thrift_echo")
    tree.chain(PathNode("rpc", "thrift", path_name=thrift.RPC_PATH))
    world.dispatcher.add_tree(tree)
    world.labels.update(scenario="thrift_echo", config=f"threads={threads}")
    return world


# ---------------------------------------------------------------------------
# Fig 11 / Fig 12(b): Social Network
# ---------------------------------------------------------------------------

def social_network(
    seed: int = 0,
    realism: Optional[RealismConfig] = None,
    network: Optional[NetworkFabric] = None,
    client_connections: int = cal.WRK2_CONNECTIONS,
    frontend_threads: int = 8,
    service_threads: int = 4,
) -> World:
    """The social network of Fig 11, serving the "retrieve a post"
    request (SSIV-D): the Thrift frontend queries the User and Post
    services in parallel, synchronises their answers, extracts embedded
    media via the Media service, composes the response, and returns it.
    Every business service is backed by its own memcached + MongoDB
    pair. All cross-microservice communication uses Thrift.
    """
    world = new_world(network, seed, realism)
    add_client_machine(world)
    machines = {
        "frontend": _server(world, "frontend0", cores=16),
        "user": _server(world, "user0", cores=16),
        "post": _server(world, "post0", cores=16),
        "media": _server(world, "media0", cores=16),
    }
    thrift.make_thrift(
        world, "frontend0", "frontend", threads=frontend_threads,
        tier="frontend",
    )
    for svc in ("user", "post", "media"):
        thrift.make_thrift(
            world, f"{svc}0", f"{svc}_service", threads=service_threads,
            tier=f"{svc}_service",
        )
        mc.make_memcached(
            world, f"{svc}0", f"{svc}_mc", threads=2, tier=f"{svc}_memcached"
        )
        mongo.make_mongodb(
            world, f"{svc}0", f"{svc}_mongo", cores=2, threads=8,
            tier=f"{svc}_mongodb", miss_probability=0.3,
        )
    for machine_name in ("frontend0", "user0", "post0", "media0"):
        make_netproc(world, machine_name)
    world.deployment.set_pool("frontend", client_connections)

    tree = PathTree("social_network_read_post")
    tree.add_node(
        PathNode(
            "frontend", "frontend",
            path_name=thrift.RPC_PATH, on_enter=NodeOp.block(),
        )
    )
    # User and Post branches run in parallel (fan-out from frontend).
    for svc in ("user", "post"):
        tree.add_node(
            PathNode(f"{svc}_svc", f"{svc}_service", path_name=thrift.LOGIC_PATH)
        )
        tree.add_node(
            PathNode(f"{svc}_mc", f"{svc}_memcached", path_name=mc.READ_PATH)
        )
        tree.add_node(PathNode(f"{svc}_mongo", f"{svc}_mongodb"))
        tree.add_node(
            PathNode(
                f"{svc}_resp", f"{svc}_service",
                path_name=thrift.RESPOND_PATH,
                same_instance_as=f"{svc}_svc",
            )
        )
        tree.add_edge("frontend", f"{svc}_svc")
        tree.add_edge(f"{svc}_svc", f"{svc}_mc")
        tree.add_edge(f"{svc}_mc", f"{svc}_mongo")
        tree.add_edge(f"{svc}_mongo", f"{svc}_resp")
    # Synchronise user + post at the frontend, then the media branch.
    tree.add_node(
        PathNode(
            "frontend_join", "frontend",
            path_name=thrift.RESPOND_PATH, same_instance_as="frontend",
        )
    )
    tree.add_edge("user_resp", "frontend_join")
    tree.add_edge("post_resp", "frontend_join")
    tree.add_node(
        PathNode("media_svc", "media_service", path_name=thrift.LOGIC_PATH)
    )
    tree.add_node(
        PathNode("media_mc", "media_memcached", path_name=mc.READ_PATH)
    )
    tree.add_node(PathNode("media_mongo", "media_mongodb"))
    tree.add_node(
        PathNode(
            "media_resp", "media_service",
            path_name=thrift.RESPOND_PATH, same_instance_as="media_svc",
        )
    )
    tree.add_edge("frontend_join", "media_svc")
    tree.add_edge("media_svc", "media_mc")
    tree.add_edge("media_mc", "media_mongo")
    tree.add_edge("media_mongo", "media_resp")
    tree.add_node(
        PathNode(
            "frontend_respond", "frontend",
            path_name=thrift.RPC_PATH,
            same_instance_as="frontend",
            on_leave=NodeOp.unblock("frontend"),
        )
    )
    tree.add_edge("media_resp", "frontend_respond")
    world.dispatcher.add_tree(tree)
    world.labels.update(scenario="social_network", config="read_post")
    return world


# ---------------------------------------------------------------------------
# Fig 13: single-tier worlds for the BigHouse comparison
# ---------------------------------------------------------------------------

def single_nginx(
    processes: int = 1,
    seed: int = 0,
    realism: Optional[RealismConfig] = None,
    network: Optional[NetworkFabric] = None,
    client_connections: int = cal.WRK2_CONNECTIONS,
    interrupt_cores: int = 8,
) -> World:
    """One NGINX webserver straight behind the client (SSIV-E).

    The interrupt service gets ample cores by default so the tier under
    study — not network processing — is the bottleneck, as in the
    paper's single-tier comparison.
    """
    world = new_world(network, seed, realism)
    add_client_machine(world)
    _server(world)
    nginx.make_nginx(world, "server0", "nginx0", processes=processes)
    make_netproc(world, "server0", cores=interrupt_cores)
    world.deployment.set_pool("nginx", client_connections)
    tree = PathTree("single_nginx", response_bytes=cal.FANOUT_PAGE_BYTES)
    tree.chain(
        PathNode(
            "nginx", "nginx",
            path_name=nginx.SERVE_PATH,
            on_enter=NodeOp.block(), on_leave=NodeOp.unblock(),
        )
    )
    world.dispatcher.add_tree(tree)
    world.labels.update(scenario="single_nginx", config=f"{processes}p")
    return world


def single_memcached(
    threads: int = 4,
    seed: int = 0,
    realism: Optional[RealismConfig] = None,
    network: Optional[NetworkFabric] = None,
    client_connections: int = cal.WRK2_CONNECTIONS,
    interrupt_cores: int = 8,
) -> World:
    """One memcached instance straight behind the client (SSIV-E).

    Ample interrupt cores by default: a 4-thread memcached clears
    >200 kQPS, so the Fig 13 comparison needs the netproc out of the
    way (the paper's 4-interrupt-core setup belongs to Fig 8).
    """
    world = new_world(network, seed, realism)
    add_client_machine(world)
    _server(world)
    mc.make_memcached(world, "server0", "memcached0", threads=threads)
    make_netproc(world, "server0", cores=interrupt_cores)
    world.deployment.set_pool("memcached", client_connections)
    tree = PathTree("single_memcached")
    tree.chain(PathNode("memcached", "memcached", path_name=mc.READ_PATH))
    world.dispatcher.add_tree(tree)
    world.labels.update(scenario="single_memcached", config=f"{threads}t")
    return world


def default_value_sizes() -> Exponential:
    """The exponentially distributed request value sizes of SSIV-A."""
    return Exponential(cal.DEFAULT_VALUE_BYTES)


# Sharded runners ------------------------------------------------------
#
# Opt-in hooks read by :func:`repro.experiments.loadsweep.measure_at_load`
# when called with ``shards > 1``. Both route through the generic world
# adapter (:func:`repro.shard.adapter.sharded_load_point`), which
# replicates the full world per shard and runs the real dispatcher
# behind ShardHost mailboxes — no hand re-expression of dispatch logic
# per topology. ``supported_telemetry`` declares which sweep knobs the
# runner can honour (the adapter ships per-shard telemetry home at
# finalize and merges it); loadsweep's blocked-knob check reads it.


def _two_tier_sharded_runner(*args, **kwargs):
    """Late import so ``repro.shard`` stays an optional layer of the
    import graph."""
    from ..shard.adapter import sharded_load_point

    return sharded_load_point(two_tier, *args, **kwargs)


def _social_network_sharded_runner(*args, **kwargs):
    """Late import so ``repro.shard`` stays an optional layer of the
    import graph."""
    from ..shard.adapter import sharded_load_point

    return sharded_load_point(social_network, *args, **kwargs)


_two_tier_sharded_runner.supported_telemetry = (
    "mix", "trace", "trace_dir", "slo", "scrape",
)
_social_network_sharded_runner.supported_telemetry = (
    "mix", "trace", "trace_dir", "slo", "scrape",
)
two_tier.sharded_runner = _two_tier_sharded_runner
social_network.sharded_runner = _social_network_sharded_runner
