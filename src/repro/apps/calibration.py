"""Calibration constants for the application models.

The paper profiles stage processing times on the Table II server
(Xeon E5-2660 v3 at 2.6 GHz) and does not publish the raw histograms,
so these constants are chosen to land the simulator's saturation points
where the paper's figures put them. Derivations:

* **NGINX webserver** — Fig 8: 4 load-balanced single-core instances
  saturate at 35 kQPS => ~8.75 kQPS per worker => ~114 us of CPU per
  request. Split: epoll wakeup 8 us (amortised across batched events) +
  1.5 us per returned event + 105 us handler processing.
* **Thrift echo server** — Fig 12a: saturation just past 50 kQPS and
  low-load latency < 100 us including network => ~18 us per-request CPU
  after epoll amortisation.
* **memcached** — must never bottleneck the 2-tier app before NGINX
  (SSIV-A): ~16 us CPU per request => >60 kQPS per thread.
* **MongoDB** — "primarily bottlenecked by the disk I/O bandwidth"
  (SSIV-A): a 7.2k-RPM SATA read costs ~2 ms of device time; with the
  default 20% end-to-end miss ratio and 4 concurrent device channels
  the 3-tier saturates around 10 kQPS, far below the 2-tier app — the
  qualitative relationship Fig 6 shows.
* **Network processing (soft_irq)** — Fig 8: with 4 interrupt cores the
  16-way scale-out saturates at ~120 kQPS instead of the linear
  140 kQPS => rx+tx cost per request ~33 us => 12 us per message + 12
  ns per byte (612-byte pages).

All times are seconds of CPU at the nominal 2.6 GHz; DVFS scales them
through :class:`~repro.distributions.FrequencyTable`.
"""

from ..hardware.dvfs import GHZ

NOMINAL_FREQUENCY = 2.6 * GHZ

# --- NGINX ------------------------------------------------------------
NGINX_EPOLL_BASE = 8e-6
NGINX_EPOLL_PER_EVENT = 1.5e-6
#: Full request handling: HTTP parse, keepalive bookkeeping, content
#: generation. Dominates the webserver role AND the 2-tier entry (which
#: parses the client request before querying memcached).
NGINX_HANDLER = 105e-6
#: Pure proxying (LB / fanout forwarding) is much cheaper.
NGINX_PROXY_HANDLER = 12e-6
#: Composing the final response from an upstream answer.
NGINX_RESPOND = 10e-6

# --- memcached (Listing 1) ---------------------------------------------
MEMCACHED_EPOLL_BASE = 5e-6
MEMCACHED_EPOLL_PER_EVENT = 1e-6
MEMCACHED_SOCKET_READ_BASE = 2e-6
MEMCACHED_SOCKET_READ_PER_BYTE = 8e-9
MEMCACHED_READ_PROCESSING = 8e-6
MEMCACHED_WRITE_PROCESSING = 11e-6
MEMCACHED_SOCKET_SEND = 3e-6

# --- MongoDB ------------------------------------------------------------
MONGODB_EPOLL_BASE = 6e-6
MONGODB_EPOLL_PER_EVENT = 1.5e-6
MONGODB_QUERY_CPU = 45e-6
#: Buffer-cache hit: query answered from memory.
MONGODB_HIT_CPU = 20e-6
#: 7.2k RPM SATA random read: seek + rotational latency + transfer.
MONGODB_DISK_READ_MEAN = 2e-3
MONGODB_DISK_CHANNELS = 4
#: Default probability that a MongoDB query misses the buffer cache.
MONGODB_CACHE_MISS = 0.5
MONGODB_SOCKET_SEND = 4e-6

# --- Apache Thrift echo server (SSIV-C) ----------------------------------
THRIFT_EPOLL_BASE = 4e-6
THRIFT_EPOLL_PER_EVENT = 1e-6
THRIFT_PROCESSING = 14e-6
THRIFT_SOCKET_SEND = 2e-6
#: RPC handling cost of the social network's business-logic services.
THRIFT_LOGIC_PROCESSING = 40e-6

# --- Network processing (per-machine soft_irq service) -------------------
NETPROC_PER_MESSAGE = 13e-6
NETPROC_PER_BYTE = 12e-9
NETPROC_DEFAULT_CORES = 4
#: Kernel-bypass (DPDK-style) networking: the paper defers this to
#: future work (SSIII-B); modelled here as an extension. Poll-mode user
#: space drivers cut per-message kernel cost by roughly an order of
#: magnitude.
DPDK_PER_MESSAGE = 1.5e-6
DPDK_PER_BYTE = 1.5e-9

# --- Workload -------------------------------------------------------------
#: Mean of the exponential value-size distribution (2-tier validation).
DEFAULT_VALUE_BYTES = 256.0
#: Static page served by the LB / fanout webservers (SSIV-B).
FANOUT_PAGE_BYTES = 612.0
#: wrk2 client setup from SSIV-A.
WRK2_CONNECTIONS = 320
#: Default memcached hit ratio of the 3-tier application: chosen with
#: MONGODB_DISK_* so the 3-tier saturates roughly 7x below the 2-tier.
THREE_TIER_CACHE_HIT = 0.8
