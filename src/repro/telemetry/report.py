"""Plain-text reporting helpers for the benchmark harness.

Every bench prints the rows/series of its paper figure or table with
these formatters, so outputs are uniform and diff-friendly.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

Cell = Union[str, int, float, None]


def format_cell(cell: Cell, precision: int = 3) -> str:
    """Render one table cell: numbers compactly, None as a dash."""
    if cell is None:
        return "-"
    if isinstance(cell, bool):
        return str(cell)
    if isinstance(cell, int):
        return str(cell)
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        magnitude = abs(cell)
        if magnitude >= 1e5 or magnitude < 1e-3:
            return f"{cell:.{precision}g}"
        return f"{cell:.{precision}f}".rstrip("0").rstrip(".")
    return str(cell)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    title: str = "",
    precision: int = 3,
) -> str:
    """Render an aligned monospace table."""
    str_rows: List[List[str]] = [
        [format_cell(c, precision) for c in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

    out: List[str] = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


def format_series(
    name: str,
    xs: Sequence[float],
    ys: Sequence[float],
    x_label: str = "x",
    y_label: str = "y",
    precision: int = 4,
) -> str:
    """Render one figure series as labelled (x, y) pairs."""
    if len(xs) != len(ys):
        raise ValueError(f"series {name!r}: {len(xs)} xs vs {len(ys)} ys")
    pairs = "  ".join(
        f"({format_cell(float(x), precision)},{format_cell(float(y), precision)})"
        for x, y in zip(xs, ys)
    )
    return f"{name} [{x_label} vs {y_label}]: {pairs}"


def format_run_manifest(manifest: dict) -> str:
    """One-paragraph summary of a run directory's ``manifest.json``.

    The CLI prints this after a checkpointed experiment so the user
    sees at a glance what landed, what failed, and what a resume would
    recompute.
    """
    counts = manifest.get("counts", {})
    total = sum(counts.values())
    parts = [
        f"run {manifest.get('experiment', '?')}: "
        f"{manifest.get('status', 'unknown')}",
        f"{counts.get('ok', 0)}/{total} points ok",
    ]
    failed = counts.get("failed", 0)
    if failed:
        parts.append(f"{failed} failed (kept in journal; resume retries them)")
    # Surface every outcome the manifest recorded, not just the two we
    # know by name — a new worker outcome must never vanish from the
    # summary line.
    for outcome in sorted(counts):
        if outcome in ("ok", "failed"):
            continue
        parts.append(f"{counts[outcome]} {outcome}")
    resumed = manifest.get("resumed_points")
    if resumed:
        parts.append(f"{resumed} reused from journal")
    wall = manifest.get("wall_time_s")
    if wall is not None:
        parts.append(f"{format_cell(float(wall))}s wall")
    sync = manifest.get("shard_sync")
    if sync:
        parts.append(
            f"shards={sync.get('shards', '?')}"
            f" ({sync.get('mode', '?')}):"
            f" {sync.get('rounds', 0)} rounds,"
            f" {sync.get('messages_exchanged', 0)} messages,"
            f" {sync.get('stalls', 0)} stalls"
        )
        straggler = sync.get("straggler_rounds") or {}
        if straggler:
            shard, bound = max(
                straggler.items(), key=lambda kv: (kv[1], kv[0])
            )
            parts.append(
                f"critical shard {shard} bounded "
                f"{bound}/{sync.get('rounds', 0)} rounds"
            )
    recovery = manifest.get("shard_recovery")
    if recovery:
        restarts = recovery.get("restarts", 0)
        per_shard = recovery.get("per_shard") or {}
        detail = ", ".join(
            f"shard {shard}: {report.get('restarts', 0)}"
            for shard, report in sorted(per_shard.items())
        )
        parts.append(
            f"{restarts} shard restart{'s' if restarts != 1 else ''}"
            + (f" ({detail})" if detail else "")
        )
    slo = manifest.get("slo")
    if slo:
        for name in sorted(slo):
            verdict = slo[name]
            breaches = verdict.get("breaches", 0)
            if breaches:
                in_breach = verdict.get("time_in_breach_s", 0.0)
                parts.append(
                    f"SLO {name}: {breaches} breach"
                    f"{'es' if breaches != 1 else ''}"
                    f" ({format_cell(float(in_breach))}s in breach)"
                )
            else:
                parts.append(f"SLO {name}: met")
    return ", ".join(parts)


def format_analytics_report(
    analytics=None,
    slo: Optional[dict] = None,
    profile: Optional[dict] = None,
    top: int = 8,
    precision: int = 3,
) -> str:
    """The consolidated observability report.

    *analytics* is a
    :class:`~repro.analysis.trace_analytics.TraceAnalytics` (``None``
    for runs that only monitored SLOs or profiled); *slo* an optional
    :meth:`~repro.telemetry.slo.SLOMonitor.summary` dict; *profile* an
    optional :meth:`~repro.engine.profiler.EngineProfiler.summary`
    dict. The CLI prints this after any run with tracing, SLOs, or
    profiling enabled (``repro analyze`` builds the same report from
    exported traces).
    """
    sections: List[str] = []
    percentiles: List[float] = []
    if analytics is not None:
        sections.append(
            f"trace analytics: {analytics.traces} traces "
            f"({analytics.ok_traces} ok) over "
            f"{format_cell(analytics.duration, precision)}s simulated"
        )
        percentiles = sorted(analytics.tail)
    if percentiles:
        anchor = analytics.tail[percentiles[-1]]
        nodes = sorted(
            {n for ta in analytics.tail.values() for n in ta.contributions},
            key=lambda n: -anchor.contributions.get(n, 0.0),
        )
        rows: List[List[Cell]] = [
            [node] + [
                ms(analytics.tail[q].contributions.get(node, 0.0))
                for q in percentiles
            ]
            for node in nodes[:top]
        ]
        rows.append(
            ["= e2e"] + [ms(analytics.tail[q].latency) for q in percentiles]
        )
        sections.append(format_table(
            ["node"] + [f"p{q:g} ms" for q in percentiles],
            rows,
            title="tail attribution (critical-path contribution per "
                  "latency percentile; columns sum to the e2e percentile)",
            precision=precision,
        ))
        exemplar_ids = ", ".join(str(i) for i in anchor.trace_ids)
        sections.append(
            f"p{percentiles[-1]:g} neighbourhood traces: request"
            f"{'s' if len(anchor.trace_ids) != 1 else ''} {exemplar_ids}"
        )

    if analytics is not None and analytics.edges:
        sections.append(format_table(
            ["upstream", "service", "count", "errors", "rate/s", "amp"]
            + [f"p{q:g} ms" for q in percentiles],
            [
                [
                    e.upstream, e.service, e.count, e.errors, e.rate,
                    None if e.amplification != e.amplification
                    or e.amplification == float("inf") else e.amplification,
                ] + [
                    ms(e.duration[q]) if q in e.duration else None
                    for q in percentiles
                ]
                for e in analytics.edges
            ],
            title="dependency graph (RED per edge; count matches "
                  "edge_requests_total at sample rate 1.0)",
            precision=precision,
        ))

    if analytics is not None and analytics.nodes and percentiles:
        q_hi = percentiles[-1]
        sections.append(format_table(
            ["node", "visits", "cancelled", f"p{q_hi:g} ms", "net ms",
             "queue ms", "svc ms"],
            [
                [n.node, n.visits, n.cancelled]
                + (
                    [ms(v) for v in n.percentiles[q_hi]]
                    if q_hi in n.percentiles else [None] * 4
                )
                for n in analytics.nodes
            ],
            title=f"where p{q_hi:g} node time goes "
                  "(network + queueing + service = duration)",
            precision=precision,
        ))

    if analytics is not None and analytics.exemplars:
        lines = ["exemplars (slowest ok traces touching each node):"]
        for node in sorted(analytics.exemplars):
            entries = ", ".join(
                f"req {e.request_id} ({format_cell(ms(e.latency), precision)}"
                f"ms, {e.attempts} att)"
                for e in analytics.exemplars[node]
            )
            lines.append(f"  {node}: {entries}")
        sections.append("\n".join(lines))

    if slo:
        sections.append(format_table(
            ["slo", "breaches", "pages", "in breach s", "final", "max burn"],
            [
                [
                    name,
                    verdict.get("breaches", 0),
                    verdict.get("pages", 0),
                    verdict.get("time_in_breach_s"),
                    verdict.get("final_value"),
                    verdict.get("max_burn_rate"),
                ]
                for name, verdict in sorted(slo.items())
            ],
            title="SLO verdicts",
            precision=precision,
        ))

    if profile:
        sections.append(
            f"engine profile: {profile.get('events', 0)} events, "
            f"{format_cell(profile.get('events_per_sec', 0.0), precision)} "
            f"events/s of handler time"
        )
        hotspots = profile.get("hotspots") or []
        if hotspots:
            sections.append(format_table(
                ["handler", "count", "total ms", "mean us"],
                [
                    [h["key"], h["count"], ms(h["seconds"]), h["mean_us"]]
                    for h in hotspots[:top]
                ],
                title="hotspots",
                precision=precision,
            ))

    return "\n\n".join(sections)


def ms(seconds: float) -> float:
    """Seconds -> milliseconds (reporting convenience)."""
    return seconds * 1e3


def us(seconds: float) -> float:
    """Seconds -> microseconds (reporting convenience)."""
    return seconds * 1e6
