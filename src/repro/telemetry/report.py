"""Plain-text reporting helpers for the benchmark harness.

Every bench prints the rows/series of its paper figure or table with
these formatters, so outputs are uniform and diff-friendly.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

Cell = Union[str, int, float, None]


def format_cell(cell: Cell, precision: int = 3) -> str:
    """Render one table cell: numbers compactly, None as a dash."""
    if cell is None:
        return "-"
    if isinstance(cell, bool):
        return str(cell)
    if isinstance(cell, int):
        return str(cell)
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        magnitude = abs(cell)
        if magnitude >= 1e5 or magnitude < 1e-3:
            return f"{cell:.{precision}g}"
        return f"{cell:.{precision}f}".rstrip("0").rstrip(".")
    return str(cell)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    title: str = "",
    precision: int = 3,
) -> str:
    """Render an aligned monospace table."""
    str_rows: List[List[str]] = [
        [format_cell(c, precision) for c in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

    out: List[str] = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


def format_series(
    name: str,
    xs: Sequence[float],
    ys: Sequence[float],
    x_label: str = "x",
    y_label: str = "y",
    precision: int = 4,
) -> str:
    """Render one figure series as labelled (x, y) pairs."""
    if len(xs) != len(ys):
        raise ValueError(f"series {name!r}: {len(xs)} xs vs {len(ys)} ys")
    pairs = "  ".join(
        f"({format_cell(float(x), precision)},{format_cell(float(y), precision)})"
        for x, y in zip(xs, ys)
    )
    return f"{name} [{x_label} vs {y_label}]: {pairs}"


def format_run_manifest(manifest: dict) -> str:
    """One-paragraph summary of a run directory's ``manifest.json``.

    The CLI prints this after a checkpointed experiment so the user
    sees at a glance what landed, what failed, and what a resume would
    recompute.
    """
    counts = manifest.get("counts", {})
    total = sum(counts.values())
    parts = [
        f"run {manifest.get('experiment', '?')}: "
        f"{manifest.get('status', 'unknown')}",
        f"{counts.get('ok', 0)}/{total} points ok",
    ]
    failed = counts.get("failed", 0)
    if failed:
        parts.append(f"{failed} failed (kept in journal; resume retries them)")
    resumed = manifest.get("resumed_points")
    if resumed:
        parts.append(f"{resumed} reused from journal")
    wall = manifest.get("wall_time_s")
    if wall is not None:
        parts.append(f"{format_cell(float(wall))}s wall")
    return ", ".join(parts)


def ms(seconds: float) -> float:
    """Seconds -> milliseconds (reporting convenience)."""
    return seconds * 1e3


def us(seconds: float) -> float:
    """Seconds -> microseconds (reporting convenience)."""
    return seconds * 1e6
