"""A lightweight metrics registry: counters, gauges, histograms.

The observability counterpart of :mod:`repro.telemetry.tracing`:
whereas traces follow individual (sampled) requests, metrics aggregate
everything. The registry hands out labelled instruments on demand —

* the dispatcher counts requests per outcome, retries, hedges, sheds,
  and per (upstream, service) edge traffic, and histograms end-to-end
  latency;
* microservice instances histogram per-stage batch costs and count
  completed jobs;
* load balancers count picks per instance (via the ``on_pick`` hook).

Instruments are get-or-create keyed by (name, labels), so hot paths
pay one dict lookup; with no registry attached they pay a single
``is None`` check. ``collect()`` renders everything into a plain dict
(Prometheus-style ``name{label="value"}`` keys) for JSON dumps.
"""

from __future__ import annotations

import bisect
import json
import math
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ReproError

#: Default histogram bucket upper bounds (seconds): 2 us .. ~67 s in
#: powers of four, a decent spread for both stage costs and end-to-end
#: latencies.
DEFAULT_BUCKETS = tuple(2e-6 * 4 ** i for i in range(13))


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ReproError(f"counters only go up; got {amount!r}")
        self.value += amount


class Gauge:
    """A value that can go up and down (queue depth, utilization)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram with sum/count and quantile estimates."""

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, buckets: Optional[Sequence[float]] = None) -> None:
        bounds = tuple(buckets if buckets is not None else DEFAULT_BUCKETS)
        if not bounds or list(bounds) != sorted(bounds):
            raise ReproError("histogram buckets must be ascending and non-empty")
        self.bounds = bounds
        # One overflow bucket past the last bound (+inf).
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    @property
    def mean(self) -> float:
        if self.count == 0:
            raise ReproError("empty histogram has no mean")
        return self.sum / self.count

    def quantile(self, q: float) -> float:
        """Estimated *q*-quantile (``q`` in [0, 1]), linearly
        interpolated within the containing bucket; the overflow bucket
        reports its lower bound."""
        if not 0.0 <= q <= 1.0:
            raise ReproError(f"quantile must be in [0, 1], got {q!r}")
        if self.count == 0:
            raise ReproError("empty histogram has no quantiles")
        target = q * self.count
        cumulative = 0
        for i, bucket_count in enumerate(self.counts):
            cumulative += bucket_count
            if cumulative >= target and bucket_count:
                if i >= len(self.bounds):
                    return self.bounds[-1]
                lo = self.bounds[i - 1] if i else 0.0
                hi = self.bounds[i]
                fraction = 1.0 - (cumulative - target) / bucket_count
                return lo + fraction * (hi - lo)
        return self.bounds[-1]


def _label_key(labels: Dict[str, str]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus exposition format:
    backslash, double quote, and line feed must be written as ``\\\\``,
    ``\\"`` and ``\\n`` — otherwise a value like ``he said "hi"``
    renders an unparseable (and ambiguous) key."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _render_key(name: str, labels: Tuple[Tuple[str, str], ...]) -> str:
    if not labels:
        return name
    inner = ",".join(
        f'{k}="{_escape_label_value(v)}"' for k, v in labels
    )
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """Get-or-create home for labelled instruments."""

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, tuple], Counter] = {}
        self._gauges: Dict[Tuple[str, tuple], Gauge] = {}
        self._histograms: Dict[Tuple[str, tuple], Histogram] = {}

    def counter(self, name: str, **labels: str) -> Counter:
        key = (name, _label_key(labels))
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter()
        return instrument

    def gauge(self, name: str, **labels: str) -> Gauge:
        key = (name, _label_key(labels))
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge()
        return instrument

    def histogram(
        self,
        name: str,
        buckets: Optional[Sequence[float]] = None,
        **labels: str,
    ) -> Histogram:
        key = (name, _label_key(labels))
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram(buckets)
        return instrument

    # Wiring helpers -----------------------------------------------------

    def instrument_dispatcher(self, dispatcher) -> None:
        """Point the dispatcher's metric feed at this registry."""
        dispatcher.metrics = self

    def instrument_instance(self, instance) -> None:
        """Per-stage cost histograms + completed-job counters for one
        microservice instance."""
        instance.metrics = self

    def instrument_balancer(self, service: str, balancer) -> None:
        """Count picks per chosen instance on *balancer*."""

        def record(instance) -> None:
            self.counter(
                "lb_picks_total", service=service, instance=instance.name
            ).inc()

        balancer.on_pick = record

    def instrument_world(self, world) -> None:
        """Wire dispatcher, every deployed instance, and every load
        balancer of a :class:`~repro.apps.base.World` (duck-typed:
        anything with ``dispatcher`` and ``deployment``)."""
        self.instrument_dispatcher(world.dispatcher)
        deployment = world.deployment
        for instance in deployment.all_instances:
            self.instrument_instance(instance)
        for service in deployment.services:
            self.instrument_balancer(service, deployment.balancer(service))

    # Export -------------------------------------------------------------

    def sample_deployment_gauges(self, deployment, now: float) -> None:
        """Snapshot queue depths and core utilization into gauges
        (call periodically or once at the end of a run)."""
        for instance in deployment.all_instances:
            self.gauge("queued_jobs", service=instance.name).set(
                instance.queued_jobs
            )
            self.gauge("core_utilization", service=instance.name).set(
                instance.utilization(now)
            )

    def collect(self) -> Dict[str, Dict[str, object]]:
        """Everything recorded, as plain JSON-serialisable data."""
        out: Dict[str, Dict[str, object]] = {
            "counters": {}, "gauges": {}, "histograms": {},
        }
        for (name, labels), counter in sorted(self._counters.items()):
            out["counters"][_render_key(name, labels)] = counter.value
        for (name, labels), gauge in sorted(self._gauges.items()):
            out["gauges"][_render_key(name, labels)] = gauge.value
        for (name, labels), hist in sorted(self._histograms.items()):
            out["histograms"][_render_key(name, labels)] = {
                "count": hist.count,
                "sum": hist.sum,
                "buckets": {
                    (
                        f"{bound:g}" if i < len(hist.bounds) else "+inf"
                    ): hist.counts[i]
                    for i, bound in enumerate(
                        list(hist.bounds) + [math.inf]
                    )
                },
            }
        return out

    def write(self, path) -> None:
        """Dump :meth:`collect` as indented JSON to *path*."""
        with open(path, "w") as fh:
            json.dump(self.collect(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    def __repr__(self) -> str:
        return (
            f"<MetricsRegistry counters={len(self._counters)} "
            f"gauges={len(self._gauges)} histograms={len(self._histograms)}>"
        )
