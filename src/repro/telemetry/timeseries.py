"""Simple time series: (time, value) pairs with windowed reduction.

Used to record offered load (Fig 15), tail latency over time, and
per-tier frequency settings (Fig 16) for the benchmark harness output.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

import numpy as np

from ..errors import ReproError


class TimeSeries:
    """Append-only (t, v) series."""

    def __init__(self, name: str = "series") -> None:
        self.name = name
        self._times: List[float] = []
        self._values: List[float] = []

    def append(self, t: float, value: float) -> None:
        if self._times and t < self._times[-1]:
            raise ReproError(
                f"{self.name}: non-monotonic time {t!r} after {self._times[-1]!r}"
            )
        self._times.append(float(t))
        self._values.append(float(value))

    def __len__(self) -> int:
        return len(self._times)

    @property
    def times(self) -> np.ndarray:
        return np.asarray(self._times)

    @property
    def values(self) -> np.ndarray:
        return np.asarray(self._values)

    def last(self) -> Tuple[float, float]:
        if not self._times:
            raise ReproError(f"{self.name}: empty series")
        return self._times[-1], self._values[-1]

    def resample(
        self,
        bin_width: float,
        reducer: Callable[[np.ndarray], float] = np.mean,
        t_start: Optional[float] = None,
        t_end: Optional[float] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Reduce into fixed-width bins; empty bins are dropped.

        Returns (bin_centres, reduced_values).
        """
        if bin_width <= 0:
            raise ReproError(f"bin_width must be > 0, got {bin_width!r}")
        if not self._times:
            return np.array([]), np.array([])
        times = self.times
        values = self.values
        lo = times[0] if t_start is None else t_start
        hi = times[-1] if t_end is None else t_end
        if hi < lo or (hi == lo and t_end is not None):
            raise ReproError("resample window must have positive length")
        if hi == lo:
            # Default window over a single-sample series (or one where
            # every sample shares a timestamp — duplicate monitor ticks
            # are legal): one bin holds everything.
            hi = lo + bin_width
        # One extra bin when hi lands exactly on an edge, so every bin is
        # uniformly right-exclusive and the last sample still lands.
        n_bins = int(np.floor((hi - lo) / bin_width + 1e-12)) + 1
        edges = lo + np.arange(n_bins + 1) * bin_width
        # An explicit t_end bounds the window to [lo, hi): the overflow
        # bin keeps hi-edge samples of the default window, but must not
        # sweep in samples past a caller-given end.
        cutoff = np.inf if t_end is None else hi
        centres: List[float] = []
        reduced: List[float] = []
        for left, right in zip(edges[:-1], edges[1:]):
            mask = (times >= left) & (times < min(right, cutoff))
            if mask.any():
                centres.append((left + right) / 2.0)
                reduced.append(float(reducer(values[mask])))
        return np.asarray(centres), np.asarray(reduced)

    def __repr__(self) -> str:
        return f"<TimeSeries {self.name} n={len(self)}>"
