"""Telemetry: latency recording, time series, and report formatting."""

from .latency import LatencyRecorder, WindowedLatency
from .monitor import ServiceMonitor
from .report import format_series, format_table, ms, us
from .timeseries import TimeSeries

__all__ = [
    "LatencyRecorder",
    "ServiceMonitor",
    "TimeSeries",
    "WindowedLatency",
    "format_series",
    "format_table",
    "ms",
    "us",
]
