"""Telemetry: latency recording, time series, and report formatting."""

from .availability import AvailabilityMonitor
from .latency import LatencyRecorder, WindowedLatency
from .monitor import ServiceMonitor
from .report import format_run_manifest, format_series, format_table, ms, us
from .timeseries import TimeSeries

__all__ = [
    "AvailabilityMonitor",
    "LatencyRecorder",
    "ServiceMonitor",
    "TimeSeries",
    "WindowedLatency",
    "format_run_manifest",
    "format_series",
    "format_table",
    "ms",
    "us",
]
