"""Telemetry: latency recording, time series, tracing, metrics, and
report formatting."""

from .availability import AvailabilityMonitor
from .export import (
    counters_from_perfetto,
    from_otlp,
    read_otlp,
    to_otlp,
    to_perfetto,
    write_otlp,
    write_perfetto,
)
from .latency import LatencyRecorder, WindowedLatency
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .monitor import ServiceMonitor
from .report import (
    format_analytics_report,
    format_run_manifest,
    format_series,
    format_table,
    ms,
    us,
)
from .scrape import (
    TIMELINE_SCHEMA,
    Scraper,
    load_timeline,
    scrape_tiers,
    series_from_json,
    series_to_json,
    timeline_payload,
    write_timeline,
)
from .slo import (
    ALERT_BREACH,
    ALERT_RECOVERY,
    AVAILABILITY,
    LATENCY,
    SLO,
    SLOAlert,
    SLOMonitor,
    parse_slo,
)
from .timeseries import TimeSeries
from .tracing import (
    SPAN_CANCELLED,
    SPAN_OK,
    Span,
    SpanEvent,
    Trace,
    TraceConfig,
    Tracer,
)

__all__ = [
    "ALERT_BREACH",
    "ALERT_RECOVERY",
    "AVAILABILITY",
    "AvailabilityMonitor",
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY",
    "LatencyRecorder",
    "MetricsRegistry",
    "SLO",
    "SLOAlert",
    "SLOMonitor",
    "SPAN_CANCELLED",
    "SPAN_OK",
    "Scraper",
    "ServiceMonitor",
    "Span",
    "SpanEvent",
    "TIMELINE_SCHEMA",
    "TimeSeries",
    "Trace",
    "TraceConfig",
    "Tracer",
    "WindowedLatency",
    "counters_from_perfetto",
    "format_analytics_report",
    "format_run_manifest",
    "parse_slo",
    "format_series",
    "format_table",
    "from_otlp",
    "load_timeline",
    "ms",
    "read_otlp",
    "scrape_tiers",
    "series_from_json",
    "series_to_json",
    "timeline_payload",
    "to_otlp",
    "to_perfetto",
    "us",
    "write_otlp",
    "write_perfetto",
    "write_timeline",
]
