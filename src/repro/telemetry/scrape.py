"""Sim-time telemetry scraping: periodic snapshots into named series.

All other telemetry in the repo is end-of-run aggregate — the
:class:`~repro.telemetry.metrics.MetricsRegistry` is collected once
after ``Simulator.run``, latency percentiles cover the whole window.
The :class:`Scraper` is the Prometheus-style counterpart: a
``PRIORITY_MONITOR``-scheduled loop (off by default, off the fast
path — it is just scheduled events) that snapshots, every *interval*
simulated seconds:

* per-tier **utilisation** (busy-core-time delta over the window, the
  same accounting :class:`~repro.telemetry.monitor.ServiceMonitor`
  uses), **queue depth**, and **in-flight** dispatches, each summed
  over the tier's instances;
* the attached client's windowed **QPS** and **p50/p99**, plus its
  outstanding request count;
* every labelled counter and gauge of an attached registry, as
  cumulative series (rates fall out of a first difference).

Everything lands in named :class:`~repro.telemetry.timeseries.TimeSeries`
streams (``util/<tier>``, ``client/qps``, ``counter/<key>``, ...),
exported as a ``timeseries.json`` artifact
(:func:`write_timeline`/:func:`load_timeline`) and as Perfetto counter
tracks (:func:`repro.telemetry.export.to_perfetto` with *counters*).
``repro analyze --timeline`` renders the artifact back into tables
(:mod:`repro.analysis.timeline`).

Scraping never changes simulation results: samples only *read* model
state and draw no randomness, so relative ordering between model
events is preserved (asserted by ``tests/telemetry/test_scrape.py``).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional

from ..engine import PRIORITY_MONITOR, Simulator
from ..errors import ReproError
from .metrics import MetricsRegistry, _render_key
from .timeseries import TimeSeries

__all__ = [
    "TIMELINE_SCHEMA",
    "Scraper",
    "load_timeline",
    "scrape_tiers",
    "series_from_json",
    "series_to_json",
    "timeline_payload",
    "write_timeline",
]

#: Schema tag stamped into every ``timeseries.json`` artifact so the
#: loader can reject files that merely share the extension.
TIMELINE_SCHEMA = "repro.timeline/1"


def scrape_tiers(deployment) -> Dict[str, List[Any]]:
    """The default tier grouping for a deployment: one tier per
    service (all its instances aggregated) plus one per netproc
    instance (named after the instance, so per-machine soft_irq load
    stays visible)."""
    tiers: Dict[str, List[Any]] = {}
    for service in deployment.services:
        tiers[service] = list(deployment.instances(service))
    for proc in deployment.netprocs.values():
        tiers[proc.name] = [proc]
    return tiers


class Scraper:
    """Periodic sim-time sampler feeding named time series.

    *tiers* maps tier name -> instances sampled as one aggregate
    (:func:`scrape_tiers` builds the default grouping); *client* is an
    optional :class:`~repro.workload.OpenLoopClient`; *registry* an
    optional :class:`~repro.telemetry.metrics.MetricsRegistry` whose
    counters/gauges are snapshotted cumulatively each tick. All three
    are optional so a shard can scrape only the tiers it owns.
    """

    def __init__(
        self,
        sim: Simulator,
        *,
        interval: float,
        tiers: Optional[Mapping[str, Iterable[Any]]] = None,
        client=None,
        registry: Optional[MetricsRegistry] = None,
        stop_at: Optional[float] = None,
    ) -> None:
        if interval <= 0:
            raise ReproError(
                f"scrape interval must be > 0, got {interval!r}"
            )
        self.sim = sim
        self.interval = float(interval)
        self.stop_at = stop_at
        self.client = client
        self.registry = registry
        self._tiers: Dict[str, List[Any]] = {
            name: list(instances)
            for name, instances in (tiers or {}).items()
        }
        self.series: Dict[str, TimeSeries] = {}
        self._last_busy: Dict[str, float] = {}
        self._last_time = 0.0
        self._started = False

    # Series plumbing --------------------------------------------------

    def _series(self, name: str) -> TimeSeries:
        series = self.series.get(name)
        if series is None:
            series = self.series[name] = TimeSeries(name)
        return series

    @staticmethod
    def _total_busy(instance) -> float:
        now = instance.sim.now
        busy = 0.0
        for core in instance.cores.cores:
            busy += core.busy_time
            if core.busy and core._busy_since is not None:
                busy += now - core._busy_since
        return busy

    def _tier_busy(self, instances: List[Any]) -> float:
        return sum(self._total_busy(inst) for inst in instances)

    # Lifecycle --------------------------------------------------------

    def start(self) -> "Scraper":
        if self._started:
            raise ReproError("scraper started twice")
        self._started = True
        self._last_time = self.sim.now
        for name, instances in self._tiers.items():
            self._last_busy[name] = self._tier_busy(instances)
        self.sim.schedule(
            self.interval, self._sample, priority=PRIORITY_MONITOR
        )
        return self

    def _sample(self) -> None:
        now = self.sim.now
        window = now - self._last_time
        for name, instances in self._tiers.items():
            busy = self._tier_busy(instances)
            delta = busy - self._last_busy[name]
            self._last_busy[name] = busy
            cores = sum(len(inst.cores) for inst in instances)
            util = (
                delta / (window * cores) if window > 0 and cores else 0.0
            )
            # Float rounding in busy-time bookkeeping can land a hair
            # outside [0, 1]; a utilisation sample never should.
            util = min(1.0, max(0.0, util))
            self._series(f"util/{name}").append(now, util)
            self._series(f"depth/{name}").append(
                now, float(sum(inst.queued_jobs for inst in instances))
            )
            self._series(f"inflight/{name}").append(
                now, float(sum(inst.pending_dispatch for inst in instances))
            )
        client = self.client
        if client is not None:
            recorder = client.latencies
            completed = recorder.count(since=self._last_time, until=now)
            qps = completed / window if window > 0 else 0.0
            self._series("client/qps").append(now, qps)
            if completed:
                self._series("client/p50").append(
                    now,
                    recorder.percentile(50, since=self._last_time, until=now),
                )
                self._series("client/p99").append(
                    now,
                    recorder.percentile(99, since=self._last_time, until=now),
                )
            self._series("client/inflight").append(
                now,
                float(client.requests_sent - client.requests_completed),
            )
        registry = self.registry
        if registry is not None:
            for (name, labels), counter in registry._counters.items():
                self._series(
                    f"counter/{_render_key(name, labels)}"
                ).append(now, counter.value)
            for (name, labels), gauge in registry._gauges.items():
                self._series(
                    f"gauge/{_render_key(name, labels)}"
                ).append(now, gauge.value)
        self._last_time = now
        if self.stop_at is None:
            # No horizon: keep sampling while anything else is live,
            # but stand down once this tick is the only pending event —
            # a drain-style run must still finish (the SLOMonitor
            # contract).
            if len(self.sim.events) > 0:
                self.sim.schedule(
                    self.interval, self._sample, priority=PRIORITY_MONITOR
                )
        elif now + self.interval <= self.stop_at:
            self.sim.schedule(
                self.interval, self._sample, priority=PRIORITY_MONITOR
            )
        elif now < self.stop_at:
            # Close out the final partial window instead of dropping it
            # (same contract as ServiceMonitor).
            self.sim.schedule(
                self.stop_at - now, self._sample, priority=PRIORITY_MONITOR
            )

    # Export -----------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, List[float]]]:
        """Every series as plain JSON-serialisable data, sorted by
        name."""
        return {
            name: series_to_json(self.series[name])
            for name in sorted(self.series)
        }


# Timeline artifact -----------------------------------------------------


def series_to_json(series: TimeSeries) -> Dict[str, List[float]]:
    """One series -> ``{"times": [...], "values": [...]}``."""
    return {
        "times": [float(t) for t in series.times],
        "values": [float(v) for v in series.values],
    }


def series_from_json(name: str, data: Mapping[str, Any]) -> TimeSeries:
    """Rebuild a :class:`TimeSeries` from :func:`series_to_json`
    output."""
    series = TimeSeries(name)
    for t, v in zip(data["times"], data["values"]):
        series.append(t, v)
    return series


def timeline_payload(
    series: Mapping[str, Mapping[str, Any]],
    *,
    interval: float,
    meta: Optional[Mapping[str, Any]] = None,
    shard_runtime: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble the ``timeseries.json`` document.

    *series* is :meth:`Scraper.snapshot`-shaped data; *meta* carries
    run identity (qps, duration, warmup, shards); *shard_runtime* is a
    :meth:`~repro.shard.sync.ConservativeCoordinator.runtime_report`
    for sharded runs (straggler ranking, per-shard wall accounting).
    """
    payload: Dict[str, Any] = {
        "schema": TIMELINE_SCHEMA,
        "interval": float(interval),
        "series": {name: dict(series[name]) for name in sorted(series)},
    }
    if meta:
        payload["meta"] = dict(meta)
    if shard_runtime:
        payload["shard_runtime"] = dict(shard_runtime)
    return payload


def write_timeline(path, payload: Mapping[str, Any]) -> None:
    """Write a :func:`timeline_payload` document as JSON to *path*."""
    import json

    with open(path, "w") as fh:
        json.dump(payload, fh)
        fh.write("\n")


def load_timeline(path) -> Dict[str, Any]:
    """Load and validate one ``timeseries.json`` artifact."""
    import json

    with open(path) as fh:
        payload = json.load(fh)
    if not isinstance(payload, dict) or payload.get("schema") != TIMELINE_SCHEMA:
        raise ReproError(
            f"{str(path)!r} is not a repro timeline artifact "
            f"(expected schema {TIMELINE_SCHEMA!r})"
        )
    return payload
