"""Structured request tracing: spans, attempts, and resilience events.

The dispatcher's original tracing stored per-node enter times in a flat
``metadata["trace_enter"][node]`` dict, so a retried or hedged re-visit
of a node silently overwrote the earlier timestamp and the losing
attempt could emit a span carrying the winner's timings. This module
replaces those tuples with a first-class model:

* a :class:`Trace` per sampled request, holding
* one :class:`Span` per (attempt, node) visit — sibling attempts get
  sibling spans instead of clobbering each other — each with a
  queueing / service / network time breakdown, and
* :class:`SpanEvent` markers for resilience actions (timeout fired,
  retry scheduled, hedge launched, attempt cancelled, breaker
  rejection, shed).

:class:`TraceConfig` controls sampling (to bound memory at high request
counts) and whether the per-span breakdown is computed;
:class:`Tracer` owns the sampling decision and collects every sampled
trace for export (:mod:`repro.telemetry.export` writes Perfetto and
OTLP-style JSON). :mod:`repro.analysis.critical_path` consumes the
spans.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from ..errors import ReproError

#: Span terminal states. A span with ``leave is None`` is still open.
SPAN_OK = "ok"
SPAN_CANCELLED = "cancelled"


@dataclass
class SpanEvent:
    """A point-in-time marker on a trace (resilience actions)."""

    t: float
    name: str
    attrs: Dict[str, Any] = field(default_factory=dict)


@dataclass
class Span:
    """One node visit by one attempt of a traced request.

    ``enter`` is stamped when the dispatcher sends the message towards
    the chosen instance; ``leave`` when the node's job completes (or
    when the attempt is cancelled, with ``status="cancelled"``). The
    breakdown decomposes the span:

    * ``network`` — dispatch until the instance accepted the job (wire
      delay plus any network-processing services on the way),
    * ``queueing`` — acceptance until the job first reached a core,
    * ``service`` — first core dispatch until completion (includes
      inter-stage queueing and I/O inside the instance).

    The three always sum to the span duration.
    """

    node: str
    instance: str
    service: str
    attempt: int
    enter: float
    leave: Optional[float] = None
    status: str = "open"
    network: float = 0.0
    queueing: float = 0.0
    service_time: float = 0.0
    #: Name of the upstream hop that dispatched into this node — the
    #: parent instance, or the client name at the tree roots. Drives
    #: the RED dependency-graph extraction in
    #: :mod:`repro.analysis.trace_analytics`: one span per traversal of
    #: one (upstream, service) edge mirrors the dispatcher's
    #: ``edge_requests_total`` counter exactly.
    upstream: str = ""

    @property
    def closed(self) -> bool:
        return self.leave is not None

    @property
    def duration(self) -> float:
        if self.leave is None:
            raise ReproError(
                f"span {self.node!r} (attempt {self.attempt}) is still open"
            )
        return self.leave - self.enter

    def finish(
        self,
        t: float,
        job: Optional[object] = None,
        status: str = SPAN_OK,
        breakdown: bool = True,
    ) -> "Span":
        """Close the span at *t*, deriving the breakdown from *job*'s
        lifecycle timestamps (``created_at`` = accepted by the
        instance, ``first_dispatch_at`` = first time on a core).

        Timestamps a cancelled attempt never reached are clamped to
        *t*, so ``network + queueing + service`` equals the duration
        for every closed span, cancelled or not. With
        ``breakdown=False`` the whole duration is booked as service
        time.
        """
        if self.leave is not None:
            return self
        self.leave = t
        self.status = status
        if not breakdown or job is None:
            self.service_time = t - self.enter
            return self
        created = getattr(job, "created_at", None)
        first = getattr(job, "first_dispatch_at", None)
        created = t if created is None else min(max(created, self.enter), t)
        first = t if first is None else min(max(first, created), t)
        self.network = created - self.enter
        self.queueing = first - created
        self.service_time = t - first
        return self


class Trace:
    """The span record of one sampled request across all its attempts."""

    __slots__ = (
        "request_id",
        "request_type",
        "created_at",
        "completed_at",
        "outcome",
        "spans",
        "events",
        "breakdown",
    )

    def __init__(
        self,
        request_id: int,
        request_type: str = "default",
        created_at: float = 0.0,
        breakdown: bool = True,
    ) -> None:
        self.request_id = request_id
        self.request_type = request_type
        self.created_at = created_at
        self.completed_at: Optional[float] = None
        self.outcome: Optional[str] = None
        self.spans: List[Span] = []
        self.events: List[SpanEvent] = []
        self.breakdown = breakdown

    def start_span(
        self,
        node: str,
        instance: str,
        service: str,
        attempt: int,
        enter: float,
        upstream: str = "",
    ) -> Span:
        span = Span(node, instance, service, attempt, enter, upstream=upstream)
        self.spans.append(span)
        return span

    def add_event(self, t: float, name: str, **attrs: Any) -> SpanEvent:
        event = SpanEvent(t, name, attrs)
        self.events.append(event)
        return event

    def finish(self, t: float, outcome: str) -> None:
        self.completed_at = t
        self.outcome = outcome

    @property
    def attempts(self) -> int:
        """Number of attempts that produced at least one span."""
        if not self.spans:
            return 0
        return len({span.attempt for span in self.spans})

    def spans_for_attempt(self, attempt: int) -> List[Span]:
        return [span for span in self.spans if span.attempt == attempt]

    def completed_spans(self, include_cancelled: bool = False) -> List[Span]:
        """Closed spans, by default only successfully completed ones."""
        return [
            span
            for span in self.spans
            if span.closed
            and (include_cancelled or span.status == SPAN_OK)
        ]

    def __len__(self) -> int:
        return len(self.spans)

    def __repr__(self) -> str:
        return (
            f"<Trace req={self.request_id} spans={len(self.spans)} "
            f"attempts={self.attempts} outcome={self.outcome}>"
        )


@dataclass
class TraceConfig:
    """Tracing knobs carried by ``Dispatcher(trace=...)``.

    ``sample_rate`` traces that fraction of submitted requests (drawn
    on a dedicated, seeded RNG stream, so sampling is reproducible);
    ``breakdown`` toggles the per-span queueing/service/network
    decomposition; ``max_traces`` hard-caps how many traces the
    :class:`Tracer` retains (further sampled requests are dropped and
    counted), bounding memory at any request volume.
    """

    sample_rate: float = 1.0
    breakdown: bool = True
    max_traces: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.sample_rate <= 1.0:
            raise ReproError(
                f"sample_rate must be in [0, 1], got {self.sample_rate!r}"
            )
        if self.max_traces is not None and self.max_traces < 1:
            raise ReproError(
                f"max_traces must be >= 1, got {self.max_traces!r}"
            )


class Tracer:
    """Owns the sampling decision and the collected traces."""

    def __init__(
        self,
        config: Optional[TraceConfig] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.config = config or TraceConfig()
        self._rng = rng
        self.traces: List[Trace] = []
        self.sampled = 0
        self.unsampled = 0
        self.dropped = 0  # sampled but over the max_traces cap

    def start_trace(self, request) -> Optional[Trace]:
        """Begin a trace for *request*, or ``None`` when it is sampled
        out (or the retention cap is hit)."""
        rate = self.config.sample_rate
        if rate <= 0.0:
            self.unsampled += 1
            return None
        if rate < 1.0:
            if self._rng is None:
                raise ReproError(
                    "probabilistic trace sampling needs an RNG stream"
                )
            if self._rng.random() >= rate:
                self.unsampled += 1
                return None
        cap = self.config.max_traces
        if cap is not None and len(self.traces) >= cap:
            self.dropped += 1
            return None
        trace = Trace(
            request.request_id,
            request.request_type,
            created_at=request.created_at,
            breakdown=self.config.breakdown,
        )
        self.traces.append(trace)
        self.sampled += 1
        return trace

    def __repr__(self) -> str:
        return (
            f"<Tracer sampled={self.sampled} unsampled={self.unsampled} "
            f"dropped={self.dropped}>"
        )
