"""Trace exporters: Perfetto/Chrome ``trace_event`` JSON and an
OTLP-style JSON codec.

Two interchange formats for the :class:`~repro.telemetry.tracing.Trace`
model:

* :func:`to_perfetto` renders traces as Chrome ``trace_event`` objects
  (openable in Perfetto UI / ``chrome://tracing``): one complete
  (``ph: "X"``) event per closed span — ``pid`` is the request id,
  ``tid`` the attempt, so sibling retry/hedge attempts stack as
  separate tracks — plus instant (``ph: "i"``) events for resilience
  actions. Timestamps are microseconds, per the format.

* :func:`to_otlp` / :func:`from_otlp` round-trip traces through an
  OTLP-ish JSON layout (``resourceSpans`` → ``scopeSpans`` → spans
  with hex trace/span ids, UnixNano timestamps, and key-value
  attributes). Each trace gets a synthetic root ``request`` span
  carrying the request-level events; node spans parent to it. Exact
  float timestamps ride in ``repro.*`` double attributes so decoding
  reproduces the original spans bit-for-bit (UnixNano alone would
  quantise).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional

from ..errors import ReproError
from .tracing import Span, SpanEvent, Trace

_US = 1e6
_NS = 1e9


# Perfetto / Chrome trace_event ---------------------------------------------

#: pid hosting counter tracks in the trace_event export. Request spans
#: use the request id as pid; 0 is never a request id (ids start at 1),
#: so the timeline process can't collide with a request process.
_COUNTER_PID = 0


def to_perfetto(
    traces: Iterable[Trace],
    counters: Optional[Dict[str, Dict[str, Any]]] = None,
) -> Dict[str, Any]:
    """Render *traces* as a Chrome ``trace_event`` JSON object.

    *counters*, when given, maps series name ->
    ``{"times": [...], "values": [...]}`` (seconds / value — the
    :meth:`repro.telemetry.scrape.Scraper.snapshot` shape) and is
    merged in as Perfetto counter tracks: one ``ph: "C"`` event per
    sample under a dedicated ``timeline`` process. The exact float
    timestamp rides in ``args["t_s"]`` (the microsecond ``ts`` field
    quantises), so :func:`counters_from_perfetto` round-trips the
    series bit-for-bit.
    """
    events: List[Dict[str, Any]] = []
    if counters:
        events.append({
            "name": "process_name",
            "ph": "M",
            "pid": _COUNTER_PID,
            "tid": 0,
            "ts": 0,
            "args": {"name": "timeline"},
        })
        for name in sorted(counters):
            series = counters[name]
            for t, value in zip(series["times"], series["values"]):
                events.append({
                    "name": name,
                    "cat": "timeline",
                    "ph": "C",
                    "ts": t * _US,
                    "pid": _COUNTER_PID,
                    "tid": 0,
                    "args": {"value": value, "t_s": t},
                })
    for trace in traces:
        pid = int(trace.request_id)
        events.append({
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "ts": 0,
            "args": {"name": f"request {trace.request_id}"
                             f" ({trace.request_type})"},
        })
        for span in trace.spans:
            if not span.closed:
                continue
            events.append({
                "name": span.node,
                "cat": span.service or "span",
                "ph": "X",
                "ts": span.enter * _US,
                "dur": (span.leave - span.enter) * _US,
                "pid": pid,
                "tid": int(span.attempt),
                "args": {
                    "instance": span.instance,
                    "upstream": span.upstream,
                    "status": span.status,
                    "network_us": span.network * _US,
                    "queueing_us": span.queueing * _US,
                    "service_us": span.service_time * _US,
                },
            })
        for event in trace.events:
            events.append({
                "name": event.name,
                "cat": "resilience",
                "ph": "i",
                "s": "p",  # process-scoped instant
                "ts": event.t * _US,
                "pid": pid,
                "tid": int(event.attrs.get("attempt", 0)),
                "args": dict(event.attrs),
            })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_perfetto(
    path,
    traces: Iterable[Trace],
    counters: Optional[Dict[str, Dict[str, Any]]] = None,
) -> None:
    """Write ``to_perfetto(traces, counters)`` to ``path`` as JSON."""
    with open(path, "w") as fh:
        json.dump(to_perfetto(traces, counters), fh)
        fh.write("\n")


def counters_from_perfetto(
    payload: Dict[str, Any],
) -> Dict[str, Dict[str, List[float]]]:
    """Reconstruct counter-track series from a trace_event payload.

    Inverse of the *counters* side of :func:`to_perfetto`: returns
    ``{name: {"times": [...], "values": [...]}}`` using the exact
    ``args["t_s"]`` stamps (falling back to ``ts``/1e6 for files
    written by other tools).
    """
    try:
        events = payload["traceEvents"]
    except (KeyError, TypeError):
        raise ReproError(
            "not a trace_event payload: missing traceEvents"
        )
    series: Dict[str, Dict[str, List[float]]] = {}
    for event in events:
        if event.get("ph") != "C":
            continue
        args = event.get("args", {})
        entry = series.setdefault(
            event["name"], {"times": [], "values": []}
        )
        entry["times"].append(
            float(args.get("t_s", event.get("ts", 0.0) / _US))
        )
        entry["values"].append(float(args.get("value", 0.0)))
    return series


# OTLP-style JSON -------------------------------------------------------------

def _kv(key: str, value: Any) -> Dict[str, Any]:
    if isinstance(value, bool):
        typed = {"boolValue": value}
    elif isinstance(value, int):
        typed = {"intValue": str(value)}  # OTLP encodes int64 as string
    elif isinstance(value, float):
        typed = {"doubleValue": value}
    else:
        typed = {"stringValue": str(value)}
    return {"key": key, "value": typed}


def _kv_decode(attributes: List[Dict[str, Any]]) -> Dict[str, Any]:
    out: Dict[str, Any] = {}
    for entry in attributes:
        value = entry["value"]
        if "boolValue" in value:
            out[entry["key"]] = bool(value["boolValue"])
        elif "intValue" in value:
            out[entry["key"]] = int(value["intValue"])
        elif "doubleValue" in value:
            out[entry["key"]] = float(value["doubleValue"])
        else:
            out[entry["key"]] = value.get("stringValue")
    return out


def _nano(t: Optional[float]) -> str:
    return str(int(round((t or 0.0) * _NS)))


def to_otlp(traces: Iterable[Trace]) -> Dict[str, Any]:
    """Render *traces* as one OTLP-style JSON payload."""
    spans_out: List[Dict[str, Any]] = []
    for trace in traces:
        trace_id = f"{int(trace.request_id) & (2 ** 128 - 1):032x}"
        root_id = f"{0:016x}"
        root_attrs = [
            _kv("repro.kind", "request"),
            _kv("repro.request_type", trace.request_type),
            _kv("repro.created_s", float(trace.created_at)),
            _kv("repro.breakdown", bool(trace.breakdown)),
        ]
        if trace.completed_at is not None:
            root_attrs.append(_kv("repro.completed_s", float(trace.completed_at)))
        if trace.outcome is not None:
            root_attrs.append(_kv("repro.outcome", trace.outcome))
        spans_out.append({
            "traceId": trace_id,
            "spanId": root_id,
            "parentSpanId": "",
            "name": "request",
            "kind": 2,  # SPAN_KIND_SERVER
            "startTimeUnixNano": _nano(trace.created_at),
            "endTimeUnixNano": _nano(trace.completed_at),
            "attributes": root_attrs,
            "events": [
                {
                    "timeUnixNano": _nano(event.t),
                    "name": event.name,
                    "attributes": [
                        _kv(k, v) for k, v in sorted(event.attrs.items())
                    ] + [_kv("repro.t_s", float(event.t))],
                }
                for event in trace.events
            ],
            "status": {},
        })
        for index, span in enumerate(trace.spans, start=1):
            attrs = [
                _kv("repro.kind", "node"),
                _kv("repro.instance", span.instance),
                _kv("repro.service", span.service),
                _kv("repro.upstream", span.upstream),
                _kv("repro.attempt", int(span.attempt)),
                _kv("repro.status", span.status),
                _kv("repro.enter_s", float(span.enter)),
                _kv("repro.network_s", float(span.network)),
                _kv("repro.queueing_s", float(span.queueing)),
                _kv("repro.service_time_s", float(span.service_time)),
            ]
            if span.leave is not None:
                attrs.append(_kv("repro.leave_s", float(span.leave)))
            spans_out.append({
                "traceId": trace_id,
                "spanId": f"{index:016x}",
                "parentSpanId": root_id,
                "name": span.node,
                "kind": 1,  # SPAN_KIND_INTERNAL
                "startTimeUnixNano": _nano(span.enter),
                "endTimeUnixNano": _nano(span.leave),
                "attributes": attrs,
                "events": [],
                "status": {},
            })
    return {
        "resourceSpans": [{
            "resource": {
                "attributes": [_kv("service.name", "uqsim.repro")],
            },
            "scopeSpans": [{
                "scope": {"name": "repro.telemetry.tracing"},
                "spans": spans_out,
            }],
        }],
    }


def from_otlp(payload: Dict[str, Any]) -> List[Trace]:
    """Decode :func:`to_otlp` output back into :class:`Trace` objects.

    Uses the exact-float ``repro.*`` attributes, so
    ``from_otlp(to_otlp(traces))`` reproduces the original spans and
    events exactly.
    """
    traces: Dict[str, Trace] = {}
    order: List[str] = []
    try:
        resource_spans = payload["resourceSpans"]
    except (KeyError, TypeError):
        raise ReproError("not an OTLP-style payload: missing resourceSpans")
    for resource in resource_spans:
        for scope in resource.get("scopeSpans", []):
            for raw in scope.get("spans", []):
                trace_id = raw["traceId"]
                attrs = _kv_decode(raw.get("attributes", []))
                trace = traces.get(trace_id)
                if trace is None:
                    trace = Trace(int(trace_id, 16))
                    traces[trace_id] = trace
                    order.append(trace_id)
                if attrs.get("repro.kind") == "request":
                    trace.request_type = attrs.get(
                        "repro.request_type", "default"
                    )
                    trace.created_at = attrs.get("repro.created_s", 0.0)
                    trace.completed_at = attrs.get("repro.completed_s")
                    trace.outcome = attrs.get("repro.outcome")
                    trace.breakdown = attrs.get("repro.breakdown", True)
                    for event in raw.get("events", []):
                        ev_attrs = _kv_decode(event.get("attributes", []))
                        t = ev_attrs.pop(
                            "repro.t_s",
                            int(event["timeUnixNano"]) / _NS,
                        )
                        trace.events.append(
                            SpanEvent(t, event["name"], ev_attrs)
                        )
                    continue
                trace.spans.append(Span(
                    node=raw["name"],
                    instance=attrs.get("repro.instance", ""),
                    service=attrs.get("repro.service", ""),
                    upstream=attrs.get("repro.upstream", ""),
                    attempt=attrs.get("repro.attempt", 0),
                    enter=attrs.get("repro.enter_s", 0.0),
                    leave=attrs.get("repro.leave_s"),
                    status=attrs.get("repro.status", "open"),
                    network=attrs.get("repro.network_s", 0.0),
                    queueing=attrs.get("repro.queueing_s", 0.0),
                    service_time=attrs.get("repro.service_time_s", 0.0),
                ))
    return [traces[tid] for tid in order]


def write_otlp(path, traces: Iterable[Trace]) -> None:
    """Write ``to_otlp(traces)`` to ``path`` as JSON."""
    with open(path, "w") as fh:
        json.dump(to_otlp(traces), fh)
        fh.write("\n")


def read_otlp(path) -> List[Trace]:
    """Load an OTLP-style JSON file written by :func:`write_otlp`."""
    with open(path) as fh:
        return from_otlp(json.load(fh))
