"""Periodic in-simulation monitoring of microservice instances.

A :class:`ServiceMonitor` samples queue depth and core utilisation of a
set of instances at a fixed interval — the observability layer one
needs to locate backpressure in a multi-tier graph (which tier's queues
grow first as load approaches saturation).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from ..engine import PRIORITY_MONITOR, Simulator
from ..errors import ReproError
from ..service import Microservice
from .metrics import MetricsRegistry
from .timeseries import TimeSeries


class ServiceMonitor:
    """Samples per-instance queue depth and utilisation.

    With a :class:`~repro.telemetry.metrics.MetricsRegistry` attached
    via *registry*, every sample also lands in
    ``monitor_queue_depth`` / ``monitor_utilization`` gauges (labelled
    by instance), so the latest monitor view shows up in
    ``registry.collect()`` alongside the dispatcher counters.
    """

    def __init__(
        self,
        sim: Simulator,
        instances: Iterable[Microservice],
        interval: float = 0.01,
        stop_at: Optional[float] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if interval <= 0:
            raise ReproError(f"interval must be > 0, got {interval!r}")
        self.sim = sim
        self.registry = registry
        self.instances: List[Microservice] = list(instances)
        if not self.instances:
            raise ReproError("monitor needs at least one instance")
        self.interval = float(interval)
        self.stop_at = stop_at
        self.queue_depth: Dict[str, TimeSeries] = {
            inst.name: TimeSeries(f"depth/{inst.name}") for inst in self.instances
        }
        self.utilization: Dict[str, TimeSeries] = {
            inst.name: TimeSeries(f"util/{inst.name}") for inst in self.instances
        }
        self._last_busy: Dict[str, float] = {
            inst.name: 0.0 for inst in self.instances
        }
        self._last_time = 0.0
        self._start_time = 0.0
        self._started = False

    def start(self) -> "ServiceMonitor":
        if self._started:
            raise ReproError("monitor started twice")
        self._started = True
        self._last_time = self.sim.now
        self._start_time = self.sim.now
        for inst in self.instances:
            self._last_busy[inst.name] = self._total_busy(inst)
        self.sim.schedule(self.interval, self._sample, priority=PRIORITY_MONITOR)
        return self

    @staticmethod
    def _total_busy(instance: Microservice) -> float:
        now = instance.sim.now
        busy = 0.0
        for core in instance.cores.cores:
            busy += core.busy_time
            if core.busy and core._busy_since is not None:
                busy += now - core._busy_since
        return busy

    def _sample(self) -> None:
        now = self.sim.now
        window = now - self._last_time
        for inst in self.instances:
            self.queue_depth[inst.name].append(now, inst.queued_jobs)
            busy = self._total_busy(inst)
            delta = busy - self._last_busy[inst.name]
            util = delta / (window * len(inst.cores)) if window > 0 else 0.0
            # Float rounding in the busy-time bookkeeping can land a
            # hair outside [0, 1]; a utilisation sample never should.
            util = min(1.0, max(0.0, util))
            self.utilization[inst.name].append(now, util)
            self._last_busy[inst.name] = busy
            if self.registry is not None:
                self.registry.gauge(
                    "monitor_queue_depth", instance=inst.name
                ).set(inst.queued_jobs)
                self.registry.gauge(
                    "monitor_utilization", instance=inst.name
                ).set(util)
        self._last_time = now
        if self.stop_at is None or now + self.interval <= self.stop_at:
            self.sim.schedule(
                self.interval, self._sample, priority=PRIORITY_MONITOR
            )
        elif now < self.stop_at:
            # Close out the final partial window instead of dropping
            # it: without this, a stop_at that is not an exact multiple
            # of the interval silently loses the last slice of the run.
            self.sim.schedule(
                self.stop_at - now, self._sample, priority=PRIORITY_MONITOR
            )

    def peak_depth(self, name: str) -> float:
        series = self.queue_depth[name]
        return float(series.values.max()) if len(series) else 0.0

    def bottleneck(self) -> str:
        """Instance with the highest time-weighted mean utilisation —
        the first place to look when latency grows.

        Each sample covers the window since the previous one; with a
        final partial window (or samples taken at uneven spacing) a
        plain mean would over-weight short windows, so samples are
        weighted by the wall of simulated time they describe.
        """
        def mean_util(name: str) -> float:
            series = self.utilization[name]
            if not len(series):
                return 0.0
            times = series.times
            values = series.values
            weights = np.diff(np.concatenate(([self._start_time], times)))
            total = weights.sum()
            if total <= 0:
                return float(values.mean())
            return float((values * weights).sum() / total)

        return max(self.utilization, key=mean_util)

    def __repr__(self) -> str:
        return (
            f"<ServiceMonitor {len(self.instances)} instances "
            f"every {self.interval}s>"
        )
