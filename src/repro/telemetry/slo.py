"""Live SLO monitoring inside the simulation.

Declarative service-level objectives — a latency percentile bound
(``p99 < 5ms``) or an availability floor (``avail > 99.9%``) — are
evaluated *on the event loop* while the simulation runs, the same way
a production burn-rate alerter rides the live metric stream, instead
of as a post-hoc pass over recorded latencies. That matters for the
experiments that act on QoS (the power manager's Algorithm 1, the
autoscaler): their decisions and the SLO verdicts come from the same
windowed sensors at the same simulated instants.

The model follows the SRE-workbook burn-rate formulation:

* the **error budget** of a latency SLO at percentile *q* is the
  ``1 - q/100`` fraction of requests allowed over the threshold (an
  availability SLO's budget is ``1 - target``);
* the **burn rate** is the bad-event fraction in a trailing window
  divided by the budget — burn 1.0 consumes exactly the budget, and a
  latency SLO burns over 1.0 precisely when the windowed percentile
  crosses the threshold;
* evaluation is **multi-window**: the primary window decides
  breach/recovery (so the alert fires at the simulated time the
  windowed percentile actually crosses), while a short window —
  ``window / short_window_divisor``, 1/12 per SRE convention —
  distinguishes a still-burning *page* from a lingering *warn* after
  the bad minutes already aged past.

:class:`SLOMonitor` schedules itself at ``PRIORITY_MONITOR`` (after
completions at each timestamp), records breach/recovery
:class:`SLOAlert` events onto the sim timeline, streams burn rates
into :class:`~repro.telemetry.timeseries.TimeSeries`, and mirrors both
into a :class:`~repro.telemetry.metrics.MetricsRegistry`
(``slo_alerts_total``, ``slo_burn_rate``, ``slo_breached``) so SLO
state appears in ``collect()`` next to the RED counters.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..engine import PRIORITY_MONITOR, Simulator
from ..errors import ReproError
from .latency import WindowedLatency
from .metrics import MetricsRegistry
from .timeseries import TimeSeries

#: SLO metric kinds.
LATENCY = "latency"
AVAILABILITY = "availability"

#: Alert kinds recorded on the timeline.
ALERT_BREACH = "breach"
ALERT_RECOVERY = "recovery"

#: Unit suffixes accepted by :func:`parse_slo` latency thresholds.
_UNITS = {"s": 1.0, "ms": 1e-3, "us": 1e-6}

_LATENCY_SPEC = re.compile(
    r"^p(?P<q>\d+(?:\.\d+)?)\s*<\s*(?P<value>\d+(?:\.\d+)?)\s*"
    r"(?P<unit>s|ms|us)$"
)
_AVAIL_SPEC = re.compile(
    r"^avail(?:ability)?\s*>\s*(?P<value>\d+(?:\.\d+)?)\s*%?$"
)


@dataclass(frozen=True)
class SLO:
    """One declarative objective.

    For ``metric=LATENCY``: at most ``1 - percentile/100`` of requests
    may exceed ``threshold`` seconds (equivalently: the windowed
    p\\ *percentile* must stay at or under the threshold). For
    ``metric=AVAILABILITY``: the windowed ok-fraction must stay at or
    above ``threshold`` (a fraction, e.g. ``0.999``).
    """

    metric: str
    threshold: float
    percentile: Optional[float] = None
    window: float = 1.0  #: primary evaluation window (simulated seconds)
    #: primary window / this = the fast-burn confirmation window.
    short_window_divisor: float = 12.0

    def __post_init__(self) -> None:
        if self.metric not in (LATENCY, AVAILABILITY):
            raise ReproError(f"unknown SLO metric {self.metric!r}")
        if self.metric == LATENCY:
            if self.percentile is None or not 0.0 < self.percentile < 100.0:
                raise ReproError(
                    f"latency SLO needs a percentile in (0, 100), "
                    f"got {self.percentile!r}"
                )
            if self.threshold <= 0.0:
                raise ReproError(
                    f"latency threshold must be > 0, got {self.threshold!r}"
                )
        else:
            if not 0.0 < self.threshold < 1.0:
                raise ReproError(
                    f"availability target must be a fraction in (0, 1), "
                    f"got {self.threshold!r}"
                )
        if self.window <= 0.0:
            raise ReproError(f"window must be > 0, got {self.window!r}")
        if self.short_window_divisor < 1.0:
            raise ReproError(
                f"short_window_divisor must be >= 1, "
                f"got {self.short_window_divisor!r}"
            )

    @property
    def budget(self) -> float:
        """Allowed bad-event fraction (the error budget)."""
        if self.metric == LATENCY:
            return 1.0 - self.percentile / 100.0
        return 1.0 - self.threshold

    @property
    def name(self) -> str:
        if self.metric == LATENCY:
            value, unit = self.threshold, "s"
            if self.threshold < 1e-3:
                value, unit = self.threshold * 1e6, "us"
            elif self.threshold < 1.0:
                value, unit = self.threshold * 1e3, "ms"
            return f"p{self.percentile:g}<{value:g}{unit}"
        return f"avail>{self.threshold * 100:g}%"


def parse_slo(
    spec: str, window: float = 1.0, short_window_divisor: float = 12.0
) -> SLO:
    """Parse an ``SLO`` from CLI-style spec strings.

    ``"p99<5ms"`` / ``"p95<250us"`` / ``"p50<1.5s"`` become latency
    objectives (threshold converted to seconds); ``"avail>99.9%"`` (or
    ``"availability>99.9"``) becomes an availability objective with
    target fraction 0.999.
    """
    text = spec.strip().lower()
    match = _LATENCY_SPEC.match(text)
    if match:
        return SLO(
            metric=LATENCY,
            percentile=float(match.group("q")),
            threshold=float(match.group("value")) * _UNITS[match.group("unit")],
            window=window,
            short_window_divisor=short_window_divisor,
        )
    match = _AVAIL_SPEC.match(text)
    if match:
        return SLO(
            metric=AVAILABILITY,
            threshold=float(match.group("value")) / 100.0,
            window=window,
            short_window_divisor=short_window_divisor,
        )
    raise ReproError(
        f"unparseable SLO spec {spec!r}; expected forms like 'p99<5ms' "
        f"or 'avail>99.9%'"
    )


@dataclass
class SLOAlert:
    """One breach/recovery transition on the simulated timeline."""

    t: float  #: simulated time of the evaluation that transitioned
    slo: str  #: ``SLO.name``
    kind: str  #: :data:`ALERT_BREACH` or :data:`ALERT_RECOVERY`
    value: float  #: measured windowed percentile / availability
    threshold: float
    burn_rate: float  #: primary-window burn rate at the transition
    fast_burn_rate: Optional[float]  #: short-window burn rate (None: empty)
    severity: str = "warn"  #: ``page`` when the short window burns too


class _SLOState:
    """Per-SLO windowed sensors and alert latch."""

    def __init__(self, slo: SLO) -> None:
        self.slo = slo
        short = slo.window / slo.short_window_divisor
        self.primary = WindowedLatency(slo.window, name=f"{slo.name}/window")
        self.short = WindowedLatency(short, name=f"{slo.name}/short")
        self.breached = False

    def observe(self, t: float, latency: Optional[float], ok: bool) -> None:
        if self.slo.metric == LATENCY:
            # Latency objectives are conditioned on success: failed
            # requests have no latency and are the availability SLO's
            # problem, exactly like a latency SLI over 2xx responses.
            if ok and latency is not None:
                self.primary.record(t, latency)
                self.short.record(t, latency)
        else:
            self.primary.record(t, 1.0 if ok else 0.0)
            self.short.record(t, 1.0 if ok else 0.0)

    def _measure(
        self, sensor: WindowedLatency
    ) -> Tuple[Optional[float], Optional[float]]:
        """(measured value, burn rate) over one window, or Nones."""
        slo = self.slo
        if slo.metric == LATENCY:
            value = sensor.percentile(slo.percentile)
            bad = sensor.fraction_over(slo.threshold)
            if value is None or bad is None:
                return None, None
            return value, bad / slo.budget
        value = sensor.mean()  # ok-fraction
        if value is None:
            return None, None
        return value, (1.0 - value) / slo.budget

    def evaluate(self, t: float) -> Tuple[
        Optional[float], Optional[float], Optional[float], Optional[str]
    ]:
        """(value, burn, fast_burn, transition) at time *t*.

        ``transition`` is an alert kind when the primary-window verdict
        flipped, else ``None``. A latency SLO is in violation exactly
        when the windowed percentile exceeds the threshold; an
        availability SLO when the ok-fraction drops below target.
        """
        value, burn = self._measure(self.primary)
        _, fast_burn = self._measure(self.short)
        if value is None:
            return None, None, fast_burn, None
        if self.slo.metric == LATENCY:
            violated = value > self.slo.threshold
        else:
            violated = value < self.slo.threshold
        transition = None
        if violated and not self.breached:
            transition = ALERT_BREACH
        elif not violated and self.breached:
            transition = ALERT_RECOVERY
        self.breached = violated
        return value, burn, fast_burn, transition


class SLOMonitor:
    """Evaluates SLOs on the event loop while the simulation runs.

    Feed completions through :meth:`observe` (or :meth:`attach` a
    client, which chains its ``on_complete``); :meth:`start` schedules
    the periodic evaluation. Breach/recovery transitions are appended
    to :attr:`alerts`, burn rates stream into :attr:`burn_series`, and
    everything mirrors into the metrics *registry* when given.
    """

    def __init__(
        self,
        sim: Simulator,
        slos: Sequence[SLO],
        registry: Optional[MetricsRegistry] = None,
        interval: float = 0.01,
        min_samples: int = 20,
    ) -> None:
        if not slos:
            raise ReproError("SLOMonitor needs at least one SLO")
        if interval <= 0:
            raise ReproError(f"interval must be > 0, got {interval!r}")
        if min_samples < 1:
            raise ReproError(f"min_samples must be >= 1, got {min_samples!r}")
        self.sim = sim
        self.registry = registry
        self.interval = interval
        self.min_samples = min_samples
        self.states = [_SLOState(slo) for slo in slos]
        self.alerts: List[SLOAlert] = []
        self.burn_series: Dict[str, TimeSeries] = {
            state.slo.name: TimeSeries(f"burn[{state.slo.name}]")
            for state in self.states
        }
        self.evaluations = 0
        self.stop_at: Optional[float] = None
        self._started = False
        #: breach-state listeners, e.g. an autoscaler forcing scale-up;
        #: called as ``fn(alert)`` on every transition.
        self.listeners: List[Callable[[SLOAlert], None]] = []

    @property
    def slos(self) -> List[SLO]:
        return [state.slo for state in self.states]

    # Feeding -----------------------------------------------------------

    def observe(
        self, completed_at: float, latency: Optional[float], ok: bool = True
    ) -> None:
        """Record one request completion into every SLO window."""
        for state in self.states:
            state.observe(completed_at, latency, ok)

    def attach(self, client) -> None:
        """Chain into *client*'s completion hook (keeps any existing
        ``on_complete`` callback)."""
        previous = client._extra_on_complete

        def hook(request) -> None:
            ok = (request.outcome or "ok") == "ok"
            self.observe(request.completed_at, request.latency, ok)
            if previous is not None:
                previous(request)

        client._extra_on_complete = hook

    # Evaluation --------------------------------------------------------

    def start(self, stop_at: Optional[float] = None) -> None:
        """Schedule periodic evaluation every ``interval`` simulated
        seconds (monitor priority: after the completions at each
        timestamp, so a crossing is seen at the first evaluation at or
        after it happens)."""
        if self._started:
            raise ReproError("SLOMonitor already started")
        self._started = True
        self.stop_at = stop_at
        self.sim.schedule(self.interval, self._check, priority=PRIORITY_MONITOR)

    def _check(self) -> None:
        now = self.sim.now
        for state in self.states:
            name = state.slo.name
            if len(state.primary) < self.min_samples:
                # Too few samples for a meaningful percentile — treat
                # as "no verdict", like an alerter with no data.
                continue
            value, burn, fast_burn, transition = state.evaluate(now)
            if value is None:
                continue
            self.burn_series[name].append(now, burn)
            if self.registry is not None:
                self.registry.gauge("slo_burn_rate", slo=name).set(burn)
                self.registry.gauge("slo_breached", slo=name).set(
                    1.0 if state.breached else 0.0
                )
            if transition is not None:
                severity = (
                    "page"
                    if transition == ALERT_BREACH
                    and fast_burn is not None
                    and fast_burn >= 1.0
                    else "warn"
                )
                alert = SLOAlert(
                    t=now,
                    slo=name,
                    kind=transition,
                    value=value,
                    threshold=state.slo.threshold,
                    burn_rate=burn,
                    fast_burn_rate=fast_burn,
                    severity=severity,
                )
                self.alerts.append(alert)
                if self.registry is not None:
                    self.registry.counter(
                        "slo_alerts_total", slo=name, kind=transition
                    ).inc()
                for listener in self.listeners:
                    listener(alert)
        self.evaluations += 1
        if self.stop_at is None:
            # No horizon: keep riding while anything else is pending,
            # but stand down once this check is the only live event —
            # otherwise a drain-style run would never finish.
            if len(self.sim.events) > 0:
                self.sim.schedule(
                    self.interval, self._check, priority=PRIORITY_MONITOR
                )
        elif now + self.interval <= self.stop_at:
            self.sim.schedule(
                self.interval, self._check, priority=PRIORITY_MONITOR
            )

    # Reporting ---------------------------------------------------------

    def breaches(self) -> List[SLOAlert]:
        return [a for a in self.alerts if a.kind == ALERT_BREACH]

    def time_in_breach(self) -> Dict[str, float]:
        """Simulated seconds each SLO spent in breach (breach →
        recovery, with a still-open breach closed at the last
        evaluation time or ``stop_at``)."""
        out: Dict[str, float] = {s.slo.name: 0.0 for s in self.states}
        opened: Dict[str, float] = {}
        last_t = self.sim.now if self.stop_at is None else min(
            self.sim.now, self.stop_at
        )
        for alert in self.alerts:
            if alert.kind == ALERT_BREACH:
                opened.setdefault(alert.slo, alert.t)
            elif alert.slo in opened:
                out[alert.slo] += alert.t - opened.pop(alert.slo)
        for name, t0 in opened.items():
            out[name] += max(0.0, last_t - t0)
        return out

    def summary(self) -> Dict[str, Dict[str, object]]:
        """Per-SLO verdicts for run manifests and reports."""
        in_breach = self.time_in_breach()
        out: Dict[str, Dict[str, object]] = {}
        for state in self.states:
            name = state.slo.name
            series = self.burn_series[name]
            burns = series.values
            value, burn = state._measure(state.primary)
            out[name] = {
                "metric": state.slo.metric,
                "threshold": state.slo.threshold,
                "window_s": state.slo.window,
                "breaches": sum(
                    1 for a in self.alerts
                    if a.slo == name and a.kind == ALERT_BREACH
                ),
                "pages": sum(
                    1 for a in self.alerts
                    if a.slo == name and a.severity == "page"
                ),
                "time_in_breach_s": in_breach[name],
                "final_value": value,
                "final_burn_rate": burn,
                "max_burn_rate": float(burns.max()) if len(series) else None,
                "breached_now": state.breached,
            }
        return out

    def __repr__(self) -> str:
        return (
            f"<SLOMonitor slos={[s.slo.name for s in self.states]} "
            f"alerts={len(self.alerts)}>"
        )
