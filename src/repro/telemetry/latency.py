"""Latency recording and percentile statistics.

The paper reports load-latency curves of mean and tail (99th
percentile) latency with the pre-saturation region measured after
discarding warmup. :class:`LatencyRecorder` stores (completion time,
latency) pairs and answers exact (sample) percentile queries over any
time window; :class:`WindowedLatency` keeps only a trailing window —
what the power manager's decision loop consumes.
"""

from __future__ import annotations

import bisect
from collections import deque
from typing import Deque, List, Optional, Tuple

import numpy as np

from ..errors import ReproError


class LatencyRecorder:
    """Append-only record of request latencies."""

    def __init__(self, name: str = "latency") -> None:
        self.name = name
        self._times: List[float] = []
        self._values: List[float] = []

    def record(self, completed_at: float, latency: float) -> None:
        if latency < 0:
            raise ReproError(f"negative latency {latency!r}")
        if self._times and completed_at < self._times[-1]:
            # Completions arrive in event order, but keep the recorder
            # robust to merged streams by inserting in place.
            idx = bisect.bisect_right(self._times, completed_at)
            self._times.insert(idx, completed_at)
            self._values.insert(idx, latency)
            return
        self._times.append(completed_at)
        self._values.append(latency)

    # Queries ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._values)

    def _window(self, since: float, until: Optional[float]) -> np.ndarray:
        lo = bisect.bisect_left(self._times, since)
        hi = len(self._times) if until is None else bisect.bisect_right(
            self._times, until
        )
        return np.asarray(self._values[lo:hi])

    def count(self, since: float = 0.0, until: Optional[float] = None) -> int:
        return int(self._window(since, until).size)

    def mean(self, since: float = 0.0, until: Optional[float] = None) -> float:
        window = self._window(since, until)
        if window.size == 0:
            raise ReproError(f"{self.name}: no samples in window")
        return float(window.mean())

    def percentile(
        self, q: float, since: float = 0.0, until: Optional[float] = None
    ) -> float:
        """Sample percentile; *q* in percent (99 = p99)."""
        if not 0 <= q <= 100:
            raise ReproError(f"percentile must be in [0,100], got {q!r}")
        window = self._window(since, until)
        if window.size == 0:
            raise ReproError(f"{self.name}: no samples in window")
        return float(np.percentile(window, q))

    def p50(self, since: float = 0.0) -> float:
        return self.percentile(50, since)

    def p95(self, since: float = 0.0) -> float:
        return self.percentile(95, since)

    def p99(self, since: float = 0.0) -> float:
        return self.percentile(99, since)

    def max(self, since: float = 0.0, until: Optional[float] = None) -> float:
        window = self._window(since, until)
        if window.size == 0:
            raise ReproError(f"{self.name}: no samples in window")
        return float(window.max())

    def throughput(self, since: float, until: float) -> float:
        """Completions per second over ``[since, until]``."""
        if until <= since:
            raise ReproError("throughput window must have positive length")
        return self.count(since, until) / (until - since)

    def samples(self) -> Tuple[np.ndarray, np.ndarray]:
        """(completion_times, latencies) copies, for plotting/analysis."""
        return np.asarray(self._times), np.asarray(self._values)

    def __repr__(self) -> str:
        return f"<LatencyRecorder {self.name} n={len(self)}>"


class WindowedLatency:
    """Trailing-window latency view (the power manager's sensor).

    Keeps only samples newer than ``window`` seconds behind the newest
    completion timestamp seen, in O(1) amortised per in-order record
    (out-of-order stragglers from merged streams pay an in-place
    insertion and are dropped outright when already past the window).
    """

    def __init__(self, window: float, name: str = "windowed") -> None:
        if window <= 0:
            raise ReproError(f"window must be > 0, got {window!r}")
        self.window = float(window)
        self.name = name
        self._samples: Deque[Tuple[float, float]] = deque()
        self._latest = float("-inf")

    def record(self, completed_at: float, latency: float) -> None:
        # Merged completion streams (see LatencyRecorder.record) may
        # deliver out of order; the eviction horizon must track the max
        # timestamp *seen*, not the latest inserted — an old straggler
        # sample must neither rewind the window nor linger in it.
        self._latest = max(self._latest, completed_at)
        horizon = self._latest - self.window
        if completed_at >= horizon:
            if self._samples and completed_at < self._samples[-1][0]:
                # Rare out-of-order arrival: insert in place so the
                # deque stays time-sorted and front eviction stays O(1).
                position = len(self._samples)
                while position > 0 and self._samples[position - 1][0] > completed_at:
                    position -= 1
                self._samples.insert(position, (completed_at, latency))
            else:
                self._samples.append((completed_at, latency))
        while self._samples and self._samples[0][0] < horizon:
            self._samples.popleft()

    def __len__(self) -> int:
        return len(self._samples)

    def percentile(self, q: float) -> Optional[float]:
        """Trailing-window percentile, or ``None`` with no samples."""
        if not self._samples:
            return None
        values = np.fromiter((v for _, v in self._samples), dtype=float)
        return float(np.percentile(values, q))

    def mean(self) -> Optional[float]:
        if not self._samples:
            return None
        return float(np.mean([v for _, v in self._samples]))

    def fraction_over(self, threshold: float) -> Optional[float]:
        """Fraction of windowed samples strictly above *threshold* —
        the "bad event" rate an SLO burn-rate evaluation needs. ``None``
        with no samples."""
        if not self._samples:
            return None
        over = sum(1 for _, v in self._samples if v > threshold)
        return over / len(self._samples)

    def clear(self) -> None:
        self._samples.clear()

    def __repr__(self) -> str:
        return f"<WindowedLatency {self.name} window={self.window}s n={len(self)}>"
