"""Availability over time: the fraction of requests resolving ``ok``.

Subscribes to the dispatcher's outcome stream and buckets resolutions
into fixed windows; each non-empty window contributes one point
(window end, ok-ratio) to a :class:`~repro.telemetry.TimeSeries`. The
crash/recover experiments assert on exactly this curve: availability
dips when instances die and climbs back as retries shift load onto the
survivors.
"""

from __future__ import annotations

from ..engine import Simulator
from ..service import Request
from ..service.job import OUTCOME_OK
from .timeseries import TimeSeries


class AvailabilityMonitor:
    """Windowed ok-ratio of a dispatcher's resolved requests."""

    def __init__(self, sim: Simulator, dispatcher, window: float = 0.1) -> None:
        """Attach to *dispatcher* (anything exposing ``on_outcome``);
        *window* is the bucket width in simulated seconds."""
        self.sim = sim
        self.window = float(window)
        self.series = TimeSeries("availability")
        self._bucket_end = 0.0
        self._ok = 0
        self._total = 0
        self.total_ok = 0
        self.total_resolved = 0
        dispatcher.on_outcome(self._on_outcome)

    def _on_outcome(self, request: Request) -> None:
        now = self.sim.now
        if now >= self._bucket_end:
            self._flush()
            # Align the new bucket to the window grid.
            periods = int(now / self.window) + 1
            self._bucket_end = periods * self.window
        self._total += 1
        self.total_resolved += 1
        if request.outcome == OUTCOME_OK:
            self._ok += 1
            self.total_ok += 1

    def _flush(self) -> None:
        if self._total:
            self.series.append(self._bucket_end, self._ok / self._total)
        self._ok = 0
        self._total = 0

    def finish(self) -> TimeSeries:
        """Flush the open bucket and return the availability series."""
        self._flush()
        return self.series

    @property
    def availability(self) -> float:
        """Overall ok-ratio across the whole run (1.0 when idle)."""
        if self.total_resolved == 0:
            return 1.0
        return self.total_ok / self.total_resolved

    def __repr__(self) -> str:
        return (
            f"<AvailabilityMonitor ok={self.total_ok}/{self.total_resolved}>"
        )
