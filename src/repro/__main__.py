"""Command-line interface.

::

    python -m repro run <spec-dir> [--seed N] [--until S] [--real]
        [--trace] [--trace-sample R] [--trace-dir DIR]
        [--slo SPEC ...] [--scrape-interval S] [--profile]
    python -m repro experiments list
    python -m repro experiments run <exp-id> [--seed N] [--jobs N]
        [--run-dir DIR] [--no-resume] [--audit] [--fault-plan FILE]
        [--trace-dir DIR] [--trace-sample R] [--slo SPEC ...]
        [--scrape-interval S]
        [--shards N] [--shard-timeout S] [--shard-restarts N]
    python -m repro analyze <trace-dir> [--percentiles LIST] [--top K]
        [--timeline]

``run`` loads a Table I spec directory (machines.json, services/,
graph.json, path.json, client.json, optional faults.json), simulates
it, and prints the end-to-end latency summary. ``experiments`` exposes
the figure/table registry; ``--run-dir`` journals completed sweep
points so a killed run resumes where it stopped (see
docs/operations.md). ``--trace``/``--trace-dir`` record per-request
spans and export them as Perfetto and OTLP JSON (see
docs/observability.md). ``--slo`` attaches live objectives
(``p99<5ms``, ``avail>99.9%``) evaluated on the simulation clock;
``--profile`` times event handlers; ``--scrape-interval`` samples
per-tier utilisation/queue-depth and client QPS/p99 into sim-time
timelines exported as ``timeseries.json`` + Perfetto counter tracks
(see docs/observability.md); ``analyze`` rebuilds the full analytics
report offline from exported OTLP trace files, and with ``--timeline``
also renders exported timeline artifacts (per-tier utilisation over
time, shard straggler ranking).

Exit codes: 0 on success, 2 on configuration/simulation errors
(:class:`~repro.errors.ReproError`, printed as a one-line message),
130 on Ctrl-C — the journal and manifest are already flushed by the
time the process exits, so an interrupted ``--run-dir`` sweep is
resumable.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .analysis import (
    analyze_traces,
    format_timeline_report,
    load_timelines,
    load_traces,
)
from .config import SimulationSpec
from .engine import EngineProfiler
from .errors import ReproError
from .experiments import registry
from .faults import load_fault_plan
from .telemetry import (
    MetricsRegistry,
    Scraper,
    SLOMonitor,
    TraceConfig,
    format_analytics_report,
    format_run_manifest,
    format_table,
    ms,
    parse_slo,
    scrape_tiers,
    timeline_payload,
    write_otlp,
    write_perfetto,
    write_timeline,
)
from .testbed import RealismConfig


def _cmd_run(args: argparse.Namespace) -> int:
    spec = SimulationSpec.load(args.spec_dir)
    realism = RealismConfig() if args.real else None
    world, client = spec.build(seed=args.seed, realism=realism)
    if client is None:
        print("spec has no client.json; nothing to drive", file=sys.stderr)
        return 2
    tracing = args.trace or args.trace_dir is not None
    if tracing:
        world.dispatcher.trace = TraceConfig(sample_rate=args.trace_sample)
    slo_monitor = None
    if args.slo:
        window = (
            min(1.0, args.until) if args.until is not None else 1.0
        )
        slos = [parse_slo(spec_str, window=window) for spec_str in args.slo]
        interval = (
            max(args.until / 100.0, 0.005)
            if args.until is not None else 0.01
        )
        slo_monitor = SLOMonitor(world.sim, slos, interval=interval)
        slo_monitor.attach(client)
        slo_monitor.start(stop_at=args.until)
    scraper = None
    if args.scrape_interval is not None:
        metrics = MetricsRegistry()
        metrics.instrument_world(world)
        scraper = Scraper(
            world.sim,
            interval=args.scrape_interval,
            tiers=scrape_tiers(world.deployment),
            client=client,
            registry=metrics,
            stop_at=args.until,
        ).start()
    if args.profile:
        world.sim.profiler = EngineProfiler()
    client.start()
    world.sim.run(until=args.until)
    if client.requests_ok == 0:
        print("no requests completed ok; raise --until or the client's "
              "stop_at/max_requests", file=sys.stderr)
        return 1
    lat = client.latencies
    rows = [
        ["requests sent", client.requests_sent],
        ["requests ok", client.requests_ok],
    ]
    # Only surface error rows when something actually went wrong (fault
    # plans / resilience policies); fault-free runs keep the old shape.
    for outcome in ("timeout", "shed", "failed"):
        count = client.outcomes.get(outcome, 0)
        if count:
            rows.append([f"requests {outcome}", count])
    rows += [
        ["simulated time (s)", round(world.sim.now, 4)],
        ["events processed", world.sim.events_processed],
        ["mean latency (ms)", ms(lat.mean())],
        ["p50 (ms)", ms(lat.p50())],
        ["p95 (ms)", ms(lat.p95())],
        ["p99 (ms)", ms(lat.p99())],
    ]
    timeline = None
    scrape_series = None
    if scraper is not None:
        scrape_series = scraper.snapshot()
        meta = {"spec": str(args.spec_dir), "seed": args.seed}
        if args.until is not None:
            meta["duration"] = args.until
        timeline = timeline_payload(
            scrape_series, interval=args.scrape_interval, meta=meta
        )
        rows.append(["timeline series", len(scrape_series)])
    if tracing:
        tracer = world.dispatcher.tracer
        rows.append(["traces sampled", len(tracer.traces)])
        if args.trace_dir is not None:
            base = Path(args.trace_dir)
            base.mkdir(parents=True, exist_ok=True)
            write_perfetto(base / "trace.perfetto.json", tracer.traces,
                           counters=scrape_series)
            write_otlp(base / "trace.otlp.json", tracer.traces)
            rows.append(["trace dir", str(base)])
    if timeline is not None and args.trace_dir is not None:
        base = Path(args.trace_dir)
        base.mkdir(parents=True, exist_ok=True)
        write_timeline(base / "timeseries.json", timeline)
        rows.append(["timeline artifact", str(base / "timeseries.json")])
    print(format_table(
        ["metric", "value"],
        rows,
        title=f"uqSim run of {args.spec_dir}"
              + (" [real-system surrogate]" if args.real else ""),
    ))
    if tracing or slo_monitor is not None or args.profile:
        analytics = None
        if tracing and world.dispatcher.tracer.traces:
            analytics = analyze_traces(world.dispatcher.tracer.traces)
        print()
        print(format_analytics_report(
            analytics,
            slo=slo_monitor.summary() if slo_monitor is not None else None,
            profile=(
                world.sim.profiler.summary() if args.profile else None
            ),
        ))
    if timeline is not None:
        print()
        print(format_timeline_report(timeline, name=str(args.spec_dir)))
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    if args.action == "list":
        rows = [
            [spec.exp_id, spec.paper_ref, spec.title]
            for spec in registry.all_experiments()
        ]
        print(format_table(["id", "paper", "title"], rows))
        return 0
    try:
        spec = registry.get(args.exp_id)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    print(f"running {spec.exp_id} ({spec.paper_ref}): {spec.title} ...")
    kwargs = {} if args.seed is None else {"seed": args.seed}
    fault_plan = None
    if args.fault_plan is not None:
        fault_plan = load_fault_plan(args.fault_plan)
    result = spec.run(
        jobs=args.jobs,
        run_dir=args.run_dir,
        resume=args.resume,
        audit=args.audit,
        trace_dir=args.trace_dir,
        trace_sample=args.trace_sample,
        slo=args.slo or None,
        scrape_interval=args.scrape_interval,
        fault_plan=fault_plan,
        shards=args.shards,
        shard_timeout=args.shard_timeout,
        shard_restarts=args.shard_restarts,
        **kwargs,
    )
    print(repr(result))
    if args.run_dir is not None:
        manifest_path = Path(args.run_dir) / "manifest.json"
        if manifest_path.exists():
            print(format_run_manifest(json.loads(manifest_path.read_text())))
    if args.trace_dir is not None:
        analytics = analyze_traces(load_traces(args.trace_dir))
        print()
        print(format_analytics_report(analytics))
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    percentiles = tuple(float(q) for q in args.percentiles.split(","))
    first = True
    if args.timeline:
        base = Path(args.trace_dir)
        for path, payload in load_timelines(base):
            try:
                label = str(path.relative_to(base))
            except ValueError:
                label = str(path)
            if not first:
                print()
            print(format_timeline_report(payload, name=label))
            first = False
    try:
        traces = load_traces(args.trace_dir)
    except ReproError:
        # --timeline directories need not hold OTLP traces (a
        # scrape-only run exports just timeseries.json); without
        # --timeline the old contract stands: no traces is an error.
        if not args.timeline:
            raise
        traces = []
    if traces:
        analytics = analyze_traces(
            traces, percentiles=percentiles, top=args.top
        )
        if not first:
            print()
        print(format_analytics_report(analytics, top=args.top))
    return 0


def main(argv=None) -> int:
    """Parse arguments and dispatch to the chosen subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro", description="uqSim reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="simulate a Table I spec directory")
    run_parser.add_argument("spec_dir")
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.add_argument(
        "--until", type=float, default=None,
        help="simulation horizon in seconds (default: run to drain)",
    )
    run_parser.add_argument(
        "--real", action="store_true",
        help="apply the real-system surrogate (noise + timeouts)",
    )
    run_parser.add_argument(
        "--trace", action="store_true",
        help="record per-request span traces (attempt-aware; see "
             "docs/observability.md)",
    )
    run_parser.add_argument(
        "--trace-sample", type=float, default=1.0, metavar="R",
        help="probability of sampling each request's trace (default 1.0)",
    )
    run_parser.add_argument(
        "--trace-dir", default=None, metavar="DIR",
        help="export sampled traces to DIR as Perfetto and OTLP JSON "
             "(implies --trace)",
    )
    run_parser.add_argument(
        "--slo", action="append", default=[], metavar="SPEC",
        help="attach a live SLO (e.g. 'p99<5ms' or 'avail>99.9%%'); "
             "repeatable; verdicts print in the analytics report",
    )
    run_parser.add_argument(
        "--scrape-interval", type=float, default=None, metavar="SECONDS",
        help="sample per-tier utilisation/queue-depth and client "
             "QPS/p99 every S simulated seconds into named timelines "
             "(off by default; printed as tables, and exported as "
             "timeseries.json + Perfetto counter tracks with "
             "--trace-dir)",
    )
    run_parser.add_argument(
        "--profile", action="store_true",
        help="time event handlers and report engine hotspots",
    )
    run_parser.set_defaults(func=_cmd_run)

    exp_parser = sub.add_parser("experiments", help="figure/table registry")
    exp_sub = exp_parser.add_subparsers(dest="action", required=True)
    exp_sub.add_parser("list", help="list experiment ids")
    exp_run = exp_sub.add_parser("run", help="run one experiment")
    exp_run.add_argument("exp_id")
    exp_run.add_argument(
        "--seed", type=int, default=None,
        help="override the experiment's default RNG seed",
    )
    exp_run.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for sweep fan-out (0 = all cores; "
             "results are identical to --jobs 1)",
    )
    exp_run.add_argument(
        "--run-dir", default=None,
        help="journal completed sweep points to this directory so a "
             "killed run can resume (see docs/operations.md)",
    )
    exp_run.add_argument(
        "--no-resume", dest="resume", action="store_false",
        help="with --run-dir: recompute every point instead of reusing "
             "journaled ones",
    )
    exp_run.add_argument(
        "--audit", action="store_true",
        help="verify request conservation after each measurement",
    )
    exp_run.add_argument(
        "--fault-plan", default=None, metavar="FILE",
        help="arm a faults.json plan against each measured world "
             "(only experiments that support fault injection)",
    )
    exp_run.add_argument(
        "--trace-dir", default=None, metavar="DIR",
        help="export sampled request traces (Perfetto + OTLP JSON) "
             "to this directory",
    )
    exp_run.add_argument(
        "--trace-sample", type=float, default=1.0, metavar="R",
        help="with --trace-dir: per-request trace sampling rate",
    )
    exp_run.add_argument(
        "--slo", action="append", default=[], metavar="SPEC",
        help="attach a live SLO per measurement (e.g. 'p99<5ms'); "
             "repeatable; summaries land in the run manifest",
    )
    exp_run.add_argument(
        "--scrape-interval", type=float, default=None, metavar="SECONDS",
        help="sample sim-time timelines every S simulated seconds per "
             "measurement (only experiments that support scraping; "
             "artifacts export with --trace-dir, shard-runtime "
             "introspection rides the timeline under --shards)",
    )
    exp_run.add_argument(
        "--shards", type=int, default=1, metavar="N",
        help="run each measurement on the sharded parallel simulation "
             "core with N shards (conservative time-window sync; "
             "fig5/fig12b run through the generic shard adapter, fig14 "
             "through the hand-written fan-out port; --shards 1 is "
             "always the single-simulator engine)",
    )
    exp_run.add_argument(
        "--shard-timeout", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget per conservative window before a shard "
             "worker counts as hung and is killed + replayed "
             "(default 300; needs --shards N)",
    )
    exp_run.add_argument(
        "--shard-restarts", type=int, default=None, metavar="N",
        help="restart budget per shard worker: dead/hung workers are "
             "rebuilt and replayed from the round journal up to N "
             "times before the run aborts (default 3; needs --shards N)",
    )
    exp_parser.set_defaults(func=_cmd_experiments)

    analyze_parser = sub.add_parser(
        "analyze",
        help="aggregate analytics over exported OTLP trace files",
    )
    analyze_parser.add_argument(
        "trace_dir",
        help="directory holding *.otlp.json files (searched recursively)",
    )
    analyze_parser.add_argument(
        "--percentiles", default="50,95,99", metavar="LIST",
        help="comma-separated percentiles to attribute (default 50,95,99)",
    )
    analyze_parser.add_argument(
        "--top", type=int, default=8, metavar="K",
        help="rows per table / exemplars per node (default 8)",
    )
    analyze_parser.add_argument(
        "--timeline", action="store_true",
        help="also render timeline artifacts (timeseries.json, "
             "written by --scrape-interval): per-tier utilisation and "
             "client QPS/p99 over sim-time, plus the reconciled shard "
             "straggler report for sharded runs; trace analytics "
             "become optional when set",
    )
    analyze_parser.set_defaults(func=_cmd_analyze)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except KeyboardInterrupt:
        # durable_map flushed the journal and wrote an 'interrupted'
        # manifest before this propagated; resuming is safe.
        print("interrupted; journaled points are kept — re-run with the "
              "same --run-dir to resume", file=sys.stderr)
        return 130
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
