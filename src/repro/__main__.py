"""Command-line interface.

::

    python -m repro run <spec-dir> [--seed N] [--until S] [--real]
    python -m repro experiments list
    python -m repro experiments run <exp-id> [--seed N] [--jobs N]

``run`` loads a Table I spec directory (machines.json, services/,
graph.json, path.json, client.json, optional faults.json), simulates
it, and prints the end-to-end latency summary. ``experiments`` exposes
the figure/table registry. Configuration and simulation errors
(:class:`~repro.errors.ReproError`) exit with code 2 and a one-line
message.
"""

from __future__ import annotations

import argparse
import sys

from .config import SimulationSpec
from .errors import ReproError
from .experiments import registry
from .telemetry import format_table, ms
from .testbed import RealismConfig


def _cmd_run(args: argparse.Namespace) -> int:
    spec = SimulationSpec.load(args.spec_dir)
    realism = RealismConfig() if args.real else None
    world, client = spec.build(seed=args.seed, realism=realism)
    if client is None:
        print("spec has no client.json; nothing to drive", file=sys.stderr)
        return 2
    client.start()
    world.sim.run(until=args.until)
    if client.requests_ok == 0:
        print("no requests completed ok; raise --until or the client's "
              "stop_at/max_requests", file=sys.stderr)
        return 1
    lat = client.latencies
    rows = [
        ["requests sent", client.requests_sent],
        ["requests ok", client.requests_ok],
    ]
    # Only surface error rows when something actually went wrong (fault
    # plans / resilience policies); fault-free runs keep the old shape.
    for outcome in ("timeout", "shed", "failed"):
        count = client.outcomes.get(outcome, 0)
        if count:
            rows.append([f"requests {outcome}", count])
    rows += [
        ["simulated time (s)", round(world.sim.now, 4)],
        ["events processed", world.sim.events_processed],
        ["mean latency (ms)", ms(lat.mean())],
        ["p50 (ms)", ms(lat.p50())],
        ["p95 (ms)", ms(lat.p95())],
        ["p99 (ms)", ms(lat.p99())],
    ]
    print(format_table(
        ["metric", "value"],
        rows,
        title=f"uqSim run of {args.spec_dir}"
              + (" [real-system surrogate]" if args.real else ""),
    ))
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    if args.action == "list":
        rows = [
            [spec.exp_id, spec.paper_ref, spec.title]
            for spec in registry.all_experiments()
        ]
        print(format_table(["id", "paper", "title"], rows))
        return 0
    try:
        spec = registry.get(args.exp_id)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    print(f"running {spec.exp_id} ({spec.paper_ref}): {spec.title} ...")
    kwargs = {} if args.seed is None else {"seed": args.seed}
    result = spec.run(jobs=args.jobs, **kwargs)
    print(repr(result))
    return 0


def main(argv=None) -> int:
    """Parse arguments and dispatch to the chosen subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro", description="uqSim reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="simulate a Table I spec directory")
    run_parser.add_argument("spec_dir")
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.add_argument(
        "--until", type=float, default=None,
        help="simulation horizon in seconds (default: run to drain)",
    )
    run_parser.add_argument(
        "--real", action="store_true",
        help="apply the real-system surrogate (noise + timeouts)",
    )
    run_parser.set_defaults(func=_cmd_run)

    exp_parser = sub.add_parser("experiments", help="figure/table registry")
    exp_sub = exp_parser.add_subparsers(dest="action", required=True)
    exp_sub.add_parser("list", help="list experiment ids")
    exp_run = exp_sub.add_parser("run", help="run one experiment")
    exp_run.add_argument("exp_id")
    exp_run.add_argument(
        "--seed", type=int, default=None,
        help="override the experiment's default RNG seed",
    )
    exp_run.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for sweep fan-out (0 = all cores; "
             "results are identical to --jobs 1)",
    )
    exp_parser.set_defaults(func=_cmd_experiments)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
