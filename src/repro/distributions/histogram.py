"""Empirical processing-time histograms.

Paper Table I / SSIII-B: stage processing times may be supplied as
"processing time histograms collected through profiling, which requires
users to instrument applications and record timestamps at boundaries of
queueing stages". This module implements that input format: a binned
PDF, sampled by inverse-CDF with uniform interpolation inside each bin.

The on-disk format is JSON::

    {
      "unit": "us",                  # "s" | "ms" | "us" | "ns"
      "edges": [0, 10, 20, 50],      # n+1 increasing bin edges
      "counts": [5, 90, 5]           # n non-negative bin weights
    }

Counts need not be normalised — they are raw profile counts.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Sequence, Union

import numpy as np

from ..errors import DistributionError
from .base import Distribution

_UNIT_SCALE = {"s": 1.0, "ms": 1e-3, "us": 1e-6, "ns": 1e-9}


class Histogram(Distribution):
    """A binned empirical distribution (times in seconds)."""

    def __init__(self, edges: Sequence[float], counts: Sequence[float]) -> None:
        edges_arr = np.asarray(edges, dtype=float)
        counts_arr = np.asarray(counts, dtype=float)
        if edges_arr.ndim != 1 or counts_arr.ndim != 1:
            raise DistributionError("edges and counts must be 1-D sequences")
        if len(edges_arr) != len(counts_arr) + 1:
            raise DistributionError(
                f"need len(edges) == len(counts)+1, got "
                f"{len(edges_arr)} edges / {len(counts_arr)} counts"
            )
        if len(counts_arr) == 0:
            raise DistributionError("histogram needs at least one bin")
        if np.any(np.diff(edges_arr) <= 0):
            raise DistributionError("edges must be strictly increasing")
        if edges_arr[0] < 0:
            raise DistributionError("times cannot be negative")
        if np.any(counts_arr < 0):
            raise DistributionError("counts must be non-negative")
        total = counts_arr.sum()
        if total <= 0:
            raise DistributionError("histogram is empty (all counts zero)")
        self.edges = edges_arr
        self.counts = counts_arr
        self._cdf = np.cumsum(counts_arr) / total
        self._pdf = counts_arr / total

    # Construction helpers ---------------------------------------------

    @classmethod
    def from_samples(
        cls, samples: Sequence[float], bins: int = 64
    ) -> "Histogram":
        """Bin raw profiled samples into a histogram distribution."""
        samples_arr = np.asarray(samples, dtype=float)
        if samples_arr.size == 0:
            raise DistributionError("cannot build a histogram from no samples")
        if np.any(samples_arr < 0):
            raise DistributionError("profiled times cannot be negative")
        lo = float(samples_arr.min())
        hi = float(samples_arr.max())
        if lo == hi:
            # Degenerate profile: one tiny bin around the single value.
            width = max(abs(hi), 1e-12) * 1e-6
            return cls([max(lo - width, 0.0), hi + width], [1.0])
        counts, edges = np.histogram(samples_arr, bins=bins)
        return cls(edges, counts)

    @classmethod
    def from_dict(cls, payload: dict) -> "Histogram":
        """Parse the profiling JSON format (see module docstring)."""
        try:
            unit = payload.get("unit", "s")
            edges = payload["edges"]
            counts = payload["counts"]
        except (KeyError, AttributeError) as exc:
            raise DistributionError(f"malformed histogram payload: {exc}") from exc
        if unit not in _UNIT_SCALE:
            raise DistributionError(
                f"unknown unit {unit!r}; expected one of {sorted(_UNIT_SCALE)}"
            )
        scale = _UNIT_SCALE[unit]
        return cls([e * scale for e in edges], counts)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Histogram":
        """Load a histogram file produced by profiling instrumentation."""
        with open(path) as f:
            return cls.from_dict(json.load(f))

    def dump(self, path: Union[str, Path], unit: str = "s") -> None:
        """Write this histogram in the profiling JSON format."""
        if unit not in _UNIT_SCALE:
            raise DistributionError(f"unknown unit {unit!r}")
        scale = _UNIT_SCALE[unit]
        payload = {
            "unit": unit,
            "edges": (self.edges / scale).tolist(),
            "counts": self.counts.tolist(),
        }
        with open(path, "w") as f:
            json.dump(payload, f, indent=2)

    # Distribution interface -------------------------------------------

    def sample(self, rng: np.random.Generator) -> float:
        u = rng.random()
        idx = int(np.searchsorted(self._cdf, u, side="left"))
        idx = min(idx, len(self.counts) - 1)
        lo, hi = self.edges[idx], self.edges[idx + 1]
        return float(lo + rng.random() * (hi - lo))

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        # One block of 2n uniforms, de-interleaved, so the stream is
        # consumed in the same (u, v, u, v, ...) order as n scalar
        # sample() calls — block draws stay bitwise-equivalent to
        # scalar draws (the BufferedSampler contract).
        uv = rng.random(2 * n)
        u = uv[0::2]
        idx = np.minimum(
            np.searchsorted(self._cdf, u, side="left"), len(self.counts) - 1
        )
        lo = self.edges[idx]
        hi = self.edges[idx + 1]
        return lo + uv[1::2] * (hi - lo)

    def mean(self) -> float:
        mids = (self.edges[:-1] + self.edges[1:]) / 2.0
        return float(np.dot(mids, self._pdf))

    def percentile(self, q: float) -> float:
        """Inverse CDF at quantile *q* in [0, 1] (bin-interpolated)."""
        if not 0.0 <= q <= 1.0:
            raise DistributionError(f"quantile must be in [0,1], got {q!r}")
        idx = int(np.searchsorted(self._cdf, q, side="left"))
        idx = min(idx, len(self.counts) - 1)
        prev_cdf = self._cdf[idx - 1] if idx > 0 else 0.0
        bin_mass = self._cdf[idx] - prev_cdf
        frac = 0.0 if bin_mass <= 0 else (q - prev_cdf) / bin_mass
        lo, hi = self.edges[idx], self.edges[idx + 1]
        return float(lo + frac * (hi - lo))

    def __repr__(self) -> str:
        return (
            f"Histogram(bins={len(self.counts)}, "
            f"range=[{self.edges[0]:.3g},{self.edges[-1]:.3g}]s)"
        )
