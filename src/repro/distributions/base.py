"""Distribution interface.

Processing times in uqSim are described either by standard parametric
distributions (paper SSIII-B: "processing time expressed using regular
distributions, such as exponential") or by empirical histograms
collected through profiling. Both implement this interface.

Distributions are **stateless**: sampling takes the caller's
:class:`numpy.random.Generator`, so one distribution object can safely
be shared by many stages/instances while each consumer keeps its own
reproducible stream (see :class:`repro.engine.RandomStreams`).
"""

from __future__ import annotations

import abc

import numpy as np

from ..errors import DistributionError


class Distribution(abc.ABC):
    """A non-negative real-valued distribution (times in seconds)."""

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator) -> float:
        """Draw one value."""

    @abc.abstractmethod
    def mean(self) -> float:
        """Expected value (used for calibration and BigHouse folding)."""

    def minimum(self) -> float:
        """A guaranteed lower bound on every draw (the infimum of the
        support).

        The sharded simulation core uses this as conservative
        *lookahead*: no cross-shard message can arrive sooner than the
        network's minimum delay, so shards may safely simulate that far
        past each other. The default of ``0.0`` is always sound —
        distributions whose support starts higher (Deterministic,
        Uniform, Shifted) override it to unlock a useful lookahead.
        """
        return 0.0

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw *n* values; subclasses override with vectorised versions."""
        return np.array([self.sample(rng) for _ in range(n)])

    # Combinators -------------------------------------------------------

    def scaled(self, factor: float) -> "Distribution":
        """This distribution with every draw multiplied by *factor*.

        The canonical use is DVFS: halving the clock frequency scales
        compute-bound stage times by ~2x.
        """
        from .standard import Scaled

        return Scaled(self, factor)

    def shifted(self, offset: float) -> "Distribution":
        """This distribution with a constant *offset* added to every draw."""
        from .standard import Shifted

        return Shifted(self, offset)


def require_positive(name: str, value: float) -> float:
    """Validate that a distribution parameter is strictly positive."""
    value = float(value)
    if not value > 0:
        raise DistributionError(f"{name} must be > 0, got {value!r}")
    return value


def require_non_negative(name: str, value: float) -> float:
    """Validate that a distribution parameter is >= 0."""
    value = float(value)
    if value < 0:
        raise DistributionError(f"{name} must be >= 0, got {value!r}")
    return value
