"""Frequency-dependent processing-time tables.

Paper SSIII-B: a stage "is assigned to one or more execution time
distributions that describe the stage's processing time under different
settings, like different DVFS configurations"; and SSV-B: "we adjust the
processing time of each execution stage as frequency changes by
providing histograms corresponding to different frequencies".

:class:`FrequencyTable` holds one distribution per DVFS frequency. When
a frequency with no explicit entry is requested, the nearest profiled
frequency's distribution is scaled by the frequency ratio — the standard
first-order model of a compute-bound stage (cycles constant, time
inversely proportional to clock).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..errors import DistributionError
from .base import Distribution
from .buffered import DEFAULT_BLOCK, BufferedSampler


class FrequencyTable:
    """Maps CPU frequency (Hz) to a processing-time distribution."""

    def __init__(
        self,
        table: Dict[float, Distribution],
        compute_fraction: float = 1.0,
    ) -> None:
        """
        *table* maps frequency in Hz to the profiled distribution at that
        frequency. *compute_fraction* in [0, 1] is the share of the stage
        time that scales with frequency (the rest — memory/IO-bound work
        — does not); 1.0 is pure compute.
        """
        if not table:
            raise DistributionError("FrequencyTable needs at least one entry")
        for freq in table:
            if freq <= 0:
                raise DistributionError(f"frequency must be > 0 Hz, got {freq!r}")
        if not 0.0 <= compute_fraction <= 1.0:
            raise DistributionError(
                f"compute_fraction must be in [0,1], got {compute_fraction!r}"
            )
        self._table = dict(sorted(table.items()))
        self.compute_fraction = float(compute_fraction)

    @classmethod
    def single(
        cls,
        dist: Distribution,
        frequency: float,
        compute_fraction: float = 1.0,
    ) -> "FrequencyTable":
        """A table profiled at just one frequency; other points scale."""
        return cls({float(frequency): dist}, compute_fraction)

    @property
    def frequencies(self) -> list:
        """Profiled frequencies, ascending (Hz)."""
        return list(self._table)

    def _nearest(self, frequency: float) -> float:
        freqs = np.asarray(list(self._table), dtype=float)
        return float(freqs[np.argmin(np.abs(freqs - frequency))])

    def scale_factor(self, frequency: float) -> float:
        """Slowdown factor applied when running at *frequency* instead of
        the nearest profiled frequency."""
        base = self._nearest(frequency)
        ratio = base / float(frequency)
        # Amdahl-style: only the compute fraction stretches/shrinks.
        return self.compute_fraction * ratio + (1.0 - self.compute_fraction)

    def at(self, frequency: float) -> Distribution:
        """Distribution for the stage when the core runs at *frequency* Hz."""
        if frequency <= 0:
            raise DistributionError(f"frequency must be > 0 Hz, got {frequency!r}")
        exact = self._table.get(float(frequency))
        if exact is not None:
            return exact
        base = self._nearest(frequency)
        factor = self.scale_factor(frequency)
        if factor == 1.0:
            return self._table[base]
        return self._table[base].scaled(factor)

    def sample(
        self,
        rng: np.random.Generator,
        frequency: Optional[float] = None,
    ) -> float:
        """Draw one processing time, at the highest profiled frequency by
        default (the nominal operating point)."""
        if frequency is None:
            frequency = max(self._table)
        return self.at(frequency).sample(rng)

    def sample_many(
        self,
        rng: np.random.Generator,
        n: int,
        frequency: Optional[float] = None,
    ) -> np.ndarray:
        """Draw *n* processing times at *frequency* in one block."""
        if frequency is None:
            frequency = max(self._table)
        return self.at(frequency).sample_many(rng, n)

    def make_sampler(
        self,
        rng: np.random.Generator,
        block: int = DEFAULT_BLOCK,
    ) -> "FrequencySampler":
        """A block-buffered sampler over this table bound to *rng*.

        The sampler buffers draws of the *profiled* distributions and
        applies the frequency-ratio scale factor per serve, so buffered
        values never go stale across DVFS transitions.
        """
        return FrequencySampler(self, rng, block)

    def mean(self, frequency: Optional[float] = None) -> float:
        """Mean processing time at *frequency* (nominal if omitted)."""
        if frequency is None:
            frequency = max(self._table)
        return self.at(frequency).mean()

    def __repr__(self) -> str:
        ghz = ", ".join(f"{f/1e9:.2f}GHz" for f in self._table)
        return f"FrequencyTable([{ghz}], compute={self.compute_fraction})"


class FrequencySampler:
    """Block-buffered draws from a :class:`FrequencyTable`.

    Keeps one :class:`~repro.distributions.buffered.BufferedSampler`
    per *profiled* frequency and scales each served value by the
    table's frequency-ratio factor for the frequency actually
    requested. Scaling at serve time (instead of buffering the scaled
    distribution) keeps DVFS transitions exact: a frequency change
    takes effect on the very next draw, never a buffer-full later.

    Served values are bitwise-identical to what scalar
    ``table.sample(rng, frequency)`` calls would produce from the same
    generator: the profiled draw consumes the stream identically and
    ``x * factor`` commutes with :class:`~repro.distributions.standard.
    Scaled`'s ``factor * x``.
    """

    __slots__ = ("table", "_rng", "_block", "_buffers", "_bindings",
                 "_nominal")

    def __init__(
        self,
        table: FrequencyTable,
        rng: np.random.Generator,
        block: int = DEFAULT_BLOCK,
    ) -> None:
        self.table = table
        self._rng = rng
        self._block = block
        self._buffers: Dict[float, BufferedSampler] = {}
        # requested frequency -> (profiled-dist buffer, scale factor);
        # DVFS transitions are rare, so this cache almost always hits.
        self._bindings: Dict[float, tuple] = {}
        self._nominal = max(table.frequencies)

    def _bind(self, frequency: float) -> tuple:
        nearest = self.table._nearest(frequency)
        buffer = self._buffers.get(nearest)
        if buffer is None:
            buffer = BufferedSampler(
                self.table._table[nearest], self._rng, self._block
            )
            self._buffers[nearest] = buffer
        binding = (buffer, self.table.scale_factor(frequency))
        self._bindings[frequency] = binding
        return binding

    def sample(self, frequency: Optional[float] = None) -> float:
        """One processing time at *frequency* (nominal if omitted)."""
        if frequency is None:
            frequency = self._nominal
        binding = self._bindings.get(frequency)
        if binding is None:
            if frequency <= 0:
                raise DistributionError(
                    f"frequency must be > 0 Hz, got {frequency!r}"
                )
            binding = self._bind(frequency)
        buffer, factor = binding
        value = buffer.sample()
        return value if factor == 1.0 else value * factor

    def take(self, n: int, frequency: Optional[float] = None) -> list:
        """The next *n* processing times at *frequency*, in order."""
        if frequency is None:
            frequency = self._nominal
        binding = self._bindings.get(frequency)
        if binding is None:
            if frequency <= 0:
                raise DistributionError(
                    f"frequency must be > 0 Hz, got {frequency!r}"
                )
            binding = self._bind(frequency)
        buffer, factor = binding
        values = buffer.take(n)
        if factor == 1.0:
            return values
        return [v * factor for v in values]
