"""Block-buffered sampling: amortise numpy's per-call overhead.

A scalar ``rng.exponential()`` costs roughly a microsecond of Python/
numpy dispatch; drawing a block of 1024 costs barely more than one
scalar draw. :class:`BufferedSampler` exploits that: it draws blocks
through :meth:`Distribution.sample_many
<repro.distributions.base.Distribution.sample_many>` and serves scalars
from the buffer, turning the hottest stochastic call sites (stage
service times, open-loop inter-arrival gaps, network jitter) into list
indexing.

**Determinism contract.** numpy ``Generator`` array draws consume the
underlying bit stream exactly like repeated scalar draws (verified for
every distribution in this library by ``tests/distributions/
test_buffered.py``), so a :class:`BufferedSampler` that is the *sole*
consumer of its generator yields the bitwise-identical value sequence a
scalar-drawing caller would have seen — same values, same generator end
state, block size irrelevant. The one requirement is exclusivity: if
another consumer draws from the same generator between refills, that
consumer observes the post-block state. Call sites therefore attach
buffered samplers to dedicated named streams (see
:meth:`repro.engine.RandomStreams.stream`).
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..errors import DistributionError
from .base import Distribution

#: Default draws per refill. Large enough to amortise numpy dispatch
#: (~1000x), small enough that an idle consumer wastes little work.
DEFAULT_BLOCK = 1024


class BufferedSampler:
    """Serves scalar draws of one distribution from pre-drawn blocks.

    The buffer is materialised as a plain Python list (``tolist()``) so
    serving a value is a list index returning a float — no numpy scalar
    boxing on the hot path.
    """

    __slots__ = ("dist", "rng", "block", "_values", "_idx")

    def __init__(
        self,
        dist: Distribution,
        rng: np.random.Generator,
        block: int = DEFAULT_BLOCK,
    ) -> None:
        if block < 1:
            raise DistributionError(f"block must be >= 1, got {block!r}")
        self.dist = dist
        self.rng = rng
        self.block = int(block)
        self._values: List[float] = []
        self._idx = 0

    def _refill(self) -> None:
        self._values = self.dist.sample_many(self.rng, self.block).tolist()
        self._idx = 0

    def sample(self) -> float:
        """The next draw, exactly as a scalar ``dist.sample(rng)`` would
        have produced it (given sole ownership of ``rng``)."""
        idx = self._idx
        if idx >= len(self._values):
            self._refill()
            idx = 0
        self._idx = idx + 1
        return self._values[idx]

    def take(self, n: int) -> List[float]:
        """The next *n* draws, in stream order."""
        if n < 0:
            raise DistributionError(f"cannot take {n!r} samples")
        out: List[float] = []
        while len(out) < n:
            idx = self._idx
            values = self._values
            want = n - len(out)
            available = len(values) - idx
            if available <= 0:
                # Refill with one big block when the request dwarfs the
                # configured block size — still a single numpy call, and
                # still the same value sequence.
                if want > self.block:
                    out.extend(self.dist.sample_many(self.rng, want).tolist())
                    continue
                self._refill()
                continue
            chunk = min(want, available)
            out.extend(values[idx:idx + chunk])
            self._idx = idx + chunk
        return out

    @property
    def buffered(self) -> int:
        """Draws currently sitting in the buffer (telemetry/tests)."""
        return len(self._values) - self._idx

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"BufferedSampler({self.dist!r}, block={self.block}, "
            f"buffered={self.buffered})"
        )
