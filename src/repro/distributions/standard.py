"""Parametric distributions and combinators.

The library of "regular distributions" the paper supports for stage
processing times, plus combinators (scale, shift, mixture) used to
express DVFS scaling, network propagation offsets, and probabilistic
path behaviour.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..errors import DistributionError
from .base import Distribution, require_non_negative, require_positive


class Deterministic(Distribution):
    """Always returns the same value. ``Deterministic(0)`` is a no-op stage."""

    def __init__(self, value: float) -> None:
        self.value = require_non_negative("value", value)

    def sample(self, rng: np.random.Generator) -> float:
        return self.value

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return np.full(n, self.value)

    def mean(self) -> float:
        return self.value

    def minimum(self) -> float:
        return self.value

    def __repr__(self) -> str:
        return f"Deterministic({self.value!r})"


class Exponential(Distribution):
    """Exponential with the given *mean* (not rate).

    The workhorse of the paper's validation: both inter-arrival times
    and request value sizes are "exponentially distributed" (SSIV-A), and
    the tail-at-scale study uses exponential service around a 1 ms mean.
    """

    def __init__(self, mean: float) -> None:
        self._mean = require_positive("mean", mean)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(self._mean))

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.exponential(self._mean, size=n)

    def mean(self) -> float:
        return self._mean

    def __repr__(self) -> str:
        return f"Exponential(mean={self._mean!r})"


class Uniform(Distribution):
    """Uniform on ``[low, high]``."""

    def __init__(self, low: float, high: float) -> None:
        self.low = require_non_negative("low", low)
        self.high = float(high)
        if self.high < self.low:
            raise DistributionError(
                f"high ({high!r}) must be >= low ({low!r})"
            )

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.uniform(self.low, self.high))

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.uniform(self.low, self.high, size=n)

    def mean(self) -> float:
        return (self.low + self.high) / 2.0

    def minimum(self) -> float:
        return self.low

    def __repr__(self) -> str:
        return f"Uniform({self.low!r}, {self.high!r})"


class LogNormal(Distribution):
    """Log-normal parameterised by the mean and sigma of the underlying normal.

    Heavier-tailed than exponential; a good fit for OS-jittered service
    times and used by the testbed's interference model.
    """

    def __init__(self, mu: float, sigma: float) -> None:
        self.mu = float(mu)
        self.sigma = require_positive("sigma", sigma)

    @classmethod
    def from_mean_cv(cls, mean: float, cv: float) -> "LogNormal":
        """Construct from the distribution's mean and coefficient of variation."""
        mean = require_positive("mean", mean)
        cv = require_positive("cv", cv)
        sigma2 = math.log(1.0 + cv * cv)
        mu = math.log(mean) - sigma2 / 2.0
        return cls(mu, math.sqrt(sigma2))

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.lognormal(self.mu, self.sigma))

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.lognormal(self.mu, self.sigma, size=n)

    def mean(self) -> float:
        return math.exp(self.mu + self.sigma**2 / 2.0)

    def __repr__(self) -> str:
        return f"LogNormal(mu={self.mu!r}, sigma={self.sigma!r})"


class Pareto(Distribution):
    """Pareto (Lomax-style, shifted to start at ``scale``).

    ``shape`` must exceed 1 for the mean to exist — enforced, because a
    stage with infinite mean service time deadlocks any queueing model.
    """

    def __init__(self, scale: float, shape: float) -> None:
        self.scale = require_positive("scale", scale)
        self.shape = float(shape)
        if self.shape <= 1.0:
            raise DistributionError(
                f"Pareto shape must be > 1 for a finite mean, got {shape!r}"
            )

    def sample(self, rng: np.random.Generator) -> float:
        # numpy's pareto is the Lomax distribution: scale * (1 + X).
        return float(self.scale * (1.0 + rng.pareto(self.shape)))

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return self.scale * (1.0 + rng.pareto(self.shape, size=n))

    def mean(self) -> float:
        return self.scale * self.shape / (self.shape - 1.0)

    def minimum(self) -> float:
        return self.scale

    def __repr__(self) -> str:
        return f"Pareto(scale={self.scale!r}, shape={self.shape!r})"


class Erlang(Distribution):
    """Erlang-k: sum of *k* independent exponentials (overall mean given).

    Models multi-step deterministic-ish pipelines with tunable variance
    (CV^2 = 1/k).
    """

    def __init__(self, k: int, mean: float) -> None:
        self.k = int(k)
        if self.k < 1:
            raise DistributionError(f"Erlang k must be >= 1, got {k!r}")
        self._mean = require_positive("mean", mean)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.gamma(self.k, self._mean / self.k))

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.gamma(self.k, self._mean / self.k, size=n)

    def mean(self) -> float:
        return self._mean

    def __repr__(self) -> str:
        return f"Erlang(k={self.k!r}, mean={self._mean!r})"


class Weibull(Distribution):
    """Weibull with the given shape and scale."""

    def __init__(self, shape: float, scale: float) -> None:
        self.shape = require_positive("shape", shape)
        self.scale = require_positive("scale", scale)

    def sample(self, rng: np.random.Generator) -> float:
        return float(self.scale * rng.weibull(self.shape))

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return self.scale * rng.weibull(self.shape, size=n)

    def mean(self) -> float:
        return self.scale * math.gamma(1.0 + 1.0 / self.shape)

    def __repr__(self) -> str:
        return f"Weibull(shape={self.shape!r}, scale={self.scale!r})"


class Mixture(Distribution):
    """Probabilistic mixture of component distributions.

    Used e.g. for bimodal service times (fast cache hit vs slow disk
    miss) when the split is not modelled as separate execution paths.
    """

    def __init__(
        self,
        components: Sequence[Distribution],
        weights: Sequence[float],
    ) -> None:
        if len(components) == 0:
            raise DistributionError("Mixture needs at least one component")
        if len(components) != len(weights):
            raise DistributionError(
                f"{len(components)} components but {len(weights)} weights"
            )
        total = float(sum(weights))
        if not math.isclose(total, 1.0, rel_tol=1e-9, abs_tol=1e-9):
            raise DistributionError(f"mixture weights must sum to 1, got {total!r}")
        if any(w < 0 for w in weights):
            raise DistributionError("mixture weights must be non-negative")
        self.components = list(components)
        self.weights = np.asarray(weights, dtype=float)

    def sample(self, rng: np.random.Generator) -> float:
        idx = int(rng.choice(len(self.components), p=self.weights))
        return self.components[idx].sample(rng)

    def mean(self) -> float:
        return float(
            sum(w * c.mean() for w, c in zip(self.weights, self.components))
        )

    def minimum(self) -> float:
        return min(
            c.minimum()
            for w, c in zip(self.weights, self.components)
            if w > 0
        )

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{w:.3f}*{c!r}" for w, c in zip(self.weights, self.components)
        )
        return f"Mixture({parts})"


class Scaled(Distribution):
    """``factor * inner`` — e.g. DVFS slowdown of a compute-bound stage."""

    def __init__(self, inner: Distribution, factor: float) -> None:
        self.inner = inner
        self.factor = require_positive("factor", factor)

    def sample(self, rng: np.random.Generator) -> float:
        return self.factor * self.inner.sample(rng)

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return self.factor * self.inner.sample_many(rng, n)

    def mean(self) -> float:
        return self.factor * self.inner.mean()

    def minimum(self) -> float:
        return self.factor * self.inner.minimum()

    def __repr__(self) -> str:
        return f"Scaled({self.inner!r}, {self.factor!r})"


class Shifted(Distribution):
    """``inner + offset`` — e.g. a fixed propagation delay plus jitter."""

    def __init__(self, inner: Distribution, offset: float) -> None:
        self.inner = inner
        self.offset = require_non_negative("offset", offset)

    def sample(self, rng: np.random.Generator) -> float:
        return self.offset + self.inner.sample(rng)

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return self.offset + self.inner.sample_many(rng, n)

    def mean(self) -> float:
        return self.offset + self.inner.mean()

    def minimum(self) -> float:
        return self.offset + self.inner.minimum()

    def __repr__(self) -> str:
        return f"Shifted({self.inner!r}, {self.offset!r})"
