"""Processing-time distributions (paper Table I "histograms" input).

Two families, one interface (:class:`Distribution`):

* parametric — :class:`Exponential`, :class:`Deterministic`,
  :class:`Uniform`, :class:`LogNormal`, :class:`Pareto`,
  :class:`Erlang`, :class:`Weibull`, plus :class:`Mixture`,
  :class:`Scaled` and :class:`Shifted` combinators;
* empirical — :class:`Histogram`, the profiling format the paper's users
  collect by instrumenting stage boundaries.

:class:`FrequencyTable` layers DVFS on top: one distribution per
profiled frequency, frequency-ratio scaling in between.

:class:`BufferedSampler` (and the DVFS-aware
:class:`FrequencySampler`) serve scalar draws from numpy block draws —
bitwise-identical to repeated scalar sampling, at a fraction of the
per-call cost. See :mod:`repro.distributions.buffered` for the
determinism contract.
"""

from .base import Distribution
from .buffered import DEFAULT_BLOCK, BufferedSampler
from .frequency import FrequencySampler, FrequencyTable
from .histogram import Histogram
from .standard import (
    Deterministic,
    Erlang,
    Exponential,
    LogNormal,
    Mixture,
    Pareto,
    Scaled,
    Shifted,
    Uniform,
    Weibull,
)

__all__ = [
    "Distribution",
    "Deterministic",
    "Exponential",
    "Uniform",
    "LogNormal",
    "Pareto",
    "Erlang",
    "Weibull",
    "Mixture",
    "Scaled",
    "Shifted",
    "Histogram",
    "FrequencyTable",
    "FrequencySampler",
    "BufferedSampler",
    "DEFAULT_BLOCK",
]
