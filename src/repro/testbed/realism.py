"""The "real system" surrogate.

The paper validates uqSim against real NGINX/memcached/MongoDB/Thrift
deployments on a Xeon cluster (Table II). That testbed is not available
here, so — per the substitution documented in DESIGN.md — the "real"
series of every validation figure comes from the *same* queueing
network simulated with the effects the paper lists as present only in
the real system:

* "the simulator does not capture timeouts and the associated overhead
  of reconnections, which can cause the real system's latency to
  increase rapidly [beyond saturation]" (SSIV-C);
* "the real system is slightly more noisy compared to uqSim, due to
  effects not modeled in the simulator, such as request timeouts,
  TCP/IP contention, and operating system interference from scheduling
  and context switching" (SSV-B).

:class:`RealismConfig` bundles those effects; application builders
accept one and wrap every stage's processing-time distribution, and the
experiment harness applies the client-side timeout/reconnect penalty.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..distributions import Distribution, LogNormal
from ..errors import ConfigError


class Jittered(Distribution):
    """Multiplies each draw by log-normal noise with mean 1 (OS and
    microarchitectural timing variance)."""

    def __init__(self, inner: Distribution, cv: float) -> None:
        if cv <= 0:
            raise ConfigError(f"jitter cv must be > 0, got {cv!r}")
        self.inner = inner
        self.cv = float(cv)
        self._noise = LogNormal.from_mean_cv(1.0, cv)

    def sample(self, rng: np.random.Generator) -> float:
        return self.inner.sample(rng) * self._noise.sample(rng)

    def mean(self) -> float:
        return self.inner.mean()  # noise has mean exactly 1

    def __repr__(self) -> str:
        return f"Jittered({self.inner!r}, cv={self.cv})"


class Interfered(Distribution):
    """Adds a rare scheduling-interference stall to a fraction of draws
    (context switches, kernel housekeeping, cron-like background work)."""

    def __init__(
        self,
        inner: Distribution,
        probability: float,
        stall: Distribution,
    ) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ConfigError(
                f"interference probability must be in [0,1], got {probability!r}"
            )
        self.inner = inner
        self.probability = float(probability)
        self.stall = stall

    def sample(self, rng: np.random.Generator) -> float:
        value = self.inner.sample(rng)
        if self.probability > 0 and rng.random() < self.probability:
            value += self.stall.sample(rng)
        return value

    def mean(self) -> float:
        return self.inner.mean() + self.probability * self.stall.mean()

    def __repr__(self) -> str:
        return (
            f"Interfered({self.inner!r}, p={self.probability}, "
            f"stall={self.stall!r})"
        )


class RealismConfig:
    """Knobs of the real-system surrogate.

    *jitter_cv* — log-normal multiplicative noise on every stage time.
    *interference_prob*/*interference_stall* — probability and length of
    OS scheduling stalls added to stage executions.
    *timeout*/*timeout_penalty* — client-side request timeout: a request
    whose end-to-end latency exceeds *timeout* pays the reconnect
    penalty on top (observed latency), the dominant post-saturation
    effect in the real Thrift experiment (Fig 12a).
    """

    def __init__(
        self,
        jitter_cv: float = 0.08,
        interference_prob: float = 3e-4,
        interference_stall: Optional[Distribution] = None,
        timeout: float = 0.1,
        timeout_penalty: Optional[Distribution] = None,
    ) -> None:
        self.jitter_cv = jitter_cv
        self.interference_prob = interference_prob
        self.interference_stall = interference_stall or LogNormal.from_mean_cv(
            5e-4, 0.8
        )
        if timeout <= 0:
            raise ConfigError(f"timeout must be > 0, got {timeout!r}")
        self.timeout = float(timeout)
        self.timeout_penalty = timeout_penalty or LogNormal.from_mean_cv(
            0.2, 0.5
        )

    def wrap(self, dist: Optional[Distribution]) -> Optional[Distribution]:
        """Layer jitter + interference onto a stage *time* distribution."""
        if dist is None:
            return None
        wrapped: Distribution = Jittered(dist, self.jitter_cv)
        if self.interference_prob > 0:
            wrapped = Interfered(
                wrapped, self.interference_prob, self.interference_stall
            )
        return wrapped

    def wrap_rate(self, dist: Optional[Distribution]) -> Optional[Distribution]:
        """Jitter a per-unit *rate* distribution (per byte, per item).

        Only multiplicative noise is valid here: callers multiply the
        sample by a count, which would scale an additive interference
        stall by that count.
        """
        if dist is None:
            return None
        return Jittered(dist, self.jitter_cv)

    def observed_latency(
        self, latency: float, rng: np.random.Generator
    ) -> float:
        """Client-observed latency including timeout/reconnect overhead."""
        if latency <= self.timeout:
            return latency
        return latency + self.timeout_penalty.sample(rng)

    def __repr__(self) -> str:
        return (
            f"RealismConfig(jitter={self.jitter_cv}, "
            f"interference={self.interference_prob}, timeout={self.timeout}s)"
        )
