"""Real-system surrogate: the substituted "real" side of the paper's
validation figures (see DESIGN.md SS1)."""

from .realism import Interfered, Jittered, RealismConfig

__all__ = ["Interfered", "Jittered", "RealismConfig"]
