"""uqSim reproduction: accurate and scalable queueing-network
simulation for interactive microservices.

Reimplementation of *uqSim: Enabling Accurate and Scalable Simulation
for Interactive Microservices* (Zhang, Gan, Delimitrou -- ISPASS 2019)
as a Python library. See README.md for a tour and DESIGN.md for the
system inventory and experiment index.

Layers (bottom-up):

* :mod:`repro.engine` -- discrete-event core (events, queue, clock, RNG)
* :mod:`repro.distributions` -- processing-time distributions/histograms
* :mod:`repro.hardware` -- machines, cores, DVFS, network fabric
* :mod:`repro.service` -- intra-microservice model (stages, queues,
  paths, execution models, connections, I/O devices)
* :mod:`repro.topology` -- inter-microservice model (path trees,
  deployment, dispatcher, load balancing)
* :mod:`repro.faults` / :mod:`repro.resilience` -- fault injection
  (crashes, stragglers, link faults) and the policies that absorb them
  (timeouts, retries, hedging, circuit breaking, load shedding)
* :mod:`repro.workload` / :mod:`repro.telemetry` -- clients and metrics
* :mod:`repro.config` -- the JSON surface of paper Table I
* :mod:`repro.apps` -- NGINX/memcached/MongoDB/Thrift/Social-Network
  models and scenario builders
* :mod:`repro.bighouse` -- the BigHouse baseline simulator
* :mod:`repro.power` -- the QoS-aware power manager (Algorithm 1)
* :mod:`repro.testbed` -- the real-system surrogate
* :mod:`repro.experiments` -- figure/table harness and registry
"""

from . import (
    analysis,
    apps,
    bighouse,
    config,
    distributions,
    engine,
    experiments,
    faults,
    hardware,
    power,
    resilience,
    scaling,
    service,
    telemetry,
    testbed,
    topology,
    workload,
)
from .engine import Simulator
from .errors import (
    ConfigError,
    DistributionError,
    FaultError,
    ReproError,
    RequestFailed,
    RequestOutcomeError,
    RequestShed,
    RequestTimeout,
    ResourceError,
    SimulationError,
    TopologyError,
    WorkloadError,
)

__version__ = "1.0.0"

__all__ = [
    "ConfigError",
    "DistributionError",
    "FaultError",
    "ReproError",
    "RequestFailed",
    "RequestOutcomeError",
    "RequestShed",
    "RequestTimeout",
    "ResourceError",
    "SimulationError",
    "Simulator",
    "TopologyError",
    "WorkloadError",
    "analysis",
    "apps",
    "bighouse",
    "config",
    "distributions",
    "engine",
    "experiments",
    "faults",
    "hardware",
    "power",
    "resilience",
    "scaling",
    "service",
    "telemetry",
    "testbed",
    "topology",
    "workload",
]
