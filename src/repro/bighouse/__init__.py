"""BigHouse baseline simulator (paper SSII, compared in Fig 13)."""

from .folding import FoldedServiceTime
from .simulator import BigHouseResult, BigHouseSimulator, simulate_ggk_instance

__all__ = [
    "BigHouseResult",
    "BigHouseSimulator",
    "FoldedServiceTime",
    "simulate_ggk_instance",
]
