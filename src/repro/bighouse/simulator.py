"""The BigHouse baseline: single-queue datacenter simulation.

Paper SSII/SSIV-E: "BigHouse represents workloads as inter-arrival and
service distributions ... The simulator then models each application as
a single queue, and runs multiple instances in parallel until
performance metrics converge." Because the whole application is one
queue, "the entire processing time of epoll is accounted for in every
request, leading to overestimation of the accumulated tail latency" —
the effect Fig 13 demonstrates.

This module implements that methodology faithfully: a compact G/G/k
event simulation per instance, with instances accumulated until the
tail-latency estimate converges.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List

import numpy as np

from ..distributions import Distribution
from ..engine import RandomStreams
from ..errors import SimulationError


@dataclass
class BigHouseResult:
    """Converged output of one BigHouse run."""

    mean: float
    p50: float
    p95: float
    p99: float
    samples: int
    instances: int
    converged: bool


def simulate_ggk_instance(
    interarrival: Distribution,
    service: Distribution,
    servers: int,
    num_requests: int,
    rng: np.random.Generator,
    warmup_fraction: float = 0.2,
) -> np.ndarray:
    """One G/G/k instance; returns post-warmup sojourn times.

    Event-driven with a completion heap: at each arrival, either seize a
    free server or queue FCFS; completions free servers for the queue
    head. O(n log k).
    """
    if servers < 1:
        raise SimulationError(f"G/G/k needs >= 1 server, got {servers}")
    if num_requests < 10:
        raise SimulationError(f"need >= 10 requests, got {num_requests}")

    arrivals = np.cumsum(interarrival.sample_many(rng, num_requests))
    services = service.sample_many(rng, num_requests)

    # Kiefer-Wolfowitz recursion: a min-heap of per-server next-free
    # times; each FCFS request takes the earliest-free server.
    next_free = [0.0] * servers
    heapq.heapify(next_free)
    latencies = np.empty(num_requests)

    for i in range(num_requests):
        arrival = arrivals[i]
        earliest_free = heapq.heappop(next_free)
        start = max(arrival, earliest_free)
        finish = start + services[i]
        heapq.heappush(next_free, finish)
        latencies[i] = finish - arrival

    cut = int(num_requests * warmup_fraction)
    return latencies[cut:]


class BigHouseSimulator:
    """Runs G/G/k instances until the p99 estimate converges.

    Convergence: after each batch of instances, the relative spread of
    the per-instance p99 estimates (std error / mean) must drop under
    *tolerance*.
    """

    def __init__(
        self,
        interarrival: Distribution,
        service: Distribution,
        servers: int = 1,
        requests_per_instance: int = 20_000,
        min_instances: int = 4,
        max_instances: int = 64,
        tolerance: float = 0.05,
        seed: int = 0,
    ) -> None:
        if min_instances < 2:
            raise SimulationError("need >= 2 instances to estimate convergence")
        if max_instances < min_instances:
            raise SimulationError("max_instances < min_instances")
        if not 0 < tolerance < 1:
            raise SimulationError(f"tolerance must be in (0,1), got {tolerance!r}")
        self.interarrival = interarrival
        self.service = service
        self.servers = servers
        self.requests_per_instance = requests_per_instance
        self.min_instances = min_instances
        self.max_instances = max_instances
        self.tolerance = tolerance
        self._streams = RandomStreams(seed)

    def run(self) -> BigHouseResult:
        all_samples: List[np.ndarray] = []
        p99s: List[float] = []
        converged = False
        instance = 0
        while instance < self.max_instances:
            rng = self._streams.stream(f"instance/{instance}")
            samples = simulate_ggk_instance(
                self.interarrival,
                self.service,
                self.servers,
                self.requests_per_instance,
                rng,
            )
            all_samples.append(samples)
            p99s.append(float(np.percentile(samples, 99)))
            instance += 1
            if instance >= self.min_instances:
                mean_p99 = float(np.mean(p99s))
                stderr = float(np.std(p99s, ddof=1)) / np.sqrt(len(p99s))
                if mean_p99 > 0 and stderr / mean_p99 < self.tolerance:
                    converged = True
                    break
        merged = np.concatenate(all_samples)
        return BigHouseResult(
            mean=float(np.mean(merged)),
            p50=float(np.percentile(merged, 50)),
            p95=float(np.percentile(merged, 95)),
            p99=float(np.percentile(merged, 99)),
            samples=int(merged.size),
            instances=instance,
            converged=converged,
        )
