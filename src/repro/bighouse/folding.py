"""Folding a uqSim microservice model into a BigHouse service
distribution.

BigHouse sees an application as ONE queue, so the multi-stage model
must be collapsed into a single per-request service time. The honest
collapse — the one the paper attributes to BigHouse — charges the full
cost of every stage to every request: "each application is modeled as a
single stage so the entire processing time of epoll is accounted for in
every request" (SSIV-E). Batch amortisation is structurally
unrepresentable, and that is precisely why BigHouse saturates early in
Fig 13.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..distributions import Distribution
from ..errors import ConfigError
from ..service import Microservice
from ..service.paths import ExecutionPath


class FoldedServiceTime(Distribution):
    """Per-request service time of a microservice, single-queue style.

    Sampling walks one execution path and sums, for every stage, the
    full base cost + one per-job cost + per-byte cost for the mean
    request size — no amortisation across batched requests.
    """

    def __init__(
        self,
        service: Microservice,
        mean_request_bytes: float = 0.0,
        path_name: Optional[str] = None,
    ) -> None:
        self.service = service
        self.mean_request_bytes = float(mean_request_bytes)
        self._paths = service.selector.paths
        if path_name is not None:
            self._paths = [service.selector.get_by_name(path_name)]
        if not self._paths:
            raise ConfigError(f"{service.name!r} has no execution paths")
        self._frequency = service.frequency

    def _sample_path(
        self, path: ExecutionPath, rng: np.random.Generator
    ) -> float:
        total = 0.0
        for stage_id in path.stage_ids:
            stage = self.service.stage(stage_id)
            if stage.base is not None:
                total += stage.base.sample(rng, self._frequency)
            if stage.per_job is not None:
                total += stage.per_job.sample(rng, self._frequency)
            if stage.per_byte is not None:
                total += (
                    stage.per_byte.sample(rng, self._frequency)
                    * self.mean_request_bytes
                )
            if stage.io is not None:
                total += stage.io.sample(rng)
        return total

    def sample(self, rng: np.random.Generator) -> float:
        # Use the first path for deterministic-path services; pick
        # uniformly among multiple paths otherwise (BigHouse has no
        # notion of per-request control flow).
        if len(self._paths) == 1:
            path = self._paths[0]
        else:
            path = self._paths[int(rng.integers(len(self._paths)))]
        return self._sample_path(path, rng)

    def mean(self) -> float:
        means = []
        for path in self._paths:
            total = 0.0
            for stage_id in path.stage_ids:
                stage = self.service.stage(stage_id)
                total += stage.mean_cost(
                    batch_size=1, mean_bytes=self.mean_request_bytes
                )
                if stage.io is not None:
                    total += stage.io.mean()
            means.append(total)
        return float(np.mean(means))

    def __repr__(self) -> str:
        return (
            f"FoldedServiceTime({self.service.name}, "
            f"bytes={self.mean_request_bytes:g})"
        )
