"""Network fabric: wire latency between machines.

uqSim models *network processing* (TCP/IP rx/tx, interrupt handling) as
a standalone per-machine service that colocated microservices share
(paper SSIII-B) — that part lives in the service layer, built by the
deployment. What belongs to the hardware layer is the propagation and
serialisation delay between two machines, which this module provides.

The default parameters approximate the paper's testbed: a 1 Gbps
switched network where an intra-rack RTT is a few tens of microseconds
and same-machine communication short-circuits through loopback.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

import numpy as np

from ..distributions import (
    DEFAULT_BLOCK,
    BufferedSampler,
    Deterministic,
    Distribution,
    Exponential,
)
from ..errors import FaultError, ResourceError

BYTES_PER_SECOND_1GBPS = 125_000_000.0


class NetworkFabric:
    """Latency model for machine-to-machine message transfer."""

    def __init__(
        self,
        propagation: Optional[Distribution] = None,
        loopback: Optional[Distribution] = None,
        bandwidth_bytes_per_s: float = BYTES_PER_SECOND_1GBPS,
    ) -> None:
        """
        *propagation* is the one-way wire+switch delay between distinct
        machines; *loopback* the kernel loopback delay for colocated
        services. Serialisation time (message bytes / bandwidth) is added
        on top for cross-machine messages.
        """
        if bandwidth_bytes_per_s <= 0:
            raise ResourceError(
                f"bandwidth must be positive, got {bandwidth_bytes_per_s!r}"
            )
        # ~20us mean switched-path delay; ~5us loopback.
        self.propagation = propagation or Exponential(20e-6)
        self.loopback = loopback or Deterministic(5e-6)
        self.bandwidth = float(bandwidth_bytes_per_s)
        # Fault-injection state: per-link delay multipliers and severed
        # links (both directions of a pair are keyed independently).
        self._link_factors: Dict[Tuple[str, str], float] = {}
        self._partitioned: Set[Tuple[str, str]] = set()

    # Fault injection -----------------------------------------------------

    def degrade_link(self, src: str, dst: str, factor: float) -> None:
        """Multiply the src<->dst delay by *factor* (>= 1), both ways.

        Models congestion or a flapping switch port on that path;
        :meth:`restore_link` undoes it.
        """
        if factor < 1.0:
            raise FaultError(f"link factor must be >= 1, got {factor!r}")
        self._link_factors[(src, dst)] = float(factor)
        self._link_factors[(dst, src)] = float(factor)

    def restore_link(self, src: str, dst: str) -> None:
        """Remove any degradation on the src<->dst link (both ways)."""
        self._link_factors.pop((src, dst), None)
        self._link_factors.pop((dst, src), None)

    def partition(self, src: str, dst: str) -> None:
        """Sever the src<->dst link: messages on it are silently lost
        until :meth:`heal` — only timeouts surface the black hole."""
        self._partitioned.add((src, dst))
        self._partitioned.add((dst, src))

    def heal(self, src: str, dst: str) -> None:
        """Reconnect a previously partitioned src<->dst link."""
        self._partitioned.discard((src, dst))
        self._partitioned.discard((dst, src))

    def is_partitioned(self, src_machine: str, dst_machine: str) -> bool:
        """True when messages src -> dst are currently being dropped."""
        return (src_machine, dst_machine) in self._partitioned

    def delay(
        self,
        src_machine: str,
        dst_machine: str,
        message_bytes: float,
        rng: np.random.Generator,
    ) -> float:
        """One-way latency for a *message_bytes* message src -> dst."""
        if message_bytes < 0:
            raise ResourceError(f"negative message size: {message_bytes!r}")
        if src_machine == dst_machine:
            base = self.loopback.sample(rng)
        else:
            base = self.propagation.sample(rng) + message_bytes / self.bandwidth
        factor = self._link_factors.get((src_machine, dst_machine))
        return base if factor is None else base * factor

    def lookahead(self) -> float:
        """Guaranteed minimum cross-machine delay (conservative lookahead).

        The sharded simulation core may let two shards simulate
        independently as long as neither runs past the other's clock
        plus this bound: no cross-machine message can ever arrive
        sooner. It is ``propagation.minimum()`` — serialisation time
        only adds delay, degrade factors are >= 1, and partitions drop
        messages entirely, so none of the mutable fault state can
        shrink a delay below the propagation infimum. A zero return
        (e.g. the default exponential propagation, whose support
        touches 0) means conservative sharding cannot make progress;
        callers must then fall back to a single shard.
        """
        return self.propagation.minimum()

    def delay_sampler(
        self,
        rng: np.random.Generator,
        block: int = DEFAULT_BLOCK,
    ) -> "BufferedDelaySampler":
        """A block-buffered view of :meth:`delay` bound to *rng*.

        Heavy traffic pays the jitter draw on every message hop; the
        returned sampler serves those draws from numpy blocks. *rng*
        must be dedicated to it (the buffering determinism contract).
        Link degradation and partitions apply at serve time, so fault
        injection is never a buffer-full late.
        """
        return BufferedDelaySampler(self, rng, block)

    def __repr__(self) -> str:
        return (
            f"NetworkFabric(prop~{self.propagation.mean()*1e6:.1f}us, "
            f"lo~{self.loopback.mean()*1e6:.1f}us, "
            f"{self.bandwidth*8/1e9:.1f}Gbps)"
        )


class BufferedDelaySampler:
    """Buffered propagation/loopback jitter for one consumer of a fabric.

    Mirrors :meth:`NetworkFabric.delay` exactly — same validation, same
    serialisation and link-factor arithmetic — but the two jitter
    distributions draw through :class:`~repro.distributions.
    BufferedSampler` blocks. The fabric's mutable fault state is read
    per call, never cached.
    """

    __slots__ = ("fabric", "_propagation", "_loopback")

    def __init__(
        self,
        fabric: NetworkFabric,
        rng: np.random.Generator,
        block: int = DEFAULT_BLOCK,
    ) -> None:
        self.fabric = fabric
        self._propagation = BufferedSampler(fabric.propagation, rng, block)
        self._loopback = BufferedSampler(fabric.loopback, rng, block)

    def delay(
        self,
        src_machine: str,
        dst_machine: str,
        message_bytes: float,
    ) -> float:
        """One-way latency for a *message_bytes* message src -> dst."""
        if message_bytes < 0:
            raise ResourceError(f"negative message size: {message_bytes!r}")
        fabric = self.fabric
        if src_machine == dst_machine:
            base = self._loopback.sample()
        else:
            base = (self._propagation.sample()
                    + message_bytes / fabric.bandwidth)
        factor = fabric._link_factors.get((src_machine, dst_machine))
        return base if factor is None else base * factor
