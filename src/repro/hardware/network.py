"""Network fabric: wire latency between machines.

uqSim models *network processing* (TCP/IP rx/tx, interrupt handling) as
a standalone per-machine service that colocated microservices share
(paper SSIII-B) — that part lives in the service layer, built by the
deployment. What belongs to the hardware layer is the propagation and
serialisation delay between two machines, which this module provides.

The default parameters approximate the paper's testbed: a 1 Gbps
switched network where an intra-rack RTT is a few tens of microseconds
and same-machine communication short-circuits through loopback.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..distributions import Deterministic, Distribution, Exponential
from ..errors import ResourceError

BYTES_PER_SECOND_1GBPS = 125_000_000.0


class NetworkFabric:
    """Latency model for machine-to-machine message transfer."""

    def __init__(
        self,
        propagation: Optional[Distribution] = None,
        loopback: Optional[Distribution] = None,
        bandwidth_bytes_per_s: float = BYTES_PER_SECOND_1GBPS,
    ) -> None:
        """
        *propagation* is the one-way wire+switch delay between distinct
        machines; *loopback* the kernel loopback delay for colocated
        services. Serialisation time (message bytes / bandwidth) is added
        on top for cross-machine messages.
        """
        if bandwidth_bytes_per_s <= 0:
            raise ResourceError(
                f"bandwidth must be positive, got {bandwidth_bytes_per_s!r}"
            )
        # ~20us mean switched-path delay; ~5us loopback.
        self.propagation = propagation or Exponential(20e-6)
        self.loopback = loopback or Deterministic(5e-6)
        self.bandwidth = float(bandwidth_bytes_per_s)

    def delay(
        self,
        src_machine: str,
        dst_machine: str,
        message_bytes: float,
        rng: np.random.Generator,
    ) -> float:
        """One-way latency for a *message_bytes* message src -> dst."""
        if message_bytes < 0:
            raise ResourceError(f"negative message size: {message_bytes!r}")
        if src_machine == dst_machine:
            return self.loopback.sample(rng)
        return self.propagation.sample(rng) + message_bytes / self.bandwidth

    def __repr__(self) -> str:
        return (
            f"NetworkFabric(prop~{self.propagation.mean()*1e6:.1f}us, "
            f"lo~{self.loopback.mean()*1e6:.1f}us, "
            f"{self.bandwidth*8/1e9:.1f}Gbps)"
        )
