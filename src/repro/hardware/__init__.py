"""Hardware model: machines, cores, DVFS, and the network fabric.

This is the substrate ``machines.json`` (paper Table I) describes:
per-server core counts and frequency ranges, core pinning for
microservice instances, and the latency of the wires between servers.
"""

from .cluster import Cluster
from .core import CoreSet, CpuCore
from .dvfs import GHZ, DvfsLadder
from .machine import Machine
from .network import NetworkFabric

__all__ = [
    "Cluster",
    "CoreSet",
    "CpuCore",
    "DvfsLadder",
    "GHZ",
    "Machine",
    "NetworkFabric",
]
