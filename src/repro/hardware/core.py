"""CPU cores and core sets.

A :class:`CpuCore` runs at most one stage execution at a time and keeps
busy-time accounting for utilisation reports. Cores are grouped into
:class:`CoreSet`s — the unit of allocation: the deployment pins each
microservice instance (or the per-machine network-processing service)
to a dedicated core set, matching the paper's validation methodology
("each thread of every microservice is pinned to a dedicated physical
core").

A core's *frequency* is mutable (DVFS); the power manager adjusts the
frequency of a whole core set (one tier) at a time.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..errors import ResourceError
from .dvfs import DvfsLadder


class CpuCore:
    """One hardware thread/core."""

    def __init__(self, core_id: str, ladder: DvfsLadder, frequency: Optional[float] = None) -> None:
        self.core_id = core_id
        self.ladder = ladder
        self.frequency = ladder.clamp(frequency if frequency is not None else ladder.max)
        self.busy = False
        self._busy_since: Optional[float] = None
        self.busy_time = 0.0  # accumulated seconds of occupancy

    def acquire(self, now: float) -> None:
        """Mark the core busy (caller provides the simulation clock)."""
        if self.busy:
            raise ResourceError(f"core {self.core_id} acquired while busy")
        self.busy = True
        self._busy_since = now

    def release(self, now: float) -> None:
        """Mark the core free and account its busy interval."""
        if not self.busy:
            raise ResourceError(f"core {self.core_id} released while free")
        self.busy = False
        assert self._busy_since is not None
        self.busy_time += now - self._busy_since
        self._busy_since = None

    def set_frequency(self, frequency: float) -> float:
        """Change the operating frequency (snapped to the ladder).

        In-flight executions keep the service time sampled at dispatch;
        the new frequency applies to subsequent dispatches. This matches
        the paper's per-decision-interval actuation granularity.
        """
        self.frequency = self.ladder.clamp(frequency)
        return self.frequency

    def utilization(self, now: float, since: float = 0.0) -> float:
        """Fraction of ``[since, now]`` the core spent busy."""
        if now <= since:
            return 0.0
        busy = self.busy_time
        if self.busy and self._busy_since is not None:
            busy += now - self._busy_since
        return min(1.0, busy / (now - since))

    def __repr__(self) -> str:
        state = "busy" if self.busy else "free"
        return f"<CpuCore {self.core_id} {self.frequency/1e9:.1f}GHz {state}>"


class CoreSet:
    """A group of cores dedicated to one owner (tier instance / netproc).

    Consumers call :meth:`try_acquire`; when nothing is free they simply
    leave their work queued and subscribe to :meth:`on_release`
    notifications, which the owning microservice uses to re-attempt
    dispatch — the event-driven analogue of a thread stalling for CPU.
    """

    def __init__(self, name: str, cores: List[CpuCore]) -> None:
        if not cores:
            raise ResourceError(f"core set {name!r} needs at least one core")
        self.name = name
        self.cores = list(cores)
        self._release_callbacks: List[Callable[[], None]] = []

    def __len__(self) -> int:
        return len(self.cores)

    @property
    def free_count(self) -> int:
        return sum(1 for c in self.cores if not c.busy)

    def try_acquire(self, now: float) -> Optional[CpuCore]:
        """Grab a free core, or ``None`` if all are busy."""
        for core in self.cores:
            if not core.busy:
                core.acquire(now)
                return core
        return None

    def release(self, core: CpuCore, now: float) -> None:
        """Return *core* to the set and wake subscribers."""
        core.release(now)
        for callback in list(self._release_callbacks):
            callback()

    def on_release(self, callback: Callable[[], None]) -> None:
        """Subscribe to be called whenever a core frees up."""
        self._release_callbacks.append(callback)

    def set_frequency(self, frequency: float) -> float:
        """DVFS the whole set; returns the snapped frequency."""
        snapped = 0.0
        for core in self.cores:
            snapped = core.set_frequency(frequency)
        return snapped

    @property
    def frequency(self) -> float:
        """Current frequency (the sets are always stepped together)."""
        return self.cores[0].frequency

    def utilization(self, now: float, since: float = 0.0) -> float:
        """Mean utilisation across the set's cores."""
        return sum(c.utilization(now, since) for c in self.cores) / len(self.cores)

    def __repr__(self) -> str:
        return (
            f"<CoreSet {self.name} {len(self.cores)} cores "
            f"{self.free_count} free @{self.frequency/1e9:.1f}GHz>"
        )
