"""DVFS frequency ladders.

Paper Table II: the validation server scales between 1.2 GHz and
2.6 GHz. DVFS exposes *discrete* frequency/voltage steps — the paper's
power-management study (SSV-B) explicitly attributes the ~2 ms latency
floor to this coarse granularity — so the ladder is a sorted tuple of
allowed operating points, and every request to change frequency snaps
to one of them.
"""

from __future__ import annotations

from typing import Iterable, Tuple

from ..errors import ResourceError

GHZ = 1e9


class DvfsLadder:
    """An ordered set of permitted core frequencies (Hz)."""

    def __init__(self, frequencies: Iterable[float]) -> None:
        freqs: Tuple[float, ...] = tuple(sorted(set(float(f) for f in frequencies)))
        if not freqs:
            raise ResourceError("DVFS ladder needs at least one frequency")
        if freqs[0] <= 0:
            raise ResourceError("frequencies must be positive")
        self.frequencies = freqs

    @classmethod
    def xeon_e5_2660_v3(cls) -> "DvfsLadder":
        """The Table II server: 1.2-2.6 GHz in 0.1 GHz steps."""
        steps = [round(1.2 + 0.1 * i, 1) * GHZ for i in range(15)]
        return cls(steps)

    @classmethod
    def fixed(cls, frequency: float) -> "DvfsLadder":
        """A ladder with a single operating point (no DVFS)."""
        return cls([frequency])

    # Queries -----------------------------------------------------------

    @property
    def min(self) -> float:
        return self.frequencies[0]

    @property
    def max(self) -> float:
        return self.frequencies[-1]

    def __len__(self) -> int:
        return len(self.frequencies)

    def __contains__(self, frequency: float) -> bool:
        return float(frequency) in self.frequencies

    def clamp(self, frequency: float) -> float:
        """Snap an arbitrary frequency to the nearest ladder step."""
        frequency = float(frequency)
        return min(self.frequencies, key=lambda f: abs(f - frequency))

    def index_of(self, frequency: float) -> int:
        """Ladder index of *frequency* (after clamping)."""
        return self.frequencies.index(self.clamp(frequency))

    def step_down(self, frequency: float, steps: int = 1) -> float:
        """The frequency *steps* ladder positions below (floors at min)."""
        idx = max(0, self.index_of(frequency) - steps)
        return self.frequencies[idx]

    def step_up(self, frequency: float, steps: int = 1) -> float:
        """The frequency *steps* ladder positions above (caps at max)."""
        idx = min(len(self.frequencies) - 1, self.index_of(frequency) + steps)
        return self.frequencies[idx]

    def __repr__(self) -> str:
        return (
            f"DvfsLadder({self.min/GHZ:.1f}-{self.max/GHZ:.1f}GHz, "
            f"{len(self)} steps)"
        )
