"""Server machines.

``machines.json`` (paper Table I) "records the available resources on
each server". A :class:`Machine` owns a pool of cores; deployments
carve dedicated :class:`~repro.hardware.core.CoreSet`s out of it, one
per pinned microservice instance plus one for the machine's shared
network-processing (soft_irq) service.

Machines carry optional failure-domain labels (``rack``/``zone``) and a
fail/restore lifecycle so the control plane
(:mod:`repro.controlplane`) can spread replicas across domains and
deschedule a failed node. Allocation is first-fit over free cores in
core order; when nothing has ever been released this yields exactly the
historical bump-pointer layout, so existing deployments are unchanged.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import ResourceError
from .core import CoreSet, CpuCore
from .dvfs import DvfsLadder, GHZ


class Machine:
    """A server with a fixed number of cores and a DVFS ladder."""

    def __init__(
        self,
        name: str,
        num_cores: int,
        ladder: Optional[DvfsLadder] = None,
        frequency: Optional[float] = None,
        rack: str = "",
        zone: str = "",
    ) -> None:
        if num_cores < 1:
            raise ResourceError(f"machine {name!r} needs >= 1 core, got {num_cores}")
        self.name = name
        self.rack = rack
        self.zone = zone
        self.ladder = ladder or DvfsLadder.fixed(2.6 * GHZ)
        self.cores: List[CpuCore] = [
            CpuCore(f"{name}/cpu{i}", self.ladder, frequency)
            for i in range(num_cores)
        ]
        self._core_owner: Dict[int, str] = {}
        self._allocations: Dict[str, CoreSet] = {}
        self._failed = False

    @classmethod
    def table2(cls, name: str) -> "Machine":
        """The paper's validation server (Table II): 2 sockets x 10
        cores x 2 threads, 1.2-2.6 GHz DVFS. We expose the 40 hardware
        threads as schedulable cores."""
        return cls(name, num_cores=40, ladder=DvfsLadder.xeon_e5_2660_v3())

    # Lifecycle ----------------------------------------------------------

    @property
    def up(self) -> bool:
        """False after :meth:`fail` until :meth:`restore`."""
        return not self._failed

    def fail(self) -> None:
        """Mark the machine failed (unschedulable).

        Crashing the hosted instances is the fault injector's job
        (:meth:`~repro.faults.FaultPlan.fail_machine` fans out); the
        machine itself only tracks schedulability.
        """
        self._failed = True

    def restore(self) -> None:
        """Bring a failed machine back (schedulable again)."""
        self._failed = False

    # Allocation ---------------------------------------------------------

    @property
    def num_cores(self) -> int:
        return len(self.cores)

    @property
    def unallocated_cores(self) -> int:
        return self.num_cores - len(self._core_owner)

    def allocate(self, owner: str, num_cores: int) -> CoreSet:
        """Pin *num_cores* dedicated cores to *owner*.

        Allocation is first-fit over the free cores in core order; the
        paper pins each thread to a dedicated physical core, so cores
        are never shared between owners. Freed cores (:meth:`release`)
        are reused, so an allocate-release-allocate cycle can fragment
        an owner's cores across the machine — harmless, since cores are
        interchangeable.
        """
        if owner in self._allocations:
            raise ResourceError(
                f"machine {self.name!r}: owner {owner!r} already has cores"
            )
        if num_cores < 1:
            raise ResourceError(f"cannot allocate {num_cores} cores")
        if num_cores > self.unallocated_cores:
            raise ResourceError(
                f"machine {self.name!r}: requested {num_cores} cores for "
                f"{owner!r} but only {self.unallocated_cores} remain "
                f"unallocated of {self.num_cores}"
            )
        picked: List[int] = []
        for index in range(self.num_cores):
            if index not in self._core_owner:
                picked.append(index)
                if len(picked) == num_cores:
                    break
        for index in picked:
            self._core_owner[index] = owner
        core_set = CoreSet(owner, [self.cores[i] for i in picked])
        self._allocations[owner] = core_set
        return core_set

    def release(self, owner: str) -> None:
        """Return *owner*'s cores to the free pool.

        Used by the control plane when a replica is retired or
        rescheduled. Refuses to free cores that are still running work —
        drain (or crash) the instance first.
        """
        core_set = self.allocation(owner)
        busy = [core.core_id for core in core_set.cores if core.busy]
        if busy:
            raise ResourceError(
                f"machine {self.name!r}: cannot release {owner!r}, "
                f"cores still busy: {busy}"
            )
        del self._allocations[owner]
        self._core_owner = {
            index: holder
            for index, holder in self._core_owner.items()
            if holder != owner
        }

    def allocation(self, owner: str) -> CoreSet:
        """The core set previously pinned to *owner*."""
        try:
            return self._allocations[owner]
        except KeyError:
            raise ResourceError(
                f"machine {self.name!r} has no allocation for {owner!r}"
            ) from None

    @property
    def allocations(self) -> Dict[str, CoreSet]:
        return dict(self._allocations)

    # DVFS ---------------------------------------------------------------

    def set_frequency(self, frequency: float) -> float:
        """DVFS every core on the machine."""
        snapped = self.ladder.clamp(frequency)
        for core in self.cores:
            core.set_frequency(snapped)
        return snapped

    def utilization(self, now: float, since: float = 0.0) -> float:
        """Mean utilisation across all the machine's cores."""
        return sum(c.utilization(now, since) for c in self.cores) / self.num_cores

    def __repr__(self) -> str:
        state = "" if self.up else " FAILED"
        return (
            f"<Machine {self.name} cores={self.num_cores} "
            f"allocated={len(self._core_owner)}{state}>"
        )
