"""Clusters: named machines plus the fabric connecting them."""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from ..errors import ResourceError
from .dvfs import DvfsLadder
from .machine import Machine
from .network import NetworkFabric


class Cluster:
    """The hardware side of a simulation: machines + network."""

    def __init__(self, network: Optional[NetworkFabric] = None) -> None:
        self._machines: Dict[str, Machine] = {}
        self.network = network or NetworkFabric()

    # Construction -------------------------------------------------------

    def add_machine(self, machine: Machine) -> Machine:
        if machine.name in self._machines:
            raise ResourceError(f"duplicate machine name {machine.name!r}")
        self._machines[machine.name] = machine
        return machine

    @classmethod
    def homogeneous(
        cls,
        count: int,
        cores_per_machine: int,
        ladder: Optional[DvfsLadder] = None,
        network: Optional[NetworkFabric] = None,
        name_prefix: str = "node",
        racks: int = 1,
        zones: int = 1,
    ) -> "Cluster":
        """*count* identical machines named ``node0..node{count-1}``.

        With *racks* / *zones* > 1 machines are labelled round-robin
        into failure domains (``rack0..``, ``zone0..``); each rack lives
        entirely in one zone, matching the machine → rack → zone
        containment the control plane's spread placement assumes.
        """
        if count < 1:
            raise ResourceError(f"cluster needs >= 1 machine, got {count}")
        if racks < 1 or zones < 1:
            raise ResourceError(
                f"racks and zones must be >= 1, got racks={racks} zones={zones}"
            )
        cluster = cls(network)
        for i in range(count):
            rack_id = i % racks
            cluster.add_machine(
                Machine(
                    f"{name_prefix}{i}",
                    cores_per_machine,
                    ladder,
                    rack=f"rack{rack_id}",
                    zone=f"zone{rack_id % zones}",
                )
            )
        return cluster

    # Lookup -------------------------------------------------------------

    def machine(self, name: str) -> Machine:
        try:
            return self._machines[name]
        except KeyError:
            raise ResourceError(
                f"unknown machine {name!r}; cluster has {sorted(self._machines)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._machines

    def __iter__(self) -> Iterator[Machine]:
        return iter(self._machines.values())

    def __len__(self) -> int:
        return len(self._machines)

    @property
    def machine_names(self) -> list:
        return list(self._machines)

    @property
    def up_machines(self) -> list:
        """Machines currently schedulable (not failed), insertion order."""
        return [m for m in self._machines.values() if m.up]

    def domain_of(self, machine: Machine, level: str) -> str:
        """The failure-domain label of *machine* at *level*
        (``machine`` | ``rack`` | ``zone``). Unlabelled machines are
        their own domain at every level."""
        if level == "machine":
            return machine.name
        if level == "rack":
            return machine.rack or machine.name
        if level == "zone":
            return machine.zone or machine.name
        raise ResourceError(
            f"unknown failure-domain level {level!r}; "
            "expected machine, rack, or zone"
        )

    def failure_domains(self, level: str) -> Dict[str, list]:
        """Group machine names by failure domain at *level*
        (insertion order within each domain)."""
        domains: Dict[str, list] = {}
        for machine in self._machines.values():
            domains.setdefault(self.domain_of(machine, level), []).append(
                machine.name
            )
        return domains

    @property
    def total_cores(self) -> int:
        return sum(m.num_cores for m in self._machines.values())

    def utilization(self, now: float, since: float = 0.0) -> float:
        """Core-weighted mean utilisation across the cluster."""
        total = self.total_cores
        if total == 0:
            return 0.0
        busy = sum(
            m.utilization(now, since) * m.num_cores for m in self._machines.values()
        )
        return busy / total

    def __repr__(self) -> str:
        return f"<Cluster machines={len(self)} cores={self.total_cores}>"
