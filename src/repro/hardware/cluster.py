"""Clusters: named machines plus the fabric connecting them."""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from ..errors import ResourceError
from .dvfs import DvfsLadder
from .machine import Machine
from .network import NetworkFabric


class Cluster:
    """The hardware side of a simulation: machines + network."""

    def __init__(self, network: Optional[NetworkFabric] = None) -> None:
        self._machines: Dict[str, Machine] = {}
        self.network = network or NetworkFabric()

    # Construction -------------------------------------------------------

    def add_machine(self, machine: Machine) -> Machine:
        if machine.name in self._machines:
            raise ResourceError(f"duplicate machine name {machine.name!r}")
        self._machines[machine.name] = machine
        return machine

    @classmethod
    def homogeneous(
        cls,
        count: int,
        cores_per_machine: int,
        ladder: Optional[DvfsLadder] = None,
        network: Optional[NetworkFabric] = None,
        name_prefix: str = "node",
    ) -> "Cluster":
        """*count* identical machines named ``node0..node{count-1}``."""
        if count < 1:
            raise ResourceError(f"cluster needs >= 1 machine, got {count}")
        cluster = cls(network)
        for i in range(count):
            cluster.add_machine(
                Machine(f"{name_prefix}{i}", cores_per_machine, ladder)
            )
        return cluster

    # Lookup -------------------------------------------------------------

    def machine(self, name: str) -> Machine:
        try:
            return self._machines[name]
        except KeyError:
            raise ResourceError(
                f"unknown machine {name!r}; cluster has {sorted(self._machines)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._machines

    def __iter__(self) -> Iterator[Machine]:
        return iter(self._machines.values())

    def __len__(self) -> int:
        return len(self._machines)

    @property
    def machine_names(self) -> list:
        return list(self._machines)

    @property
    def total_cores(self) -> int:
        return sum(m.num_cores for m in self._machines.values())

    def utilization(self, now: float, since: float = 0.0) -> float:
        """Core-weighted mean utilisation across the cluster."""
        total = self.total_cores
        if total == 0:
            return 0.0
        busy = sum(
            m.utilization(now, since) * m.num_cores for m in self._machines.values()
        )
        return busy / total

    def __repr__(self) -> str:
        return f"<Cluster machines={len(self)} cores={self.total_cores}>"
