"""Resilience studies: retry storms and hedged requests.

Neither figure exists in the paper — they are the natural availability
counterpart to its performance validation, enabled by the fault
injection (:mod:`repro.faults`) and resilience (:mod:`repro.resilience`)
layers:

* **Retry storm** — drive a single-tier service ~20% past saturation
  with request timeouts. Unbudgeted retries amplify every timeout into
  more offered load, collapsing goodput below the no-retry baseline
  (the classic metastable failure); a 10% retry budget caps the
  amplification and restores goodput to within a few percent of
  baseline.
* **Hedging** — a 100-replica single-hop tier with 1% stragglers (the
  Fig 14 slow-server model applied to replicas instead of fanout
  leaves). Hedging the slowest few percent of requests cuts p99 by well
  over 30% at under 10% extra issued load — the tail-at-scale result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..apps.base import World, add_client_machine, new_world
from ..distributions import Erlang, Exponential
from ..errors import ConfigError
from ..hardware import Machine
from ..resilience import HedgePolicy, ResiliencePolicy, RetryBudget, RetryPolicy
from ..service import (
    ExecutionPath,
    Microservice,
    PathSelector,
    SimpleModel,
    SingleQueue,
    Stage,
)
from ..topology import PathNode, PathTree
from ..workload import OpenLoopClient


def _one_stage_service(world, machine_name, tier, dist, cores, name=None):
    machine = world.cluster.machine(machine_name)
    core_set = machine.allocate(tier, cores)
    stage = Stage("process", 0, SingleQueue(), base=dist)
    selector = PathSelector([ExecutionPath(0, "only", [0])])
    instance = Microservice(
        name or tier,
        world.sim,
        [stage],
        selector,
        core_set,
        model=SimpleModel(),
        machine_name=machine_name,
        tier=tier,
    )
    world.deployment.add_instance(instance)
    return instance


def build_single_tier(
    mean_service: float = 1e-3,
    cores: int = 1,
    replicas: int = 1,
    seed: int = 0,
) -> World:
    """One exponential-service tier behind the dispatcher — the minimal
    saturable system for overload/retry studies."""
    if replicas < 1:
        raise ConfigError(f"replicas must be >= 1, got {replicas}")
    world = new_world(seed=seed)
    add_client_machine(world)
    tree = PathTree("single_tier")
    tree.add_node(PathNode("root", "server"))
    for i in range(replicas):
        machine_name = f"server-node{i}"
        world.cluster.add_machine(Machine(machine_name, cores))
        _one_stage_service(
            world,
            machine_name,
            "server",
            Exponential(mean_service),
            cores,
            name=f"server_{i}",
        )
    world.dispatcher.add_tree(tree)
    world.labels.update(scenario="single_tier")
    return world


def build_straggler_tier(
    replicas: int = 100,
    slow_count: int = 1,
    slow_factor: float = 10.0,
    mean_service: float = 1e-3,
    seed: int = 0,
    balancer: str = "random",
) -> World:
    """*replicas* one-stage servers behind one load-balanced tier,
    *slow_count* of them degraded to ``slow_factor`` x service time —
    the Fig 14 straggler model applied to replicas of a single hop (the
    topology where hedging, not fan-in, sets the tail)."""
    if not 0 <= slow_count <= replicas:
        raise ConfigError(
            f"slow_count must be in [0, {replicas}], got {slow_count}"
        )
    if slow_factor < 1.0:
        raise ConfigError(f"slow_factor must be >= 1, got {slow_factor!r}")
    world = new_world(seed=seed)
    add_client_machine(world)
    tree = PathTree("straggler_tier")
    tree.add_node(PathNode("root", "leaf"))
    for i in range(replicas):
        machine_name = f"leaf-node{i}"
        world.cluster.add_machine(Machine(machine_name, 1))
        mean = mean_service * (slow_factor if i < slow_count else 1.0)
        # Erlang(4) keeps fast and slow latency modes well separated,
        # so the straggler cleanly owns the p99.
        _one_stage_service(
            world, machine_name, "leaf", Erlang(4, mean), cores=1,
            name=f"leaf_{i}",
        )
    world.deployment.set_balancer("leaf", balancer)
    world.dispatcher.add_tree(tree)
    world.labels.update(
        scenario="straggler_tier",
        config=f"replicas={replicas} slow={slow_count}x{slow_factor:g}",
    )
    return world


@dataclass
class RetryStormPoint:
    """Goodput of one retry configuration at fixed overload."""

    mode: str
    goodput: float
    requests_sent: int
    requests_ok: int
    timeouts: int
    attempts_launched: int
    retries_issued: int

    @property
    def extra_attempts(self) -> float:
        """Retry amplification: extra attempts per primary request."""
        if self.requests_sent == 0:
            return 0.0
        return self.attempts_launched / self.requests_sent - 1.0


def _retry_policy(mode: str) -> ResiliencePolicy:
    timeout = 30e-3
    if mode == "no_retry":
        return ResiliencePolicy(timeout=timeout)
    if mode == "unbudgeted":
        return ResiliencePolicy(
            timeout=timeout,
            retry=RetryPolicy(max_attempts=4, backoff_base=1e-3, jitter=1e-4),
        )
    if mode == "budgeted":
        return ResiliencePolicy(
            timeout=timeout,
            retry=RetryPolicy(
                max_attempts=4,
                backoff_base=1e-3,
                jitter=1e-4,
                budget=RetryBudget(ratio=0.05, min_tokens=5),
            ),
        )
    raise ConfigError(f"unknown retry mode {mode!r}")


def measure_retry_storm(
    mode: str,
    overload: float = 1.2,
    mean_service: float = 1e-3,
    duration: float = 4.0,
    seed: int = 0,
) -> RetryStormPoint:
    """Run one retry configuration at ``overload`` x saturation and
    report steady-window goodput."""
    world = build_single_tier(mean_service=mean_service, seed=seed)
    qps = overload / mean_service
    client = OpenLoopClient(
        world.sim,
        world.dispatcher,
        arrivals=qps,
        stop_at=duration,
        resilience=_retry_policy(mode),
    )
    client.start()
    world.sim.run()
    warmup = duration * 0.25
    return RetryStormPoint(
        mode=mode,
        goodput=client.throughput(warmup, duration),
        requests_sent=client.requests_sent,
        requests_ok=client.requests_ok,
        timeouts=client.outcomes.get("timeout", 0),
        attempts_launched=world.dispatcher.attempts_launched,
        retries_issued=world.dispatcher.retries_issued,
    )


def retry_storm_sweep(
    modes: Sequence[str] = ("no_retry", "unbudgeted", "budgeted"),
    overload: float = 1.2,
    duration: float = 4.0,
    seed: int = 0,
) -> List[RetryStormPoint]:
    """The metastability comparison: goodput under overload for
    no-retry / unbudgeted-retry / budgeted-retry clients."""
    return [
        measure_retry_storm(mode, overload=overload, duration=duration, seed=seed)
        for mode in modes
    ]


@dataclass
class HedgingPoint:
    """Tail latency of one hedging configuration on the straggler tier."""

    hedge_delay: Optional[float]
    p50: float
    p99: float
    requests: int
    hedges_issued: int
    extra_load: float


def measure_hedging(
    hedge_delay: Optional[float],
    replicas: int = 100,
    slow_count: int = 1,
    slow_factor: float = 10.0,
    qps: float = 100.0,
    num_requests: int = 2000,
    seed: int = 0,
) -> HedgingPoint:
    """Drive the straggler tier with (or without) hedging and report
    the p50/p99 plus the hedge-induced extra issued load."""
    world = build_straggler_tier(
        replicas=replicas,
        slow_count=slow_count,
        slow_factor=slow_factor,
        seed=seed,
    )
    policy = None
    if hedge_delay is not None:
        policy = ResiliencePolicy(hedge=HedgePolicy(delay=hedge_delay))
    client = OpenLoopClient(
        world.sim,
        world.dispatcher,
        arrivals=qps,
        max_requests=num_requests,
        resilience=policy,
    )
    client.start()
    world.sim.run()
    dispatcher = world.dispatcher
    extra = 0.0
    if dispatcher.requests_submitted:
        extra = (
            dispatcher.attempts_launched / dispatcher.requests_submitted - 1.0
        )
    return HedgingPoint(
        hedge_delay=hedge_delay,
        p50=client.latencies.p50(),
        p99=client.latencies.p99(),
        requests=len(client.latencies),
        hedges_issued=dispatcher.hedges_issued,
        extra_load=extra,
    )


def hedging_sweep(
    hedge_delays: Sequence[Optional[float]] = (None, 2e-3, 3e-3, 5e-3),
    replicas: int = 100,
    slow_count: int = 1,
    seed: int = 0,
) -> List[HedgingPoint]:
    """p99 vs hedge delay on the 100-replica/1%-straggler tier; the
    ``None`` point is the unhedged baseline."""
    return [
        measure_hedging(
            delay, replicas=replicas, slow_count=slow_count, seed=seed
        )
        for delay in hedge_delays
    ]
