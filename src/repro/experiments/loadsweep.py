"""Load-latency sweeps: the measurement harness behind every
validation figure.

The paper's methodology (SSIV): drive the application with an open-loop
client at a fixed offered load, measure mean and tail (p99) latency,
repeat across loads up to and past saturation, and compare the
simulated curve against the real system's. Here both curves come from
:func:`load_latency_sweep` — the "real" one from a world built with a
:class:`~repro.testbed.RealismConfig`.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from ..apps.base import World
from ..errors import ReproError
from ..faults import FaultInjector, FaultPlan
from ..runner import (
    RunStore,
    derive_seed,
    durable_map,
    parallel_map,
    point_key,
    register_result_type,
)
from ..telemetry.export import write_otlp, write_perfetto
from ..telemetry.slo import SLO, SLOMonitor, parse_slo
from ..telemetry.tracing import TraceConfig
from ..workload import OpenLoopClient, RequestMix
from .audit import audit_client

#: How a sweep accepts SLOs: one spec string / SLO, or a sequence.
SLOSpec = Union[str, SLO, Sequence[Union[str, SLO]]]


def resolve_slos(
    slo: Optional[SLOSpec], window: float
) -> List[SLO]:
    """Normalise an ``--slo`` style argument into :class:`SLO` objects
    (spec strings parse with the given evaluation *window*)."""
    if slo is None:
        return []
    if isinstance(slo, (str, SLO)):
        slo = [slo]
    return [
        parse_slo(entry, window=window) if isinstance(entry, str) else entry
        for entry in slo
    ]


def slo_manifest_summary(results: Sequence[Any]) -> Dict[str, Any]:
    """Aggregate per-point SLO verdicts into the ``{"slo": ...}``
    manifest block (breaches / breached points / time in breach per
    objective, summed over the points that measured it)."""
    merged: Dict[str, Dict[str, Any]] = {}
    for result in results:
        summary = getattr(result, "slo", None)
        if not summary:
            continue
        for name, verdict in summary.items():
            agg = merged.setdefault(name, {
                "breaches": 0, "points_breached": 0,
                "time_in_breach_s": 0.0, "points": 0,
            })
            agg["points"] += 1
            agg["breaches"] += verdict.get("breaches", 0)
            agg["time_in_breach_s"] += verdict.get("time_in_breach_s", 0.0)
            if verdict.get("breaches", 0):
                agg["points_breached"] += 1
    return {"slo": merged} if merged else {}


def shard_recovery_manifest_summary(results: Sequence[Any]) -> Dict[str, Any]:
    """Aggregate per-point shard-supervisor recovery reports into the
    ``{"shard_recovery": ...}`` manifest block (total restarts and
    replayed rounds, plus per-shard attribution keyed by shard id,
    summed over the points that needed recovery)."""
    total_restarts = 0
    total_replayed = 0
    per_shard: Dict[str, Dict[str, Any]] = {}
    for result in results:
        recovery = getattr(result, "shard_recovery", None)
        if not recovery:
            continue
        total_restarts += recovery.get("restarts", 0)
        total_replayed += recovery.get("replayed_rounds", 0)
        for shard, report in (recovery.get("per_shard") or {}).items():
            agg = per_shard.setdefault(str(shard), {
                "restarts": 0, "replayed_rounds": 0, "failures": [],
            })
            agg["restarts"] += report.get("restarts", 0)
            agg["replayed_rounds"] += report.get("replayed_rounds", 0)
            agg["failures"].extend(report.get("failures", ()))
    if not total_restarts:
        return {}
    return {"shard_recovery": {
        "restarts": total_restarts,
        "replayed_rounds": total_replayed,
        "per_shard": per_shard,
    }}


def shard_sync_manifest_summary(results: Sequence[Any]) -> Dict[str, Any]:
    """Aggregate per-point coordinator counters into the
    ``{"shard_sync": ...}`` manifest block (rounds / messages / stalls
    / restarts plus the merged straggler ranking and per-shard restart
    attribution). Points ride the counters as a non-declared
    ``shard_sync`` attribute, so points resumed from a journal simply
    don't contribute."""
    totals = {
        "points": 0, "rounds": 0, "messages_exchanged": 0,
        "stalls": 0, "restarts": 0,
    }
    straggler: Dict[str, int] = {}
    per_shard_restarts: Dict[str, int] = {}
    shards = 0
    mode = None
    for result in results:
        sync = getattr(result, "shard_sync", None)
        if not sync:
            continue
        totals["points"] += 1
        totals["rounds"] += sync.get("rounds", 0)
        totals["messages_exchanged"] += sync.get("messages_exchanged", 0)
        totals["stalls"] += sync.get("stalls", 0)
        totals["restarts"] += sync.get("restarts", 0)
        shards = max(shards, sync.get("shards", 0))
        mode = sync.get("mode", mode)
        for shard, count in (sync.get("straggler_rounds") or {}).items():
            straggler[str(shard)] = straggler.get(str(shard), 0) + count
        for shard, count in (sync.get("per_shard_restarts") or {}).items():
            per_shard_restarts[str(shard)] = (
                per_shard_restarts.get(str(shard), 0) + count
            )
    if not totals["points"]:
        return {}
    block: Dict[str, Any] = dict(totals, shards=shards, mode=mode)
    if straggler:
        block["straggler_rounds"] = straggler
    if per_shard_restarts:
        block["per_shard_restarts"] = per_shard_restarts
    return {"shard_sync": block}


def _combined_manifest_extra(
    *summaries: Callable[[Sequence[Any]], Dict[str, Any]],
) -> Callable[[Sequence[Any]], Dict[str, Any]]:
    """Merge several manifest-summary callables into one."""

    def extra(results: Sequence[Any]) -> Dict[str, Any]:
        merged: Dict[str, Any] = {}
        for summary in summaries:
            merged.update(summary(results))
        return merged

    return extra


@register_result_type
@dataclass
class SweepPoint:
    """Measurements at one offered load."""

    offered_qps: float
    throughput: float  # completed per second in the window
    mean: float  # seconds
    p50: float
    p95: float
    p99: float
    completed: int
    #: Per-SLO verdicts (:meth:`SLOMonitor.summary`) when the point ran
    #: with ``--slo`` objectives; ``None`` otherwise. Optional with a
    #: default so journals written before SLOs existed still decode.
    slo: Optional[Dict[str, dict]] = None
    #: Shard-supervisor recovery report (restarts / replayed_rounds /
    #: per-shard attribution) when worker processes had to be rebuilt
    #: mid-run; ``None`` for unsharded or fault-free points, which
    #: keeps an unfaulted sharded point equal to its vanilla twin and
    #: lets journals written before supervision existed still decode.
    shard_recovery: Optional[dict] = None
    #: The point's ``timeseries.json`` document
    #: (:func:`repro.telemetry.scrape.timeline_payload`) when it ran
    #: with ``--scrape-interval``; ``None`` otherwise, so scrape-off
    #: points stay equal to points measured before scraping existed
    #: and old journals still decode.
    timeline: Optional[dict] = None

    @property
    def slo_breaches(self) -> int:
        """Total breach alerts across the point's objectives."""
        if not self.slo:
            return 0
        return sum(v.get("breaches", 0) for v in self.slo.values())

    @property
    def saturated(self) -> bool:
        """Heuristic: completions fell >10% short of the offered load."""
        return self.throughput < 0.9 * self.offered_qps

    def row(self) -> list:
        """Table row: load, throughput, mean/p99 in ms."""
        return [
            self.offered_qps,
            round(self.throughput, 1),
            self.mean * 1e3,
            self.p99 * 1e3,
        ]


def _trace_requested(
    trace: Union[bool, TraceConfig],
    trace_dir: Optional[Union[str, Path]],
) -> bool:
    """Would this trace/trace_dir pair actually sample anything?

    ``trace_dir`` alone implies default tracing; a
    :class:`~repro.telemetry.tracing.TraceConfig` with
    ``sample_rate=0`` is a configured no-op and must not trip the
    sharded blocked-knob check (or pay telemetry shipping).
    """
    if trace_dir is not None:
        return True
    if isinstance(trace, TraceConfig):
        return trace.sample_rate > 0
    return bool(trace)


def shard_journal_name(derived_seed: int) -> str:
    """Per-point replay-journal filename, keyed by the derived seed.

    The seed is derived from the full float load
    (:func:`~repro.runner.derive_seed`), so distinct points can never
    collide — unlike the old ``qps%g`` naming, where e.g. 1000000.0
    and 1000000.4 both formatted as ``qps1e+06``.
    """
    return f"shard_journal_seed{derived_seed}.jsonl"


def find_shard_journal(
    shard_journal_dir: Union[str, Path],
    derived_seed: int,
    qps: Optional[float] = None,
) -> Optional[Path]:
    """Locate a point's replay journal, old or new naming.

    Prefers the seed-keyed name; falls back to the legacy
    ``shard_journal_qps{qps:g}.jsonl`` name (journals written before
    the seed keying) when *qps* is given. Returns ``None`` when
    neither exists.
    """
    base = Path(shard_journal_dir)
    path = base / shard_journal_name(derived_seed)
    if path.exists():
        return path
    if qps is not None:
        legacy = base / f"shard_journal_qps{qps:g}.jsonl"
        if legacy.exists():
            return legacy
    return None


def measure_at_load(
    build_world: Callable[..., World],
    qps: float,
    duration: float = 1.0,
    warmup: float = 0.25,
    mix: Optional[RequestMix] = None,
    seed: int = 1,
    fault_plan: Optional[FaultPlan] = None,
    audit: bool = False,
    trace: Union[bool, TraceConfig] = False,
    trace_dir: Optional[Union[str, Path]] = None,
    slo: Optional[SLOSpec] = None,
    scrape_interval: Optional[float] = None,
    shards: int = 1,
    shard_timeout: Optional[float] = None,
    shard_restarts: Optional[int] = None,
    shard_journal_dir: Optional[Union[str, Path]] = None,
    **world_kwargs,
) -> SweepPoint:
    """Build a fresh world, drive it at *qps* for *duration* seconds,
    and report statistics over the post-warmup window.

    *slo* attaches live :class:`~repro.telemetry.slo.SLOMonitor`
    objectives (spec strings like ``"p99<5ms"`` or :class:`SLO`
    objects) to the client; the per-objective verdict summary rides the
    returned point's ``slo`` field.

    The world is rebuilt per point so measurements are independent; the
    seed is derived from the full float load via
    :func:`~repro.runner.derive_seed`, so even close loads (50.2 vs
    50.9 QPS) are decorrelated while the whole sweep stays
    reproducible — and the derivation is per-point, so a sweep gives
    identical results whether its points run serially or fanned out
    across processes.

    *fault_plan* arms a :class:`~repro.faults.FaultPlan` against the
    freshly-built world before the clock starts, so sweeps can measure
    behaviour under injected failures. *audit* runs the request
    conservation check (:func:`~repro.experiments.audit.audit_client`)
    after the window.

    *trace* enables dispatcher tracing for the point (``True`` or a
    :class:`~repro.telemetry.tracing.TraceConfig`); with *trace_dir*
    set, the sampled traces are exported there as Perfetto and OTLP
    JSON named after the offered load (setting *trace_dir* alone
    implies ``trace=True``). Tracing draws from its own named RNG
    stream, so the measured numbers are identical with or without it.
    """
    if warmup >= duration:
        raise ReproError(
            f"warmup ({warmup}) must be shorter than duration ({duration})"
        )
    if shards > 1:
        # The sharded core replaces the whole build-world/client/run
        # pipeline, so it is an opt-in capability of the *builder*:
        # models advertise it by attaching a ``sharded_runner``
        # callable (see repro.experiments.tail_at_scale). Anything
        # else fails loudly rather than silently measuring unsharded.
        runner = getattr(build_world, "sharded_runner", None)
        if runner is None:
            raise ReproError(
                f"builder {getattr(build_world, '__name__', build_world)!r} "
                f"has no sharded runner; only topologies ported to "
                f"repro.shard support shards > 1 (run with shards=1)"
            )
        # Telemetry knobs are forwarded only when the runner declares
        # them (adapter-based runners carry ``supported_telemetry``;
        # the hand-written fan-out runner carries none). A knob is
        # "requested" only when it would actually do something — a
        # TraceConfig with sampling disabled is a no-op, not a block.
        supported = frozenset(getattr(runner, "supported_telemetry", ()))
        requested = {
            "mix": mix is not None,
            "trace": _trace_requested(trace, trace_dir),
            "trace_dir": trace_dir is not None,
            "slo": slo is not None,
            "scrape": scrape_interval is not None,
        }
        blocked = [
            name for name, active in requested.items()
            if active and name not in supported
        ]
        if blocked:
            raise ReproError(
                f"this sharded runner does not support "
                f"{', '.join(blocked)}; run those with shards=1"
            )
        derived = derive_seed(seed, float(qps))
        journal_path = None
        if shard_journal_dir is not None:
            journal_path = Path(shard_journal_dir) / shard_journal_name(derived)
        telemetry = {
            name: value
            for name, value in (
                ("mix", mix), ("trace", trace),
                ("trace_dir", trace_dir), ("slo", slo),
            )
            if name in supported
        }
        if "scrape" in supported:
            # The knob is named "scrape" (capability-wise) but the
            # runner kwarg carries the interval itself.
            telemetry["scrape_interval"] = scrape_interval
        return runner(
            qps=qps,
            duration=duration,
            warmup=warmup,
            seed=derived,
            shards=shards,
            audit=audit,
            fault_plan=fault_plan,
            shard_timeout=shard_timeout,
            shard_restarts=shard_restarts,
            journal_path=journal_path,
            **telemetry,
            **world_kwargs,
        )
    if fault_plan is not None and fault_plan.shard_faults():
        raise ReproError(
            "fault plan carries shard_kill/shard_hang faults, which "
            "target the sharded execution layer; run with --shards N"
        )
    if shard_timeout is not None or shard_restarts is not None:
        raise ReproError(
            "shard_timeout/shard_restarts tune the shard supervisor; "
            "they need shards > 1"
        )
    return measure_vanilla_point(
        build_world, qps, duration, warmup, derive_seed(seed, float(qps)),
        mix=mix, fault_plan=fault_plan, audit=audit, trace=trace,
        trace_dir=trace_dir, slo=slo, scrape_interval=scrape_interval,
        **world_kwargs,
    )


def measure_vanilla_point(
    build_world: Callable[..., World],
    qps: float,
    duration: float,
    warmup: float,
    derived_seed: int,
    *,
    mix: Optional[RequestMix] = None,
    fault_plan: Optional[FaultPlan] = None,
    audit: bool = False,
    trace: Union[bool, TraceConfig] = False,
    trace_dir: Optional[Union[str, Path]] = None,
    slo: Optional[SLOSpec] = None,
    scrape_interval: Optional[float] = None,
    **world_kwargs,
) -> SweepPoint:
    """The raw single-simulator measurement behind one sweep point.

    Split out of :func:`measure_at_load` so the sharded adapter's
    planner fallback (:func:`repro.shard.adapter.sharded_load_point`)
    can run the *identical* code path with the *identical*
    already-derived seed — which is what makes ``shards=1`` trivially
    bit-identical to vanilla. Callers are expected to have done the
    shard/tuning guard checks; *derived_seed* is used as-is.
    """
    if trace_dir is not None and not trace:
        trace = True
    world = build_world(seed=derived_seed, **world_kwargs)
    if trace:
        world.dispatcher.trace = trace
    if fault_plan is not None:
        FaultInjector(
            world.sim, world.deployment, world.cluster.network, fault_plan
        ).arm()
    client = OpenLoopClient(
        world.sim,
        world.dispatcher,
        arrivals=qps,
        mix=mix,
        stop_at=duration,
        realism=world.realism,
    )
    slos = resolve_slos(slo, window=max(0.05, min(1.0, duration - warmup)))
    slo_monitor = None
    if slos:
        slo_monitor = SLOMonitor(
            world.sim, slos, interval=max(duration / 100.0, 0.005)
        )
        slo_monitor.attach(client)
        slo_monitor.start(stop_at=duration)
    scraper = None
    if scrape_interval is not None:
        from ..telemetry.metrics import MetricsRegistry
        from ..telemetry.scrape import Scraper, scrape_tiers

        registry = MetricsRegistry()
        registry.instrument_world(world)
        scraper = Scraper(
            world.sim,
            interval=scrape_interval,
            tiers=scrape_tiers(world.deployment),
            client=client,
            registry=registry,
            stop_at=duration,
        ).start()
    clock_start = world.sim.now
    client.start()
    world.sim.run(until=duration)
    if audit:
        audit_client(
            client, world.sim, dispatcher=world.dispatcher,
            clock_start=clock_start,
        )
    timeline = None
    scrape_series = None
    if scraper is not None:
        from ..telemetry.scrape import timeline_payload

        scrape_series = scraper.snapshot()
        timeline = timeline_payload(
            scrape_series,
            interval=scrape_interval,
            meta={
                "qps": qps, "duration": duration, "warmup": warmup,
                "seed": derived_seed, "shards": 1,
            },
        )
    if trace and trace_dir is not None:
        traces = world.dispatcher.tracer.traces
        base = Path(trace_dir)
        base.mkdir(parents=True, exist_ok=True)
        stem = f"qps{qps:g}"
        write_perfetto(base / f"{stem}.perfetto.json", traces,
                       counters=scrape_series)
        write_otlp(base / f"{stem}.otlp.json", traces)
    if timeline is not None and trace_dir is not None:
        from ..telemetry.scrape import write_timeline

        base = Path(trace_dir)
        base.mkdir(parents=True, exist_ok=True)
        write_timeline(base / f"qps{qps:g}.timeseries.json", timeline)

    slo_summary = (
        slo_monitor.summary() if slo_monitor is not None else None
    )
    recorder = client.latencies
    completed = recorder.count(since=warmup, until=duration)
    if completed == 0:
        # Fully wedged system: report the offered load with infinite-ish
        # latency markers rather than crashing the sweep.
        return SweepPoint(qps, 0.0, float("inf"), float("inf"), float("inf"),
                          float("inf"), 0, slo=slo_summary,
                          timeline=timeline)
    window = (warmup, duration)
    return SweepPoint(
        offered_qps=qps,
        throughput=recorder.throughput(*window),
        mean=recorder.mean(since=warmup, until=duration),
        p50=recorder.percentile(50, since=warmup, until=duration),
        p95=recorder.percentile(95, since=warmup, until=duration),
        p99=recorder.percentile(99, since=warmup, until=duration),
        completed=completed,
        slo=slo_summary,
        timeline=timeline,
    )


def _config_token(value: Any) -> Any:
    """A deterministic, hashable stand-in for a config value.

    Primitives pass through; everything else (distributions, realism
    configs, fault plans, request mixes) contributes its ``repr``,
    which is deterministic for all of them — unlike a pickle, which
    could differ between interpreter versions and silently invalidate
    every journaled key.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_config_token(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _config_token(v) for k, v in value.items()}
    return repr(value)


def sweep_config(**settings: Any) -> Dict[str, Any]:
    """The code-relevant config dict a sweep hashes into its point
    keys and records in its manifest."""
    return {key: _config_token(value) for key, value in sorted(settings.items())}


def load_latency_sweep(
    build_world: Callable[..., World],
    loads: Sequence[float],
    duration: float = 1.0,
    warmup: float = 0.25,
    mix: Optional[RequestMix] = None,
    seed: int = 1,
    jobs: int = 1,
    run_dir: Optional[Union[str, Path]] = None,
    resume: bool = True,
    experiment: str = "load_latency",
    retries: int = 0,
    timeout: Optional[float] = None,
    fault_plan: Optional[FaultPlan] = None,
    audit: bool = False,
    trace: Union[bool, TraceConfig] = False,
    trace_dir: Optional[Union[str, Path]] = None,
    slo: Optional[SLOSpec] = None,
    scrape_interval: Optional[float] = None,
    shards: int = 1,
    shard_timeout: Optional[float] = None,
    shard_restarts: Optional[int] = None,
    **world_kwargs,
) -> List[SweepPoint]:
    """One :func:`measure_at_load` per offered load, ascending.

    With ``jobs > 1`` the points run in parallel worker processes
    (each point already builds its own world from its own derived
    seed, so the results are identical to the serial run). *build_world*
    and *mix* must then be picklable — every builder in
    :mod:`repro.apps` is.

    With *run_dir* set, every completed point is journaled to that
    directory under a content key covering (*experiment*, the offered
    load, the derived seed, the sweep config); ``resume=True`` reuses
    journaled points instead of recomputing them, so a killed sweep
    restarted with the same arguments computes exactly the missing
    points — and, because seeds are derived per point, merges into a
    result byte-identical to an uninterrupted run. *retries*/*timeout*
    are the self-healing knobs of :func:`~repro.runner.parallel_map`.

    *trace*/*trace_dir* thread through to every point: traces export
    per load into *trace_dir*. Enabling tracing joins the sweep config
    (so journaled untraced points are not silently reused without
    producing trace files), but *trace_dir* itself does not — moving
    the output directory never invalidates a journal.
    """
    loads = sorted(loads)
    if trace_dir is not None and not trace:
        trace = True
    # Sharded points mirror their replay journals into the run
    # directory so a post-mortem can verify recovery digests.
    shard_journal_dir = (
        Path(run_dir) / "shard_journals"
        if run_dir is not None and shards > 1
        else None
    )
    point = functools.partial(
        measure_at_load, build_world, duration=duration, warmup=warmup,
        mix=mix, seed=seed, fault_plan=fault_plan, audit=audit,
        trace=trace, trace_dir=trace_dir, slo=slo,
        scrape_interval=scrape_interval, shards=shards,
        shard_timeout=shard_timeout, shard_restarts=shard_restarts,
        shard_journal_dir=shard_journal_dir,
        **world_kwargs,
    )
    if run_dir is None:
        return parallel_map(
            point, loads, jobs=jobs, retries=retries, timeout=timeout
        )
    config = sweep_config(
        builder=getattr(build_world, "__name__", repr(build_world)),
        duration=duration,
        warmup=warmup,
        mix=mix,
        fault_plan=fault_plan,
        audit=audit,
        **({"trace": trace} if trace else {}),
        **({"slo": [s.name for s in resolve_slos(slo, window=1.0)]}
           if slo else {}),
        # Like trace: scraping joins the config only when on, so the
        # journal keys of existing scrape-off sweeps never change (and
        # a scraped rerun doesn't silently reuse timeline-less points).
        **({"scrape": scrape_interval} if scrape_interval is not None
           else {}),
        # shards joins the config only when sharded — the journal keys
        # of existing shards=1 sweeps must not change, and sharded
        # points are a different (tolerance-bearing) measurement.
        **({"shards": shards} if shards != 1 else {}),
        **world_kwargs,
    )
    seeds = [derive_seed(seed, float(qps)) for qps in loads]
    keys = [
        point_key(experiment, {"qps": float(qps)}, derived, config)
        for qps, derived in zip(loads, seeds)
    ]
    store = RunStore(run_dir, experiment, config=config)
    summaries = (
        [shard_recovery_manifest_summary, shard_sync_manifest_summary]
        if shards > 1 else []
    )
    if slo:
        summaries.append(slo_manifest_summary)
    return durable_map(
        point, loads, store=store, keys=keys, seeds=seeds,
        resume=resume, jobs=jobs, retries=retries, timeout=timeout,
        manifest_extra=(
            _combined_manifest_extra(*summaries) if summaries else None
        ),
    )


def saturation_load(
    points: Sequence[SweepPoint],
    p99_limit: Optional[float] = None,
) -> float:
    """The highest offered load the system sustained.

    A point counts as sustained when throughput kept up with the
    offered load and (optionally) p99 stayed under *p99_limit* seconds.
    Returns 0.0 when even the lightest load saturated.
    """
    sustained = 0.0
    for point in sorted(points, key=lambda p: p.offered_qps):
        if point.saturated:
            break
        if p99_limit is not None and point.p99 > p99_limit:
            break
        sustained = point.offered_qps
    return sustained
