"""Load-latency sweeps: the measurement harness behind every
validation figure.

The paper's methodology (SSIV): drive the application with an open-loop
client at a fixed offered load, measure mean and tail (p99) latency,
repeat across loads up to and past saturation, and compare the
simulated curve against the real system's. Here both curves come from
:func:`load_latency_sweep` — the "real" one from a world built with a
:class:`~repro.testbed.RealismConfig`.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from ..apps.base import World
from ..errors import ReproError
from ..runner import derive_seed, parallel_map
from ..workload import OpenLoopClient, RequestMix


@dataclass
class SweepPoint:
    """Measurements at one offered load."""

    offered_qps: float
    throughput: float  # completed per second in the window
    mean: float  # seconds
    p50: float
    p95: float
    p99: float
    completed: int

    @property
    def saturated(self) -> bool:
        """Heuristic: completions fell >10% short of the offered load."""
        return self.throughput < 0.9 * self.offered_qps

    def row(self) -> list:
        """Table row: load, throughput, mean/p99 in ms."""
        return [
            self.offered_qps,
            round(self.throughput, 1),
            self.mean * 1e3,
            self.p99 * 1e3,
        ]


def measure_at_load(
    build_world: Callable[..., World],
    qps: float,
    duration: float = 1.0,
    warmup: float = 0.25,
    mix: Optional[RequestMix] = None,
    seed: int = 1,
    **world_kwargs,
) -> SweepPoint:
    """Build a fresh world, drive it at *qps* for *duration* seconds,
    and report statistics over the post-warmup window.

    The world is rebuilt per point so measurements are independent; the
    seed is derived from the full float load via
    :func:`~repro.runner.derive_seed`, so even close loads (50.2 vs
    50.9 QPS) are decorrelated while the whole sweep stays
    reproducible — and the derivation is per-point, so a sweep gives
    identical results whether its points run serially or fanned out
    across processes.
    """
    if warmup >= duration:
        raise ReproError(
            f"warmup ({warmup}) must be shorter than duration ({duration})"
        )
    world = build_world(seed=derive_seed(seed, float(qps)), **world_kwargs)
    client = OpenLoopClient(
        world.sim,
        world.dispatcher,
        arrivals=qps,
        mix=mix,
        stop_at=duration,
        realism=world.realism,
    )
    client.start()
    world.sim.run(until=duration)

    recorder = client.latencies
    completed = recorder.count(since=warmup, until=duration)
    if completed == 0:
        # Fully wedged system: report the offered load with infinite-ish
        # latency markers rather than crashing the sweep.
        return SweepPoint(qps, 0.0, float("inf"), float("inf"), float("inf"),
                          float("inf"), 0)
    window = (warmup, duration)
    return SweepPoint(
        offered_qps=qps,
        throughput=recorder.throughput(*window),
        mean=recorder.mean(since=warmup, until=duration),
        p50=recorder.percentile(50, since=warmup, until=duration),
        p95=recorder.percentile(95, since=warmup, until=duration),
        p99=recorder.percentile(99, since=warmup, until=duration),
        completed=completed,
    )


def load_latency_sweep(
    build_world: Callable[..., World],
    loads: Sequence[float],
    duration: float = 1.0,
    warmup: float = 0.25,
    mix: Optional[RequestMix] = None,
    seed: int = 1,
    jobs: int = 1,
    **world_kwargs,
) -> List[SweepPoint]:
    """One :func:`measure_at_load` per offered load, ascending.

    With ``jobs > 1`` the points run in parallel worker processes
    (each point already builds its own world from its own derived
    seed, so the results are identical to the serial run). *build_world*
    and *mix* must then be picklable — every builder in
    :mod:`repro.apps` is.
    """
    point = functools.partial(
        measure_at_load, build_world, duration=duration, warmup=warmup,
        mix=mix, seed=seed, **world_kwargs,
    )
    return parallel_map(point, sorted(loads), jobs=jobs)


def saturation_load(
    points: Sequence[SweepPoint],
    p99_limit: Optional[float] = None,
) -> float:
    """The highest offered load the system sustained.

    A point counts as sustained when throughput kept up with the
    offered load and (optionally) p99 stayed under *p99_limit* seconds.
    Returns 0.0 when even the lightest load saturated.
    """
    sustained = 0.0
    for point in sorted(points, key=lambda p: p.offered_qps):
        if point.saturated:
            break
        if p99_limit is not None and point.p99 > p99_limit:
            break
        sustained = point.offered_qps
    return sustained
