"""Registry mapping paper experiment ids to their runners.

The per-experiment index of DESIGN.md SS3 in executable form: each
entry knows which figure/table it regenerates and which callable runs
it. ``benchmarks/`` drives these; users can too::

    from repro.experiments import registry
    result = registry.get("fig8").run()
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Any, Callable, Dict, List

from ..errors import ReproError
from . import (
    comparison,
    orchestration,
    power_mgmt,
    resilience,
    tail_at_scale,
    validation,
)


@dataclass(frozen=True)
class ExperimentSpec:
    """One reproducible evaluation artifact."""

    exp_id: str
    paper_ref: str
    title: str
    runner: Callable[..., Any]

    def _accepts(self, name: str) -> bool:
        return name in inspect.signature(self.runner).parameters

    @property
    def supports_jobs(self) -> bool:
        """Whether the runner can fan work out across processes."""
        return self._accepts("jobs")

    @property
    def supports_run_dir(self) -> bool:
        """Whether the runner checkpoints to a journaled run directory."""
        return self._accepts("run_dir")

    @property
    def supports_audit(self) -> bool:
        """Whether the runner can run the conservation audit."""
        return self._accepts("audit")

    @property
    def supports_trace_dir(self) -> bool:
        """Whether the runner can export request traces."""
        return self._accepts("trace_dir")

    @property
    def supports_slo(self) -> bool:
        """Whether the runner can evaluate declarative SLOs live."""
        return self._accepts("slo")

    @property
    def supports_scrape(self) -> bool:
        """Whether the runner can sample sim-time timelines
        (``--scrape-interval``)."""
        return self._accepts("scrape_interval")

    @property
    def supports_fault_plan(self) -> bool:
        """Whether the runner can arm an injected fault plan."""
        return self._accepts("fault_plan")

    @property
    def supports_shards(self) -> bool:
        """Whether the runner can use the sharded parallel core."""
        return self._accepts("shards")

    @property
    def supports_shard_tuning(self) -> bool:
        """Whether the runner exposes the shard-supervisor knobs
        (window timeout, restart budget)."""
        return self._accepts("shard_timeout")

    def run(
        self,
        jobs: int = 1,
        run_dir: Any = None,
        resume: bool = True,
        audit: bool = False,
        trace_dir: Any = None,
        trace_sample: float = 1.0,
        slo: Any = None,
        scrape_interval: Any = None,
        fault_plan: Any = None,
        shards: int = 1,
        shard_timeout: Any = None,
        shard_restarts: Any = None,
        **kwargs: Any,
    ) -> Any:
        """Run the experiment.

        ``jobs`` fans sweeps out over processes, ``run_dir``/``resume``
        journal completed points for durable restarts, and ``audit``
        turns on the request-conservation check, and ``trace_dir``
        exports sampled request traces (at ``trace_sample``) — each
        forwarded only where the runner supports it (inherently serial
        experiments — timelines, single simulations — silently ignore
        ``jobs``; asking an unsupported runner to checkpoint, audit or
        trace is an error, not a silent no-op)."""
        if self.supports_jobs:
            kwargs.setdefault("jobs", jobs)
        if run_dir is not None:
            if not self.supports_run_dir:
                raise ReproError(
                    f"experiment {self.exp_id!r} does not support run_dir"
                )
            kwargs.setdefault("run_dir", run_dir)
            kwargs.setdefault("resume", resume)
        if audit:
            if not self.supports_audit:
                raise ReproError(
                    f"experiment {self.exp_id!r} does not support audit"
                )
            kwargs.setdefault("audit", True)
        if trace_dir is not None:
            if not self.supports_trace_dir:
                raise ReproError(
                    f"experiment {self.exp_id!r} does not support trace_dir"
                )
            kwargs.setdefault("trace_dir", trace_dir)
            if self._accepts("trace_sample"):
                kwargs.setdefault("trace_sample", trace_sample)
        if slo is not None:
            if not self.supports_slo:
                raise ReproError(
                    f"experiment {self.exp_id!r} does not support slo"
                )
            kwargs.setdefault("slo", slo)
        if scrape_interval is not None:
            if not self.supports_scrape:
                raise ReproError(
                    f"experiment {self.exp_id!r} does not support "
                    f"scrape_interval"
                )
            kwargs.setdefault("scrape_interval", scrape_interval)
        if fault_plan is not None:
            if not self.supports_fault_plan:
                raise ReproError(
                    f"experiment {self.exp_id!r} does not support fault_plan"
                )
            kwargs.setdefault("fault_plan", fault_plan)
        # Shard gating, untangled: ``shards=1`` is the default single-core
        # path and is ALWAYS accepted, capable runner or not — only a
        # request for actual parallelism (shards >= 2) requires runner
        # support. The supervisor knobs ride on top of parallelism, so
        # they are checked against the *requested* shard count, never
        # against runner capability first.
        if shards < 1:
            raise ReproError(f"--shards must be >= 1, got {shards}")
        if shards > 1:
            if not self.supports_shards:
                raise ReproError(
                    f"experiment {self.exp_id!r} does not support the "
                    f"sharded parallel core (--shards)"
                )
            kwargs.setdefault("shards", shards)
        if shard_timeout is not None or shard_restarts is not None:
            if shards == 1:
                raise ReproError(
                    "--shard-timeout/--shard-restarts tune the shard "
                    "supervisor; they need --shards N"
                )
            if not self.supports_shard_tuning:
                raise ReproError(
                    f"experiment {self.exp_id!r} does not expose the "
                    f"shard supervisor knobs"
                )
            if shard_timeout is not None:
                kwargs.setdefault("shard_timeout", shard_timeout)
            if shard_restarts is not None:
                kwargs.setdefault("shard_restarts", shard_restarts)
        return self.runner(**kwargs)


_SPECS: List[ExperimentSpec] = [
    ExperimentSpec(
        "fig5", "Figure 5",
        "2-tier NGINX-memcached validation across concurrency configs",
        validation.fig5_two_tier,
    ),
    ExperimentSpec(
        "fig6", "Figure 6",
        "3-tier NGINX-memcached-MongoDB validation",
        validation.fig6_three_tier,
    ),
    ExperimentSpec(
        "fig8", "Figure 8",
        "Load balancing validation (scale-out 4/8/16)",
        validation.fig8_load_balancing,
    ),
    ExperimentSpec(
        "fig10", "Figure 10",
        "Request fanout validation (fanout 4..16)",
        validation.fig10_fanout,
    ),
    ExperimentSpec(
        "fig12a", "Figure 12(a)",
        "Apache Thrift echo RPC validation",
        validation.fig12a_thrift,
    ),
    ExperimentSpec(
        "fig12b", "Figure 12(b)",
        "Social Network end-to-end validation",
        validation.fig12b_social_network,
    ),
    ExperimentSpec(
        "fig13_nginx", "Figure 13 (left)",
        "uqSim vs BigHouse: single-process NGINX",
        comparison.nginx_panel,
    ),
    ExperimentSpec(
        "fig13_memcached", "Figure 13 (right)",
        "uqSim vs BigHouse: 4-thread memcached",
        comparison.memcached_panel,
    ),
    ExperimentSpec(
        "fig14", "Figure 14",
        "Tail at scale: fanout with slow servers",
        tail_at_scale.tail_at_scale_sweep,
    ),
    ExperimentSpec(
        "retry_storm", "beyond the paper",
        "Retry-storm metastability: goodput under overload with "
        "no/unbudgeted/budgeted retries",
        resilience.retry_storm_sweep,
    ),
    ExperimentSpec(
        "hedging", "beyond the paper",
        "Hedged requests on the 100-replica straggler tier "
        "(p99 vs hedge delay)",
        resilience.hedging_sweep,
    ),
    ExperimentSpec(
        "node_failure", "beyond the paper",
        "Self-healing: machine kill, rescheduling onto survivors, "
        "goodput recovery",
        orchestration.node_failure_experiment,
    ),
    ExperimentSpec(
        "rollout", "beyond the paper",
        "SLO-gated canary deploys: regressed versions roll back, "
        "clean ones promote",
        orchestration.rollout_experiment,
    ),
    ExperimentSpec(
        "fig16", "Figure 16",
        "Power management timeline under diurnal load",
        power_mgmt.run_power_experiment,
    ),
    ExperimentSpec(
        "table3", "Table III",
        "Power management QoS violation rates vs decision interval",
        power_mgmt.violation_table,
    ),
]

_BY_ID: Dict[str, ExperimentSpec] = {spec.exp_id: spec for spec in _SPECS}


def get(exp_id: str) -> ExperimentSpec:
    """Look up an experiment by id (e.g. ``"fig8"``)."""
    try:
        return _BY_ID[exp_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {exp_id!r}; available: {sorted(_BY_ID)}"
        ) from None


def all_experiments() -> List[ExperimentSpec]:
    """Every registered experiment, in paper order."""
    return list(_SPECS)
