"""Orchestration studies: self-healing and SLO-gated rollouts.

Neither experiment exists in the paper — they exercise the cluster
control plane (:mod:`repro.controlplane`) the same way the resilience
studies exercise :mod:`repro.resilience`:

* **Node failure** — a replicated tier under steady load loses a whole
  machine to a :meth:`~repro.faults.FaultPlan.fail_machine` fault. The
  reconciler retires the dead replicas and reschedules replacements
  onto the surviving machines (placement + cold start), so goodput dips
  and then recovers without a single lost request — every in-flight
  casualty resolves as a timeout and retries.
* **Rollout** — a canary of a candidate version joins the tier through
  the control plane. A regressed candidate breaches its canary-scoped
  SLO and is rolled back automatically, leaving the stable fleet
  untouched; a healthy candidate survives its observation window and
  rolls out to the whole tier.

Both sweep over seeds (one independent world per seed), fan out across
processes, journal into ``--run-dir`` for durable resume, and support
the conservation audit.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from ..apps.base import World, new_world
from ..controlplane import (
    CanaryRollout,
    ControlPlane,
    PlacementPolicy,
    ReplicaSpec,
    RollingUpdate,
)
from ..distributions import Exponential
from ..errors import ConfigError
from ..faults import FaultInjector, FaultPlan
from ..hardware import Machine
from ..resilience import ResiliencePolicy, RetryPolicy
from ..runner import (
    RunStore,
    derive_seed,
    durable_map,
    parallel_map,
    point_key,
    register_result_type,
)
from ..service import (
    ExecutionPath,
    Microservice,
    PathSelector,
    SimpleModel,
    SingleQueue,
    Stage,
)
from ..service.microservice import STATE_UP
from ..telemetry.slo import LATENCY, SLO
from ..topology import PathNode, PathTree
from ..workload import OpenLoopClient
from .audit import audit_client
from .loadsweep import sweep_config

#: The tier every orchestrated world serves.
SERVICE = "web"


@dataclass
class ClusterWorld:
    """A :class:`~repro.apps.base.World` managed by a control plane."""

    world: World
    control_plane: ControlPlane

    @property
    def sim(self):
        return self.world.sim


def replica_factory(world: World, mean_service: float):
    """A :class:`~repro.controlplane.ReplicaSpec` factory building
    one-stage exponential replicas of the managed tier.

    The returned callable follows the factory contract: it only builds
    the instance — the control plane owns naming, core allocation, and
    deployment registration.
    """

    def factory(name: str, machine, cores, version: str) -> Microservice:
        stage = Stage(
            "process", 0, SingleQueue(), base=Exponential(mean_service)
        )
        selector = PathSelector([ExecutionPath(0, "only", [0])])
        return Microservice(
            name,
            world.sim,
            [stage],
            selector,
            cores,
            model=SimpleModel(),
            machine_name=machine.name,
            tier=SERVICE,
        )

    return factory


def build_cluster_world(
    machines: int = 4,
    cores_per_machine: int = 4,
    racks: int = 2,
    zones: int = 1,
    replicas: int = 4,
    cores_per_replica: int = 1,
    mean_service: float = 1e-3,
    placement: str = "spread",
    domain: str = "machine",
    reconcile_interval: float = 0.05,
    cold_start: float = 0.1,
    seed: int = 0,
) -> ClusterWorld:
    """A multi-machine cluster whose only tier is deployed *by the
    control plane* rather than hand-placed.

    Machines are labelled round-robin into *racks*/*zones* failure
    domains; the initial placement is synchronous (deploys precede
    traffic) and every later replica — replacement, surge, scale-up —
    pays placement plus the *cold_start* delay.
    """
    if replicas < 2:
        raise ConfigError(
            f"orchestrated worlds need >= 2 replicas (the reconciler "
            f"never empties a tier), got {replicas}"
        )
    world = new_world(seed=seed)
    for i in range(machines):
        rack_id = i % racks
        world.cluster.add_machine(
            Machine(
                f"node{i}",
                cores_per_machine,
                rack=f"rack{rack_id}",
                zone=f"zone{rack_id % zones}",
            )
        )
    world.deployment.set_pool(SERVICE, 8)
    world.dispatcher.add_tree(
        PathTree("orchestrated").chain(PathNode("root", SERVICE))
    )
    control_plane = ControlPlane(
        world.sim,
        world.cluster,
        world.deployment,
        reconcile_interval=reconcile_interval,
        cold_start=cold_start,
    )
    control_plane.apply(
        ReplicaSpec(
            SERVICE,
            replicas,
            cores_per_replica,
            replica_factory(world, mean_service),
            PlacementPolicy(placement, domain),
        )
    )
    world.labels.update(
        scenario="orchestrated",
        config=f"machines={machines} replicas={replicas}",
    )
    return ClusterWorld(world, control_plane)


# ---------------------------------------------------------------------------
# Node failure: kill a machine, watch the reconciler heal the tier
# ---------------------------------------------------------------------------

@register_result_type
@dataclass
class NodeFailurePoint:
    """One seed's machine-kill run: loss, healing, and recovery."""

    seed: int
    machine: str
    fail_at: float
    requests_sent: int
    requests_ok: int
    timeouts: int
    lost: int  #: sent but never resolved (conservation demands 0)
    goodput_before: float  #: completed/s up to the kill
    goodput_after: float  #: completed/s over the recovery window
    reschedules: int
    retirements: int
    placements: int
    survivors: int  #: replicas up at the end

    @property
    def recovered(self) -> bool:
        """Goodput over the recovery window regained >= 80% of the
        pre-kill rate."""
        return self.goodput_after >= 0.8 * self.goodput_before


def measure_node_failure(
    seed: int,
    qps: float = 400.0,
    duration: float = 3.0,
    fail_at: float = 0.5,
    machine: str = "node0",
    recovery_from: float = 1.5,
    machines: int = 4,
    replicas: int = 4,
    timeout: float = 0.2,
    fault_plan: Optional[FaultPlan] = None,
    audit: bool = False,
    **world_kwargs,
) -> NodeFailurePoint:
    """Run one machine-kill scenario and report healing statistics.

    The default plan kills *machine* at *fail_at*; passing *fault_plan*
    (e.g. from ``--fault-plan``) replaces it wholesale. The client
    retries timed-out requests, so requests in flight on the dead
    machine resolve instead of hanging — with *audit* on, the
    conservation check proves none leaked.
    """
    cw = build_cluster_world(
        machines=machines, replicas=replicas,
        seed=derive_seed(seed, "node_failure", float(qps)),
        **world_kwargs,
    )
    world, cp = cw.world, cw.control_plane
    cp.start(stop_at=duration)
    plan = fault_plan or FaultPlan().fail_machine(fail_at, machine)
    FaultInjector(
        world.sim, world.deployment, world.cluster.network, plan,
        cluster=world.cluster,
    ).arm()
    client = OpenLoopClient(
        world.sim,
        world.dispatcher,
        arrivals=qps,
        stop_at=duration,
        resilience=ResiliencePolicy(
            timeout=timeout, retry=RetryPolicy(max_attempts=3)
        ),
    )
    client.start()
    world.sim.run(until=duration + 1.0)
    if audit:
        audit_client(client, world.sim, dispatcher=world.dispatcher)
    resolved = sum(client.outcomes.values())
    up = [
        r for r in cp.managed_replicas(SERVICE) if r.state == STATE_UP
    ]
    return NodeFailurePoint(
        seed=seed,
        machine=machine,
        fail_at=fail_at,
        requests_sent=client.requests_sent,
        requests_ok=client.requests_ok,
        timeouts=client.outcomes.get("timeout", 0),
        lost=client.requests_sent - resolved - client.outstanding,
        goodput_before=client.throughput(0.1, fail_at),
        goodput_after=client.throughput(recovery_from, duration),
        reschedules=cp.reschedules,
        retirements=cp.retirements,
        placements=cp.placements,
        survivors=len(up),
    )


def node_failure_experiment(
    seeds: Sequence[int] = (1, 2, 3),
    qps: float = 400.0,
    duration: float = 3.0,
    fail_at: float = 0.5,
    machine: str = "node0",
    seed: int = 0,
    jobs: int = 1,
    run_dir: Optional[Union[str, Path]] = None,
    resume: bool = True,
    fault_plan: Optional[FaultPlan] = None,
    audit: bool = False,
    **world_kwargs,
) -> List[NodeFailurePoint]:
    """The self-healing study: one machine-kill world per seed.

    *seed* offsets the whole sweep (each point derives its own world
    seed), so ``--seed`` decorrelates every world at once while any
    single point stays reproducible in isolation. Results journal into
    *run_dir* under content keys, exactly like the load sweeps.
    """
    point = functools.partial(
        measure_node_failure, qps=qps, duration=duration, fail_at=fail_at,
        machine=machine, fault_plan=fault_plan, audit=audit, **world_kwargs,
    )
    items = [derive_seed(seed, int(s)) for s in seeds]
    if run_dir is None:
        return parallel_map(point, items, jobs=jobs)
    config = sweep_config(
        experiment="node_failure", qps=qps, duration=duration,
        fail_at=fail_at, machine=machine, fault_plan=fault_plan,
        audit=audit, **world_kwargs,
    )
    keys = [
        point_key("node_failure", {"seed": s}, s, config) for s in items
    ]
    store = RunStore(run_dir, "node_failure", config=config)
    return durable_map(
        point, items, store=store, keys=keys, seeds=items,
        resume=resume, jobs=jobs,
    )


# ---------------------------------------------------------------------------
# Rollout: canary a candidate version behind an SLO gate
# ---------------------------------------------------------------------------

@register_result_type
@dataclass
class RolloutPoint:
    """One seed's deploy: what the gate decided and what survived."""

    seed: int
    strategy: str
    regression: float  #: candidate service-time multiplier (1.0 = clean)
    state: str  #: rolled_out | rolled_back | in_progress
    breaches: int
    decided_at: Optional[float]
    #: replica name -> version once the rollout decided.
    final_versions: Dict[str, str] = field(default_factory=dict)
    requests_ok: int = 0
    goodput: float = 0.0

    @property
    def rolled_back(self) -> bool:
        return self.state == "rolled_back"


def measure_rollout(
    seed: int,
    regression: float = 10.0,
    strategy: str = "canary",
    qps: float = 300.0,
    duration: float = 4.0,
    start_at: float = 0.5,
    observe_for: float = 1.5,
    slo_threshold: float = 10e-3,
    mean_service: float = 1e-3,
    audit: bool = False,
    **world_kwargs,
) -> RolloutPoint:
    """Deploy a ``v2`` candidate whose service time is ``regression`` x
    the stable version's, gated (for ``strategy="canary"``) by a
    latency SLO scoped to the canary cohort alone."""
    if strategy not in ("canary", "rolling"):
        raise ConfigError(
            f"strategy must be 'canary' or 'rolling', got {strategy!r}"
        )
    cw = build_cluster_world(
        mean_service=mean_service,
        seed=derive_seed(seed, "rollout", strategy, float(regression)),
        **world_kwargs,
    )
    world, cp = cw.world, cw.control_plane
    cp.start(stop_at=duration)
    candidate = replica_factory(world, mean_service * regression)
    if strategy == "canary":
        rollout = CanaryRollout(
            cp, SERVICE, "v2", candidate,
            slos=[SLO(
                LATENCY, threshold=slo_threshold, percentile=95.0,
                window=0.5,
            )],
            canary_replicas=1,
            observe_for=observe_for,
            min_samples=10,
        )
    else:
        rollout = RollingUpdate(cp, SERVICE, "v2", factory=candidate)
    world.sim.schedule(start_at, rollout.start)
    client = OpenLoopClient(
        world.sim,
        world.dispatcher,
        arrivals=qps,
        stop_at=duration,
        resilience=ResiliencePolicy(timeout=0.5),
    )
    client.start()
    world.sim.run(until=duration + 1.0)
    if audit:
        audit_client(client, world.sim, dispatcher=world.dispatcher)
    result = rollout.result
    return RolloutPoint(
        seed=seed,
        strategy=strategy,
        regression=regression,
        state=result.state,
        breaches=result.breaches,
        decided_at=result.decided_at,
        final_versions=dict(result.final_versions),
        requests_ok=client.requests_ok,
        goodput=client.throughput(duration * 0.25, duration),
    )


def rollout_experiment(
    seeds: Sequence[int] = (1, 2, 3),
    regression: float = 10.0,
    strategy: str = "canary",
    seed: int = 0,
    jobs: int = 1,
    run_dir: Optional[Union[str, Path]] = None,
    resume: bool = True,
    audit: bool = False,
    **kwargs,
) -> List[RolloutPoint]:
    """The SLO-gated deploy study: one rollout world per seed.

    With the default ``regression=10.0`` the candidate is badly
    regressed and every seed should end ``rolled_back`` with the stable
    version still serving; ``regression=1.0`` is the control — a clean
    candidate that promotes."""
    point = functools.partial(
        measure_rollout, regression=regression, strategy=strategy,
        audit=audit, **kwargs,
    )
    items = [derive_seed(seed, int(s)) for s in seeds]
    if run_dir is None:
        return parallel_map(point, items, jobs=jobs)
    config = sweep_config(
        experiment="rollout", regression=regression, strategy=strategy,
        audit=audit, **kwargs,
    )
    keys = [point_key("rollout", {"seed": s}, s, config) for s in items]
    store = RunStore(run_dir, "rollout", config=config)
    return durable_map(
        point, items, store=store, keys=keys, seeds=items,
        resume=resume, jobs=jobs,
    )
