"""Opt-in conservation audits for experiment runs.

A simulation whose bookkeeping silently leaks requests produces
plausible-looking but wrong curves. The audit checks the invariants
every run must satisfy — no request created is lost, every completion
was counted exactly once, the clock never ran backwards — and raises
:class:`~repro.errors.AuditError` naming each violated invariant.
It is opt-in (``audit=True`` on the measurement functions, ``--audit``
on the CLI) because it adds per-run accounting reads, not because it
is ever expected to fire.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from ..engine import Simulator
from ..errors import AuditError
from ..service.job import OUTCOME_OK
from ..workload import OpenLoopClient


def audit_client(
    client: OpenLoopClient,
    sim: Optional[Simulator] = None,
    *,
    dispatcher=None,
    clock_start: float = 0.0,
) -> None:
    """Check request conservation for one client's run.

    Invariants:

    * every request sent was resolved (ok/timeout/shed/failed) or is
      still in flight: ``sent == sum(outcomes) + outstanding``;
    * outcome tallies and the completion counter agree;
    * only ``ok`` resolutions entered the latency recorder;
    * nothing went negative, and the clock is finite and did not move
      backwards past *clock_start*;
    * with *dispatcher* given (valid only when this client is its sole
      traffic source, as in the measurement harness), the client's send
      counter matches the dispatcher's independent admission counter —
      the check that catches a tampered or drifting ``requests_sent``,
      which the in-client identities alone cannot see.
    """
    problems: List[str] = []
    sent = client.requests_sent
    completed = client.requests_completed
    resolved = sum(client.outcomes.values())
    outstanding = client.outstanding

    if dispatcher is not None and sent != dispatcher.requests_submitted:
        problems.append(
            f"conservation broken: client sent {sent} requests but the "
            f"dispatcher admitted {dispatcher.requests_submitted}"
        )
    if outstanding < 0:
        problems.append(
            f"outstanding is negative ({outstanding}): more completions "
            f"({completed}) than requests sent ({sent})"
        )
    if resolved != completed:
        problems.append(
            f"outcome tallies sum to {resolved} but "
            f"requests_completed={completed}"
        )
    if sent != resolved + outstanding:
        problems.append(
            f"conservation broken: sent={sent} != "
            f"resolved={resolved} + outstanding={outstanding}"
        )
    ok = client.outcomes.get(OUTCOME_OK, 0)
    recorded = len(client.latencies)
    if recorded != ok:
        problems.append(
            f"latency recorder holds {recorded} samples but "
            f"{ok} requests resolved ok"
        )
    if len(client.completed_requests) != completed:
        problems.append(
            f"completed_requests holds {len(client.completed_requests)} "
            f"requests but requests_completed={completed}"
        )
    if sim is not None:
        if not math.isfinite(sim.now):
            problems.append(f"clock is not finite: {sim.now!r}")
        elif sim.now < clock_start:
            problems.append(
                f"clock ran backwards: now={sim.now} < start={clock_start}"
            )
    if problems:
        raise AuditError(
            f"conservation audit failed for client {client.name!r}: "
            + "; ".join(problems)
        )


def audit_sharded_run(
    results: Sequence[dict],
    *,
    messages_exchanged: Optional[int] = None,
    clock_start: float = 0.0,
) -> None:
    """Merged conservation audit over per-shard ``finalize()`` dicts.

    The sharded equivalent of :func:`audit_client`: the client object
    lives inside a worker process, so the audit runs on the counters
    each shard ships home instead. Invariants:

    * **cross-shard message conservation, per round**: everything shard
      *i* sent to shard *j* in round *r* was received by *j* from *i*
      in round *r + 1*, exactly once (the coordinator's barrier
      semantics — and the invariant a recovery bug would break first);
    * round 0 received nothing (no shard had sent yet) and the final
      round sent nothing (a send would have forced another round);
    * total traffic matches the coordinator's independent
      ``messages_exchanged`` counter, when given;
    * every shard's clock is finite and never ran backwards past
      *clock_start*;
    * the root shard's client counters conserve requests:
      ``sent == sum(outcomes) + in_flight``, the latency recorder holds
      exactly the ok resolutions, and the client/dispatcher admission
      counters agree.
    """
    problems: List[str] = []
    ledgers = []
    for result in results:
        ledger = result.get("conservation")
        if ledger is None:
            problems.append(
                f"shard {result.get('shard')!r} returned no conservation "
                f"ledger (host predates the merged audit?)"
            )
            continue
        ledgers.append((int(result["shard"]), ledger))

    if not problems:
        rounds = {shard: len(ledger["sent"]) for shard, ledger in ledgers}
        if len(set(rounds.values())) > 1:
            problems.append(
                f"shards disagree on the round count: {rounds}"
            )
        else:
            n_rounds = next(iter(rounds.values()), 0)
            sent: Dict[int, List[dict]] = {
                shard: ledger["sent"] for shard, ledger in ledgers
            }
            received: Dict[int, List[dict]] = {
                shard: ledger["received"] for shard, ledger in ledgers
            }
            for shard, rounds_recv in received.items():
                if rounds_recv and any(rounds_recv[0].values()):
                    problems.append(
                        f"shard {shard} received {rounds_recv[0]} in "
                        f"round 0, before anything was sent"
                    )
            for shard, rounds_sent in sent.items():
                if rounds_sent and any(rounds_sent[-1].values()):
                    problems.append(
                        f"shard {shard} sent {rounds_sent[-1]} in the "
                        f"final round; those messages were never "
                        f"delivered"
                    )
            for r in range(n_rounds - 1):
                for src, rounds_sent in sent.items():
                    for dst_key, count in rounds_sent[r].items():
                        dst = int(dst_key)
                        got = 0
                        if dst in received:
                            got = received[dst][r + 1].get(str(src), 0)
                        elif dst not in sent:
                            problems.append(
                                f"shard {src} sent to unknown shard "
                                f"{dst} in round {r}"
                            )
                            continue
                        if count != got:
                            problems.append(
                                f"round {r}: shard {src} sent {count} "
                                f"message(s) to shard {dst} but shard "
                                f"{dst} received {got} in round {r + 1}"
                            )
            total_sent = sum(
                count
                for rounds_sent in sent.values()
                for per_round in rounds_sent
                for count in per_round.values()
            )
            total_recv = sum(
                count
                for rounds_recv in received.values()
                for per_round in rounds_recv
                for count in per_round.values()
            )
            if total_sent != total_recv:
                problems.append(
                    f"total cross-shard traffic does not conserve: "
                    f"{total_sent} sent != {total_recv} received"
                )
            if (
                messages_exchanged is not None
                and total_recv != messages_exchanged
            ):
                problems.append(
                    f"shards received {total_recv} messages but the "
                    f"coordinator routed {messages_exchanged}"
                )

    for result in results:
        clock = result.get("clock")
        if clock is None or not math.isfinite(clock):
            problems.append(
                f"shard {result.get('shard')!r} clock is not finite: "
                f"{clock!r}"
            )
        elif clock < clock_start:
            problems.append(
                f"shard {result.get('shard')!r} clock ran backwards: "
                f"now={clock} < start={clock_start}"
            )

    for result in results:
        if "requests_sent" not in result:
            continue  # leaf shard: no client counters to conserve
        shard = result.get("shard")
        r_sent = result["requests_sent"]
        admitted = result.get("requests_submitted")
        if admitted is not None and r_sent != admitted:
            problems.append(
                f"shard {shard!r}: conservation broken: client sent "
                f"{r_sent} requests but the dispatcher admitted "
                f"{admitted}"
            )
        outcomes = result.get("outcomes", {})
        resolved = sum(outcomes.values())
        in_flight = result.get("in_flight", 0)
        completed = result.get("requests_completed", resolved)
        if in_flight < 0:
            problems.append(
                f"shard {shard!r}: in_flight is negative ({in_flight})"
            )
        if resolved != completed:
            problems.append(
                f"shard {shard!r}: outcome tallies sum to {resolved} "
                f"but requests_completed={completed}"
            )
        if r_sent != resolved + in_flight:
            problems.append(
                f"shard {shard!r}: conservation broken: "
                f"sent={r_sent} != resolved={resolved} + "
                f"in_flight={in_flight}"
            )
        ok = outcomes.get(OUTCOME_OK, 0)
        recorded = len(result.get("latencies", ()))
        if recorded != ok:
            problems.append(
                f"shard {shard!r}: latency recorder holds {recorded} "
                f"samples but {ok} requests resolved ok"
            )

    if problems:
        raise AuditError(
            "sharded conservation audit failed: " + "; ".join(problems)
        )
