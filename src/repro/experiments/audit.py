"""Opt-in conservation audits for experiment runs.

A simulation whose bookkeeping silently leaks requests produces
plausible-looking but wrong curves. The audit checks the invariants
every run must satisfy — no request created is lost, every completion
was counted exactly once, the clock never ran backwards — and raises
:class:`~repro.errors.AuditError` naming each violated invariant.
It is opt-in (``audit=True`` on the measurement functions, ``--audit``
on the CLI) because it adds per-run accounting reads, not because it
is ever expected to fire.
"""

from __future__ import annotations

import math
from typing import List, Optional

from ..engine import Simulator
from ..errors import AuditError
from ..service.job import OUTCOME_OK
from ..workload import OpenLoopClient


def audit_client(
    client: OpenLoopClient,
    sim: Optional[Simulator] = None,
    *,
    dispatcher=None,
    clock_start: float = 0.0,
) -> None:
    """Check request conservation for one client's run.

    Invariants:

    * every request sent was resolved (ok/timeout/shed/failed) or is
      still in flight: ``sent == sum(outcomes) + outstanding``;
    * outcome tallies and the completion counter agree;
    * only ``ok`` resolutions entered the latency recorder;
    * nothing went negative, and the clock is finite and did not move
      backwards past *clock_start*;
    * with *dispatcher* given (valid only when this client is its sole
      traffic source, as in the measurement harness), the client's send
      counter matches the dispatcher's independent admission counter —
      the check that catches a tampered or drifting ``requests_sent``,
      which the in-client identities alone cannot see.
    """
    problems: List[str] = []
    sent = client.requests_sent
    completed = client.requests_completed
    resolved = sum(client.outcomes.values())
    outstanding = client.outstanding

    if dispatcher is not None and sent != dispatcher.requests_submitted:
        problems.append(
            f"conservation broken: client sent {sent} requests but the "
            f"dispatcher admitted {dispatcher.requests_submitted}"
        )
    if outstanding < 0:
        problems.append(
            f"outstanding is negative ({outstanding}): more completions "
            f"({completed}) than requests sent ({sent})"
        )
    if resolved != completed:
        problems.append(
            f"outcome tallies sum to {resolved} but "
            f"requests_completed={completed}"
        )
    if sent != resolved + outstanding:
        problems.append(
            f"conservation broken: sent={sent} != "
            f"resolved={resolved} + outstanding={outstanding}"
        )
    ok = client.outcomes.get(OUTCOME_OK, 0)
    recorded = len(client.latencies)
    if recorded != ok:
        problems.append(
            f"latency recorder holds {recorded} samples but "
            f"{ok} requests resolved ok"
        )
    if len(client.completed_requests) != completed:
        problems.append(
            f"completed_requests holds {len(client.completed_requests)} "
            f"requests but requests_completed={completed}"
        )
    if sim is not None:
        if not math.isfinite(sim.now):
            problems.append(f"clock is not finite: {sim.now!r}")
        elif sim.now < clock_start:
            problems.append(
                f"clock ran backwards: now={sim.now} < start={clock_start}"
            )
    if problems:
        raise AuditError(
            f"conservation audit failed for client {client.name!r}: "
            + "; ".join(problems)
        )
