"""Tail@scale study (paper SSV-A / Fig 14).

"we simulate clusters of different sizes, ranging from 5 servers to
1000 servers ... a user request fans out to all servers in the cluster,
and only returns to the user after the last server responds. ... the
application is a simple one-stage queueing system with exponentially
distributed processing time, around a 1ms mean. To emulate slow
servers, we increase the average processing time of a configurable
fraction of randomly-selected servers by 10x."
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence, Tuple, Union

from ..apps.base import World, add_client_machine, new_world
from ..distributions import Deterministic, Exponential
from ..errors import ConfigError, ReproError
from ..hardware import Machine, NetworkFabric
from ..service import (
    ExecutionPath,
    Microservice,
    PathSelector,
    SimpleModel,
    SingleQueue,
    Stage,
)
from ..runner import (
    RunStore,
    durable_map,
    parallel_map,
    point_key,
    register_result_type,
)
from ..telemetry.export import write_otlp, write_perfetto
from ..telemetry.slo import SLOMonitor
from ..telemetry.tracing import TraceConfig
from ..topology import PathNode, PathTree
from ..workload import OpenLoopClient
from .audit import audit_client
from .loadsweep import SLOSpec, resolve_slos, slo_manifest_summary


def build_fanout_cluster(
    cluster_size: int,
    slow_fraction: float,
    slow_factor: float = 10.0,
    mean_service: float = 1e-3,
    seed: int = 0,
    network: Optional[NetworkFabric] = None,
) -> World:
    """A cluster of *cluster_size* one-stage leaf servers plus a cheap
    aggregator; every request visits every leaf and synchronises at the
    aggregator before returning."""
    if cluster_size < 1:
        raise ConfigError(f"cluster_size must be >= 1, got {cluster_size}")
    if not 0.0 <= slow_fraction <= 1.0:
        raise ConfigError(f"slow_fraction must be in [0,1], got {slow_fraction!r}")
    if slow_factor < 1.0:
        raise ConfigError(f"slow_factor must be >= 1, got {slow_factor!r}")

    world = new_world(network, seed)
    add_client_machine(world)
    placement_rng = world.sim.random.stream("tail-at-scale/placement")
    slow_mask = placement_rng.random(cluster_size) < slow_fraction

    tree = PathTree("tail_at_scale")
    agg_machine = world.cluster.add_machine(Machine("aggregator", 4))
    aggregator = _one_stage_service(
        world, "aggregator", "agg", Deterministic(5e-6), cores=4
    )
    tree.add_node(PathNode("root", "agg"))
    for i in range(cluster_size):
        machine_name = f"leaf-node{i}"
        world.cluster.add_machine(Machine(machine_name, 1))
        mean = mean_service * (slow_factor if slow_mask[i] else 1.0)
        _one_stage_service(
            world, machine_name, f"leaf{i}", Exponential(mean), cores=1
        )
        tree.add_node(PathNode(f"leaf{i}", f"leaf{i}"))
        tree.add_edge("root", f"leaf{i}")
    tree.add_node(PathNode("join", "agg", same_instance_as="root"))
    for i in range(cluster_size):
        tree.add_edge(f"leaf{i}", "join")
    world.dispatcher.add_tree(tree)
    world.labels.update(
        scenario="tail_at_scale",
        config=(
            f"size={cluster_size} slow={slow_fraction:.0%} "
            f"({int(slow_mask.sum())} slow servers)"
        ),
    )
    return world


def _fanout_sharded_runner(*args, **kwargs):
    """Late import so ``repro.shard`` stays an optional layer of the
    import graph (it imports back into this module)."""
    from ..shard import fanout_sharded_load_point

    return fanout_sharded_load_point(*args, **kwargs)


#: Opt-in hook read by :func:`repro.experiments.loadsweep.measure_at_load`
#: when called with ``shards > 1`` — builders without the attribute get
#: a loud error instead of a silently-unsharded run. The hand-written
#: fan-out runner predates the generic world adapter and supports no
#: telemetry knobs under shards (adapter-based runners declare theirs
#: via ``supported_telemetry``; see repro.apps.builders).
_fanout_sharded_runner.supported_telemetry = ()
build_fanout_cluster.sharded_runner = _fanout_sharded_runner


def _one_stage_service(world, machine_name, tier, dist, cores):
    machine = world.cluster.machine(machine_name)
    core_set = machine.allocate(tier, cores)
    stage = Stage("process", 0, SingleQueue(), base=dist)
    selector = PathSelector([ExecutionPath(0, "only", [0])])
    instance = Microservice(
        tier,
        world.sim,
        [stage],
        selector,
        core_set,
        model=SimpleModel(),
        machine_name=machine_name,
        tier=tier,
    )
    world.deployment.add_instance(instance)
    return instance


@register_result_type
@dataclass
class TailAtScalePoint:
    """One (cluster size, slow fraction) measurement of Fig 14."""

    cluster_size: int
    slow_fraction: float
    p50: float
    p99: float
    requests: int
    #: Per-SLO verdicts when the cell ran with objectives attached
    #: (``None`` otherwise; defaulted so old journals still decode).
    slo: Optional[dict] = None
    #: Shard-supervisor recovery report when worker processes had to
    #: be rebuilt mid-run (``None`` for unsharded or fault-free cells,
    #: so unfaulted results stay identical and old journals decode).
    shard_recovery: Optional[dict] = None


def measure_tail_at_scale(
    cluster_size: int,
    slow_fraction: float,
    qps: float = 30.0,
    num_requests: int = 300,
    slow_factor: float = 10.0,
    seed: int = 0,
    audit: bool = False,
    trace: Union[bool, TraceConfig] = False,
    trace_dir: Optional[Union[str, Path]] = None,
    slo: Optional[SLOSpec] = None,
    shards: int = 1,
    network: Optional[NetworkFabric] = None,
    fault_plan=None,
    shard_timeout: Optional[float] = None,
    shard_restarts: Optional[int] = None,
    shard_journal_dir: Optional[Union[str, Path]] = None,
) -> TailAtScalePoint:
    """Drive one (cluster size, slow fraction) configuration and report
    the p50/p99 of the fan-in-synchronised end-to-end latency.

    With *trace_dir* set (implies ``trace=True``), the sampled traces
    export there as Perfetto and OTLP JSON named by the cell. *slo*
    attaches live objectives (spec strings or :class:`SLO` objects)
    whose verdicts ride the returned point.

    ``shards > 1`` runs the cell on the sharded parallel core
    (:func:`repro.shard.measure_fanout_sharded`): one worker process
    per shard, synchronised by conservative time windows. Requires a
    *network* whose propagation has a positive minimum (otherwise the
    planner falls back to one shard with a ``RuntimeWarning``).
    *audit* works under shards too — it runs the merged cross-shard
    conservation audit on the per-shard finalize counters; *trace* and
    *slo* remain single-simulator-only. *fault_plan* under shards may
    carry ``shard_kill``/``shard_hang`` chaos (the supervisor recovers
    and results must not change); under ``shards=1`` it arms the
    ordinary in-simulation :class:`~repro.faults.FaultInjector`.
    """
    if shards > 1:
        if trace or trace_dir is not None or slo is not None:
            raise ReproError(
                "shards > 1 does not support trace/slo "
                "instrumentation yet; run those with shards=1"
            )
        from ..shard import measure_fanout_sharded

        journal_path = None
        if shard_journal_dir is not None:
            journal_path = (
                Path(shard_journal_dir)
                / f"shard_journal_size{cluster_size}_slow{slow_fraction:g}.jsonl"
            )
        result = measure_fanout_sharded(
            cluster_size, slow_fraction, qps=qps,
            num_requests=num_requests, slow_factor=slow_factor,
            seed=seed, shards=shards, network=network,
            audit=audit, fault_plan=fault_plan,
            shard_timeout=shard_timeout, shard_restarts=shard_restarts,
            journal_path=journal_path,
        )
        return TailAtScalePoint(
            cluster_size=cluster_size,
            slow_fraction=slow_fraction,
            p50=result["p50"],
            p99=result["p99"],
            requests=result["requests"],
            shard_recovery=(
                result["recovery"] if result["restarts"] else None
            ),
        )
    if fault_plan is not None and fault_plan.shard_faults():
        raise ReproError(
            "fault plan carries shard_kill/shard_hang faults, which "
            "target the sharded execution layer; run with --shards N"
        )
    if shard_timeout is not None or shard_restarts is not None:
        raise ReproError(
            "shard_timeout/shard_restarts tune the shard supervisor; "
            "they need shards > 1"
        )
    if trace_dir is not None and not trace:
        trace = True
    world = build_fanout_cluster(
        cluster_size, slow_fraction, slow_factor, seed=seed,
        network=network,
    )
    if fault_plan is not None:
        from ..faults import FaultInjector

        FaultInjector(
            world.sim, world.deployment, world.cluster.network,
            fault_plan, cluster=world.cluster,
        ).arm()
    if trace:
        world.dispatcher.trace = trace
    client = OpenLoopClient(
        world.sim, world.dispatcher, arrivals=qps, max_requests=num_requests
    )
    # The fan-out run has no fixed horizon (it stops when the last of
    # num_requests resolves), so size the evaluation window from the
    # expected span of the run.
    expected_span = max(0.1, num_requests / max(qps, 1e-9) / 4.0)
    slos = resolve_slos(slo, window=expected_span)
    slo_monitor = None
    if slos:
        slo_monitor = SLOMonitor(
            world.sim, slos, interval=expected_span / 10.0
        )
        slo_monitor.attach(client)
        slo_monitor.start()
    clock_start = world.sim.now
    client.start()
    world.sim.run()
    if audit:
        audit_client(
            client, world.sim, dispatcher=world.dispatcher,
            clock_start=clock_start,
        )
    if trace and trace_dir is not None:
        base = Path(trace_dir)
        base.mkdir(parents=True, exist_ok=True)
        stem = f"size{cluster_size}_slow{slow_fraction:g}"
        traces = world.dispatcher.tracer.traces
        write_perfetto(base / f"{stem}.perfetto.json", traces)
        write_otlp(base / f"{stem}.otlp.json", traces)
    recorder = client.latencies
    return TailAtScalePoint(
        cluster_size=cluster_size,
        slow_fraction=slow_fraction,
        p50=recorder.p50(),
        p99=recorder.p99(),
        requests=len(recorder),
        slo=slo_monitor.summary() if slo_monitor is not None else None,
    )


def _measure_grid_point(
    size_and_fraction: Tuple[int, float],
    qps: float,
    num_requests: int,
    seed: int,
    audit: bool = False,
    trace: Union[bool, TraceConfig] = False,
    trace_dir: Optional[Union[str, Path]] = None,
    slo: Optional[SLOSpec] = None,
    shards: int = 1,
    network: Optional[NetworkFabric] = None,
    fault_plan=None,
    shard_timeout: Optional[float] = None,
    shard_restarts: Optional[int] = None,
    shard_journal_dir: Optional[Union[str, Path]] = None,
) -> TailAtScalePoint:
    """Picklable per-cell worker for the parallel grid sweep."""
    size, frac = size_and_fraction
    return measure_tail_at_scale(
        size, frac, qps=qps, num_requests=num_requests, seed=seed,
        audit=audit, trace=trace, trace_dir=trace_dir, slo=slo,
        shards=shards, network=network, fault_plan=fault_plan,
        shard_timeout=shard_timeout, shard_restarts=shard_restarts,
        shard_journal_dir=shard_journal_dir,
    )


def tail_at_scale_sweep(
    cluster_sizes: Sequence[int] = (5, 10, 50, 100, 500, 1000),
    slow_fractions: Sequence[float] = (0.0, 0.01, 0.05, 0.10),
    qps: float = 30.0,
    num_requests: int = 300,
    seed: int = 0,
    jobs: int = 1,
    run_dir: Optional[Union[str, Path]] = None,
    resume: bool = True,
    experiment: str = "fig14",
    retries: int = 0,
    timeout: Optional[float] = None,
    audit: bool = False,
    trace_dir: Optional[Union[str, Path]] = None,
    trace_sample: float = 1.0,
    slo: Optional[SLOSpec] = None,
    shards: int = 1,
    network: Optional[NetworkFabric] = None,
    fault_plan=None,
    shard_timeout: Optional[float] = None,
    shard_restarts: Optional[int] = None,
):
    """The full Fig 14 grid. Each (size, fraction) cell simulates an
    independent cluster, so ``jobs > 1`` fans the grid out across
    processes with identical results.

    With *run_dir* set, finished cells are journaled there and
    ``resume=True`` skips them on restart — see
    :mod:`repro.runner.runstore`. With *trace_dir* set, every cell
    exports its sampled traces (at *trace_sample*) there as
    Perfetto/OTLP JSON. ``shards > 1`` runs every cell on the sharded
    parallel core (see :func:`measure_tail_at_scale`); combine with
    ``jobs=1``, since each cell then owns one worker process per
    shard.
    """
    grid = [
        (size, frac) for frac in slow_fractions for size in cluster_sizes
    ]
    trace = (
        TraceConfig(sample_rate=trace_sample) if trace_dir is not None
        else False
    )
    shard_journal_dir = (
        Path(run_dir) / "shard_journals"
        if run_dir is not None and shards > 1
        else None
    )
    cell = functools.partial(
        _measure_grid_point, qps=qps, num_requests=num_requests, seed=seed,
        audit=audit, trace=trace, trace_dir=trace_dir, slo=slo,
        shards=shards, network=network, fault_plan=fault_plan,
        shard_timeout=shard_timeout, shard_restarts=shard_restarts,
        shard_journal_dir=shard_journal_dir,
    )
    if run_dir is None:
        return parallel_map(
            cell, grid, jobs=jobs, retries=retries, timeout=timeout
        )
    config = {
        "qps": qps, "num_requests": num_requests, "audit": audit,
    }
    # Journal-key stability: older journals hashed a config without
    # these knobs, so only non-default values contribute. Supervision
    # tuning (shard_timeout/shard_restarts) and journal mirroring are
    # operational knobs that cannot change results, so they never join.
    if shards != 1:
        config["shards"] = shards
    if network is not None:
        config["network"] = repr(network)
    if trace:
        config["trace"] = repr(trace)
    if slo:
        config["slo"] = [s.name for s in resolve_slos(slo, window=1.0)]
    if fault_plan is not None and len(fault_plan):
        config["fault_plan"] = repr(fault_plan.sorted())
    keys = [
        point_key(
            experiment, {"size": size, "frac": frac}, seed, config
        )
        for size, frac in grid
    ]
    store = RunStore(run_dir, experiment, config=config)
    summaries = []
    if shards > 1:
        from .loadsweep import shard_recovery_manifest_summary

        summaries.append(shard_recovery_manifest_summary)
    if slo:
        summaries.append(slo_manifest_summary)
    if summaries:
        from .loadsweep import _combined_manifest_extra

        manifest_extra = _combined_manifest_extra(*summaries)
    else:
        manifest_extra = None
    return durable_map(
        cell, grid, store=store, keys=keys,
        seeds=[seed] * len(grid), resume=resume, jobs=jobs,
        retries=retries, timeout=timeout,
        manifest_extra=manifest_extra,
    )
