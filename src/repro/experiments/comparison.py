"""uqSim vs BigHouse comparison (paper SSIV-E / Fig 13).

Single-process NGINX and 4-thread memcached, each simulated three ways:

* "real"   — the testbed surrogate (full model + realism effects);
* uqSim    — the full multi-stage model;
* BigHouse — the application folded into one G/G/k queue, charging the
  entire epoll cost to every request (no batch amortisation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from ..apps import calibration as cal
from ..apps import single_memcached, single_nginx
from ..bighouse import BigHouseSimulator, FoldedServiceTime
from ..distributions import Exponential
from ..testbed import RealismConfig
from .loadsweep import SweepPoint, load_latency_sweep


@dataclass
class ComparisonPoint:
    """One load level measured by all three methodologies (seconds)."""

    offered_qps: float
    uqsim_p99: float
    bighouse_p99: float
    real_p99: Optional[float] = None


def bighouse_single_tier(
    build_world: Callable[..., object],
    qps: float,
    servers: int,
    mean_request_bytes: float = 0.0,
    seed: int = 0,
    path_name: Optional[str] = None,
) -> float:
    """BigHouse's p99 for a single-tier app at *qps* offered load.

    *path_name* selects the execution path the workload exercises —
    BigHouse's profiled service distribution would reflect the actual
    request mix, so the folding must too.
    """
    world = build_world(seed=seed)
    tier = world.deployment.services[0]
    instance = world.deployment.instances(tier)[0]
    folded = FoldedServiceTime(instance, mean_request_bytes, path_name)
    sim = BigHouseSimulator(
        interarrival=Exponential(1.0 / qps),
        service=folded,
        servers=servers,
        seed=seed,
    )
    return sim.run().p99


def compare_single_tier(
    build_world: Callable[..., object],
    loads: Sequence[float],
    servers: int,
    duration: float = 0.4,
    warmup: float = 0.1,
    with_real: bool = True,
    mean_request_bytes: float = 0.0,
    seed: int = 1,
    path_name: Optional[str] = None,
    **world_kwargs,
) -> List[ComparisonPoint]:
    """The three curves of one Fig 13 panel."""
    uq_points = load_latency_sweep(
        build_world, loads, duration, warmup, seed=seed, **world_kwargs
    )
    real_points: List[Optional[SweepPoint]] = [None] * len(uq_points)
    if with_real:
        real_points = load_latency_sweep(  # type: ignore[assignment]
            build_world, loads, duration, warmup, seed=seed + 1,
            realism=RealismConfig(), **world_kwargs,
        )
    results = []
    for uq, real in zip(uq_points, real_points):
        bh_p99 = bighouse_single_tier(
            build_world,
            uq.offered_qps,
            servers,
            mean_request_bytes,
            seed=seed,
            path_name=path_name,
        )
        results.append(
            ComparisonPoint(
                offered_qps=uq.offered_qps,
                uqsim_p99=uq.p99,
                bighouse_p99=bh_p99,
                real_p99=real.p99 if real is not None else None,
            )
        )
    return results


def nginx_panel(loads=(2000, 4000, 6000, 8000, 8800), **kwargs):
    """Fig 13 left: single-process NGINX (serving static pages)."""
    return compare_single_tier(
        single_nginx, loads, servers=1,
        mean_request_bytes=cal.FANOUT_PAGE_BYTES,
        path_name="serve", **kwargs,
    )


def memcached_panel(loads=(20_000, 80_000, 140_000, 180_000, 210_000), **kwargs):
    """Fig 13 right: 4-thread memcached (read workload)."""
    return compare_single_tier(
        single_memcached, loads, servers=4,
        mean_request_bytes=cal.DEFAULT_VALUE_BYTES,
        path_name="memcached_read", **kwargs,
    )
