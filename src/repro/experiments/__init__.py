"""Experiment harness: load sweeps, validation experiment definitions,
the tail-at-scale and power-management studies, the BigHouse
comparison, and the figure/table registry."""

from . import (
    audit,
    comparison,
    orchestration,
    power_mgmt,
    registry,
    resilience,
    tail_at_scale,
    validation,
)
from .audit import audit_client, audit_sharded_run
from .orchestration import (
    NodeFailurePoint,
    RolloutPoint,
    build_cluster_world,
    node_failure_experiment,
    rollout_experiment,
)
from .replication import ReplicatedPoint, replicate_at_load
from .loadsweep import (
    SweepPoint,
    find_shard_journal,
    load_latency_sweep,
    measure_at_load,
    measure_vanilla_point,
    saturation_load,
    shard_journal_name,
)

__all__ = [
    "NodeFailurePoint",
    "ReplicatedPoint",
    "RolloutPoint",
    "SweepPoint",
    "audit",
    "audit_client",
    "audit_sharded_run",
    "build_cluster_world",
    "comparison",
    "find_shard_journal",
    "load_latency_sweep",
    "measure_at_load",
    "measure_vanilla_point",
    "node_failure_experiment",
    "orchestration",
    "power_mgmt",
    "registry",
    "replicate_at_load",
    "resilience",
    "rollout_experiment",
    "saturation_load",
    "shard_journal_name",
    "tail_at_scale",
    "validation",
]
